package faults

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
)

// RESTModuleOf extracts the module ID from a REST wire-format request
// path (".../modules/{id}" or ".../modules/{id}/invoke"); it returns ""
// for anything else, which selects the plan's default profile.
func RESTModuleOf(r *http.Request) string {
	path := r.URL.Path
	idx := strings.Index(path, "/modules/")
	if idx < 0 {
		return ""
	}
	rest := path[idx+len("/modules/"):]
	rest = strings.TrimSuffix(rest, "/invoke")
	if strings.Contains(rest, "/") {
		return ""
	}
	return rest
}

// Middleware wraps an HTTP handler with server-side fault injection.
// moduleOf maps a request to the module it targets (nil means
// RESTModuleOf). Injected faults:
//
//   - conn-reset: the connection is aborted mid-response (the client sees
//     EOF / connection reset), via http.ErrAbortHandler.
//   - throttle / unavailable: 429 / 503 with a text body — deliberately
//     not the JSON/XML wire format, like a real load balancer answering
//     for a dead backend.
//   - truncate: the inner handler runs, but only half its response body
//     is sent.
//   - garbage: a 200 carrying undecodable junk.
//   - latency: the answer is delayed, then served normally.
func Middleware(h http.Handler, inj *Injector, moduleOf func(*http.Request) string) http.Handler {
	if moduleOf == nil {
		moduleOf = RESTModuleOf
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch inj.Decide(moduleOf(r)) {
		case FaultConnReset:
			panic(http.ErrAbortHandler)
		case FaultThrottle:
			http.Error(w, "fault injection: rate limit exceeded", http.StatusTooManyRequests)
			return
		case FaultUnavailable:
			http.Error(w, "fault injection: upstream unavailable", http.StatusServiceUnavailable)
			return
		case FaultGarbage:
			w.Header().Set("Content-Type", "application/octet-stream")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write([]byte("\x1f\x8b\x00garbage\xffnot-a-wire-format\x00\x02"))
			return
		case FaultTruncate:
			rec := &captureWriter{header: http.Header{}, status: http.StatusOK}
			h.ServeHTTP(rec, r)
			for k, vs := range rec.header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(rec.status)
			body := rec.buf.Bytes()
			_, _ = w.Write(body[:len(body)/2])
			return
		case FaultLatency:
			inj.sleep(inj.Profile(moduleOf(r)).LatencyAmount)
		}
		h.ServeHTTP(w, r)
	})
}

// captureWriter buffers a handler's full response so the middleware can
// replay a mutated version of it.
type captureWriter struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func (c *captureWriter) Header() http.Header { return c.header }

func (c *captureWriter) WriteHeader(status int) { c.status = status }

func (c *captureWriter) Write(p []byte) (int, error) { return c.buf.Write(p) }

// ErrInjectedReset is the error surfaced by a RoundTripper conn-reset
// fault.
var ErrInjectedReset = errors.New("fault injection: connection reset by peer")

// RoundTripper wraps an http.RoundTripper with client-side fault
// injection, for chaos against servers that cannot be wrapped themselves.
type RoundTripper struct {
	// Base performs real round trips; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Inj decides the fault per request.
	Inj *Injector
	// ModuleOf maps requests to module IDs; nil means RESTModuleOf.
	ModuleOf func(*http.Request) string
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	moduleOf := t.ModuleOf
	if moduleOf == nil {
		moduleOf = RESTModuleOf
	}
	id := moduleOf(req)
	switch t.Inj.Decide(id) {
	case FaultConnReset:
		return nil, ErrInjectedReset
	case FaultThrottle:
		return synthesized(req, http.StatusTooManyRequests, "fault injection: rate limit exceeded"), nil
	case FaultUnavailable:
		return synthesized(req, http.StatusServiceUnavailable, "fault injection: upstream unavailable"), nil
	case FaultGarbage:
		return synthesized(req, http.StatusOK, "\x1f\x8b\x00garbage\xffnot-a-wire-format\x00\x02"), nil
	case FaultTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		resp.Body = io.NopCloser(bytes.NewReader(body[:len(body)/2]))
		resp.ContentLength = int64(len(body) / 2)
		return resp, nil
	case FaultLatency:
		t.Inj.sleep(t.Inj.Profile(id).LatencyAmount)
	}
	return base.RoundTrip(req)
}

// synthesized builds an in-memory HTTP response without touching the
// network.
func synthesized(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode:    status,
		Status:        http.StatusText(status),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
