package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

func echoExec() module.Executor {
	return module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{"out": in["seq"]}, nil
	})
}

func TestInjectorDeterministicPerSeed(t *testing.T) {
	plan := Plan{Default: Uniform(0.5)}
	draw := func(seed int64) []Fault {
		inj := NewInjector(seed, plan)
		out := make([]Fault, 200)
		for i := range out {
			out[i] = inj.Decide("m")
		}
		return out
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-draw fault stream")
	}
}

func TestInjectorRespectsRates(t *testing.T) {
	inj := NewInjector(7, Plan{Default: Uniform(0.4)})
	n := 5000
	for i := 0; i < n; i++ {
		inj.Decide("m")
	}
	got := float64(inj.Injected()) / float64(n)
	if got < 0.35 || got > 0.45 {
		t.Fatalf("injected fraction = %.3f, want ≈0.4", got)
	}
}

func TestInjectorFlapWindows(t *testing.T) {
	inj := NewInjector(1, Plan{Default: Profile{FlapEvery: 3, FlapFor: 2}})
	want := []Fault{FaultNone, FaultNone, FaultNone, FaultUnavailable, FaultUnavailable,
		FaultNone, FaultNone, FaultNone, FaultUnavailable, FaultUnavailable}
	for i, w := range want {
		if got := inj.Decide("m"); got != w {
			t.Fatalf("request %d: fault = %v, want %v", i, got, w)
		}
	}
	// Flap counters are per module: a different module starts fresh.
	if got := inj.Decide("other"); got != FaultNone {
		t.Fatalf("other module first request = %v, want none", got)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{ConnReset: 0.6, Garbage: 0.6}).Validate(); err == nil {
		t.Fatal("over-unity profile accepted")
	}
	if err := (Profile{ConnReset: -0.1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := Uniform(0.25).Validate(); err != nil {
		t.Fatalf("Uniform(0.25) invalid: %v", err)
	}
}

func TestExecutorWrapperClassifiesFaults(t *testing.T) {
	// Force each fault deterministically with single-outcome profiles.
	cases := []struct {
		profile Profile
		kind    module.FaultKind
	}{
		{Profile{ConnReset: 1}, module.FaultConnection},
		{Profile{Throttle: 1}, module.FaultThrottled},
		{Profile{Unavailable: 1}, module.FaultUnavailable},
		{Profile{Truncate: 1}, module.FaultMalformed},
		{Profile{Garbage: 1}, module.FaultMalformed},
	}
	for _, tc := range cases {
		inj := NewInjector(1, Plan{Default: tc.profile})
		ex := Wrap("m", echoExec(), inj)
		_, err := ex.Invoke(map[string]typesys.Value{"seq": typesys.Str("x")})
		if !module.IsTransient(err) {
			t.Fatalf("profile %+v: err = %v, want transient", tc.profile, err)
		}
		if kind, _ := module.FaultKindOf(err); kind != tc.kind {
			t.Fatalf("profile %+v: kind = %v, want %v", tc.profile, kind, tc.kind)
		}
	}
	// No faults: the call passes through.
	inj := NewInjector(1, Plan{})
	outs, err := Wrap("m", echoExec(), inj).Invoke(map[string]typesys.Value{"seq": typesys.Str("x")})
	if err != nil || string(outs["out"].(typesys.StringValue)) != "x" {
		t.Fatalf("clean profile: outs=%v err=%v", outs, err)
	}
}

func TestExecutorWrapperLatencyUsesInjectedSleep(t *testing.T) {
	inj := NewInjector(1, Plan{Default: Profile{Latency: 1, LatencyAmount: time.Hour}})
	var slept time.Duration
	inj.SleepFn = func(d time.Duration) { slept += d }
	if _, err := Wrap("m", echoExec(), inj).Invoke(map[string]typesys.Value{"seq": typesys.Str("x")}); err != nil {
		t.Fatalf("latency fault should still answer: %v", err)
	}
	if slept != time.Hour {
		t.Fatalf("slept %v via injected sleeper, want 1h", slept)
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"outputs":{"out":{"kind":"string","str":"hello"}}}`)
	})
}

func TestMiddlewareInjectsStatusFaults(t *testing.T) {
	for _, tc := range []struct {
		profile Profile
		status  int
	}{
		{Profile{Throttle: 1}, http.StatusTooManyRequests},
		{Profile{Unavailable: 1}, http.StatusServiceUnavailable},
	} {
		inj := NewInjector(1, Plan{Default: tc.profile})
		srv := httptest.NewServer(Middleware(okHandler(), inj, nil))
		resp, err := http.Get(srv.URL + "/modules/m/invoke")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		resp.Body.Close()
		srv.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("profile %+v: status = %d, want %d", tc.profile, resp.StatusCode, tc.status)
		}
	}
}

func TestMiddlewareConnReset(t *testing.T) {
	inj := NewInjector(1, Plan{Default: Profile{ConnReset: 1}})
	srv := httptest.NewServer(Middleware(okHandler(), inj, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/modules/m/invoke")
	if err == nil {
		resp.Body.Close()
		t.Fatal("expected a transport error from the aborted connection")
	}
}

func TestMiddlewareTruncateAndGarbage(t *testing.T) {
	inj := NewInjector(1, Plan{Default: Profile{Truncate: 1}})
	srv := httptest.NewServer(Middleware(okHandler(), inj, nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/modules/m/invoke")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	full := `{"outputs":{"out":{"kind":"string","str":"hello"}}}`
	if resp.StatusCode != http.StatusOK || len(body) != len(full)/2 {
		t.Fatalf("truncate: status %d body %d bytes, want 200 with %d bytes", resp.StatusCode, len(body), len(full)/2)
	}

	inj = NewInjector(1, Plan{Default: Profile{Garbage: 1}})
	srv2 := httptest.NewServer(Middleware(okHandler(), inj, nil))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/modules/m/invoke")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.Contains(string(body), "outputs") {
		t.Fatalf("garbage: status %d body %q, want undecodable 200", resp.StatusCode, body)
	}
}

func TestRoundTripperFaults(t *testing.T) {
	srv := httptest.NewServer(okHandler())
	defer srv.Close()

	inj := NewInjector(1, Plan{Default: Profile{ConnReset: 1}})
	client := &http.Client{Transport: &RoundTripper{Inj: inj}}
	if _, err := client.Get(srv.URL + "/modules/m/invoke"); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("err = %v, want injected reset", err)
	}

	inj = NewInjector(1, Plan{Default: Profile{Throttle: 1}})
	client = &http.Client{Transport: &RoundTripper{Inj: inj}}
	resp, err := client.Get(srv.URL + "/modules/m/invoke")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (synthesized without network)", resp.StatusCode)
	}

	inj = NewInjector(1, Plan{Default: Profile{Truncate: 1}})
	client = &http.Client{Transport: &RoundTripper{Inj: inj}}
	resp, err = client.Get(srv.URL + "/modules/m/invoke")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	full := `{"outputs":{"out":{"kind":"string","str":"hello"}}}`
	if len(body) != len(full)/2 {
		t.Fatalf("truncated body = %d bytes, want %d", len(body), len(full)/2)
	}
}

func TestRESTModuleOf(t *testing.T) {
	for _, tc := range []struct{ path, want string }{
		{"/modules/getRecord/invoke", "getRecord"},
		{"/rest/modules/getRecord/invoke", "getRecord"},
		{"/modules/getRecord", "getRecord"},
		{"/modules", ""},
		{"/soap", ""},
	} {
		req := httptest.NewRequest(http.MethodGet, "http://x"+tc.path, nil)
		if got := RESTModuleOf(req); got != tc.want {
			t.Fatalf("RESTModuleOf(%s) = %q, want %q", tc.path, got, tc.want)
		}
	}
}
