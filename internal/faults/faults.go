// Package faults is a deterministic, seedable fault-injection layer for
// the simulation universe. The paper's §6 observes that third-party
// scientific services decay — providers throttle, time out, and retire
// endpoints — so a faithful experimental world must be able to model that
// volatility. The injector wraps any module.Executor, http.Handler, or
// http.RoundTripper and injects configurable transient failures:
// connection resets, HTTP 429/503 answers, latency spikes, truncated or
// garbage response bodies, and flapping availability windows.
//
// All randomness flows from one seeded source, so a chaos run is exactly
// reproducible: the same seed and profile produce the same fault sequence
// invocation-for-invocation.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault enumerates the injectable fault outcomes.
type Fault int

// The fault outcomes. FaultNone means the call proceeds untouched.
const (
	FaultNone Fault = iota
	// FaultConnReset drops the connection (client sees a reset/EOF).
	FaultConnReset
	// FaultThrottle answers HTTP 429 Too Many Requests.
	FaultThrottle
	// FaultUnavailable answers HTTP 503 Service Unavailable.
	FaultUnavailable
	// FaultTruncate serves a 200 whose body is cut off halfway.
	FaultTruncate
	// FaultGarbage serves a 200 whose body is undecodable junk.
	FaultGarbage
	// FaultLatency delays the call, then serves it normally.
	FaultLatency
)

// String returns the lexical fault name.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultConnReset:
		return "conn-reset"
	case FaultThrottle:
		return "throttle"
	case FaultUnavailable:
		return "unavailable"
	case FaultTruncate:
		return "truncate"
	case FaultGarbage:
		return "garbage"
	case FaultLatency:
		return "latency"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// Profile is the per-module fault mix. Each rate is an independent slice
// of the probability mass: a draw lands in exactly one fault (or none).
// The rates must sum to at most 1.
type Profile struct {
	// ConnReset is the probability of a dropped connection.
	ConnReset float64
	// Throttle is the probability of an HTTP 429.
	Throttle float64
	// Unavailable is the probability of an HTTP 503.
	Unavailable float64
	// Truncate is the probability of a truncated 200 body.
	Truncate float64
	// Garbage is the probability of a garbage 200 body.
	Garbage float64
	// Latency is the probability of a latency spike of LatencyAmount before
	// a normal answer.
	Latency float64
	// LatencyAmount is the injected delay for latency faults.
	LatencyAmount time.Duration
	// FlapEvery/FlapFor model flapping availability: after every FlapEvery
	// served requests the module goes dark for FlapFor requests (all
	// answered 503), deterministically and regardless of the random rates.
	// FlapEvery <= 0 disables flapping.
	FlapEvery int
	FlapFor   int
}

// TransientRate is the total probability mass of call-failing faults
// (everything except latency, which delays but still answers).
func (p Profile) TransientRate() float64 {
	return p.ConnReset + p.Throttle + p.Unavailable + p.Truncate + p.Garbage
}

// Enabled reports whether the profile can inject anything at all.
func (p Profile) Enabled() bool {
	return p.TransientRate() > 0 || p.Latency > 0 || p.FlapEvery > 0
}

// Validate rejects profiles whose probability mass exceeds 1 or is
// negative.
func (p Profile) Validate() error {
	for _, r := range []float64{p.ConnReset, p.Throttle, p.Unavailable, p.Truncate, p.Garbage, p.Latency} {
		if r < 0 {
			return fmt.Errorf("faults: negative rate in profile")
		}
	}
	if total := p.TransientRate() + p.Latency; total > 1 {
		return fmt.Errorf("faults: profile rates sum to %.3f > 1", total)
	}
	return nil
}

// Uniform spreads rate evenly over the five transient fault shapes — a
// convenient "r%% of calls fail somehow" profile.
func Uniform(rate float64) Profile {
	each := rate / 5
	return Profile{ConnReset: each, Throttle: each, Unavailable: each, Truncate: each, Garbage: each}
}

// Plan maps modules to fault profiles. Modules without a dedicated entry
// use Default.
type Plan struct {
	Default   Profile
	PerModule map[string]Profile
}

// For returns the profile governing moduleID.
func (p Plan) For(moduleID string) Profile {
	if prof, ok := p.PerModule[moduleID]; ok {
		return prof
	}
	return p.Default
}

// Injector decides, deterministically from a seed, which fault (if any)
// each call suffers. It is safe for concurrent use; under concurrency the
// fault sequence is still drawn from the seeded stream, though the
// interleaving follows goroutine scheduling.
type Injector struct {
	plan Plan
	// SleepFn performs latency injections; nil means time.Sleep. Tests
	// substitute a fake-clock sleep so no real time passes.
	SleepFn func(time.Duration)

	mu     sync.Mutex
	rng    *rand.Rand
	served map[string]int // per-module request counter, drives flapping
	counts map[Fault]int
	total  int
}

// NewInjector creates an injector over plan whose fault stream is fully
// determined by seed.
func NewInjector(seed int64, plan Plan) *Injector {
	return &Injector{
		plan:   plan,
		rng:    rand.New(rand.NewSource(seed)),
		served: map[string]int{},
		counts: map[Fault]int{},
	}
}

// Decide draws the fault outcome for one call against moduleID.
func (i *Injector) Decide(moduleID string) Fault {
	i.mu.Lock()
	defer i.mu.Unlock()
	p := i.plan.For(moduleID)
	n := i.served[moduleID]
	i.served[moduleID] = n + 1
	i.total++

	f := FaultNone
	if p.FlapEvery > 0 && p.FlapFor > 0 && n%(p.FlapEvery+p.FlapFor) >= p.FlapEvery {
		f = FaultUnavailable
	} else {
		u := i.rng.Float64()
		switch {
		case u < p.ConnReset:
			f = FaultConnReset
		case u < p.ConnReset+p.Throttle:
			f = FaultThrottle
		case u < p.ConnReset+p.Throttle+p.Unavailable:
			f = FaultUnavailable
		case u < p.ConnReset+p.Throttle+p.Unavailable+p.Truncate:
			f = FaultTruncate
		case u < p.ConnReset+p.Throttle+p.Unavailable+p.Truncate+p.Garbage:
			f = FaultGarbage
		case u < p.ConnReset+p.Throttle+p.Unavailable+p.Truncate+p.Garbage+p.Latency:
			f = FaultLatency
		}
	}
	i.counts[f]++
	return f
}

// sleep performs a latency injection.
func (i *Injector) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if i.SleepFn != nil {
		i.SleepFn(d)
		return
	}
	time.Sleep(d)
}

// Profile returns the profile governing moduleID.
func (i *Injector) Profile(moduleID string) Profile { return i.plan.For(moduleID) }

// Counts returns a copy of the per-fault decision counts.
func (i *Injector) Counts() map[Fault]int {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Fault]int, len(i.counts))
	for f, n := range i.counts {
		out[f] = n
	}
	return out
}

// Injected returns how many calls were given a fault other than none.
func (i *Injector) Injected() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.total - i.counts[FaultNone]
}

// Total returns how many decisions were drawn.
func (i *Injector) Total() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.total
}
