// Package provenance implements the workflow-provenance substrate the
// paper leans on twice (§4.1, §6): a corpus of execution traces in the
// style of the Taverna provenance corpus, recording the data values each
// module invocation consumed and produced together with the semantic
// annotations of the module's parameters.
//
// Two harvesting operations are provided:
//
//   - Harvest builds the pool of annotated instances that feeds example
//     generation (§4.1: "we made use of the Taverna workflow provenance
//     corpus ... thereby constructing the pool of annotated instances").
//   - ExamplesFor reconstructs data examples for a module straight from
//     its recorded invocations — the only way to characterise a module
//     that is no longer available (§6).
package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"dexa/internal/dataexample"
	"dexa/internal/instances"
	"dexa/internal/ontology"
	"dexa/internal/typesys"
	"dexa/internal/workflow"
)

// Corpus is a concurrency-safe collection of invocation records. It
// implements workflow.Recorder, so wiring it into an Enactor captures
// traces automatically.
type Corpus struct {
	mu      sync.RWMutex
	records []workflow.InvocationRecord
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus { return &Corpus{} }

// OnInvocation appends a record; it implements workflow.Recorder.
func (c *Corpus) OnInvocation(rec workflow.InvocationRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = append(c.records, rec)
}

// Len returns the number of records.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.records)
}

// Records returns a copy of all records in capture order.
func (c *Corpus) Records() []workflow.InvocationRecord {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]workflow.InvocationRecord, len(c.records))
	copy(out, c.records)
	return out
}

// ModuleIDs returns the distinct module IDs observed, sorted.
func (c *Corpus) ModuleIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for _, r := range c.records {
		seen[r.ModuleID] = true
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// WorkflowIDs returns the distinct workflow IDs observed, sorted.
func (c *Corpus) WorkflowIDs() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	for _, r := range c.records {
		seen[r.WorkflowID] = true
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Harvest builds a pool of annotated instances from every successful
// invocation: each input and output value is added under the concept
// annotating the corresponding module parameter. Values whose parameter
// carries no annotation, and concepts unknown to the ontology, are
// skipped. It returns the pool and the number of instances added.
func (c *Corpus) Harvest(ont *ontology.Ontology) (*instances.Pool, int) {
	pool := instances.NewPool(ont)
	added := 0
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, r := range c.records {
		if r.Failed {
			continue
		}
		added += harvestSide(pool, r, r.Inputs, r.InputConcepts, "in")
		added += harvestSide(pool, r, r.Outputs, r.OutputConcepts, "out")
	}
	return pool, added
}

// HarvestInto merges the corpus into an existing pool (for pools built
// from several corpora, e.g. the public corpus plus project traces in §6).
func (c *Corpus) HarvestInto(pool *instances.Pool) int {
	added := 0
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, r := range c.records {
		if r.Failed {
			continue
		}
		added += harvestSide(pool, r, r.Inputs, r.InputConcepts, "in")
		added += harvestSide(pool, r, r.Outputs, r.OutputConcepts, "out")
	}
	return added
}

func harvestSide(pool *instances.Pool, r workflow.InvocationRecord, vals map[string]typesys.Value, concepts map[string]string, side string) int {
	added := 0
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		concept := concepts[name]
		if concept == "" || !pool.Ontology().Has(concept) {
			continue
		}
		v := vals[name]
		if _, isNull := v.(typesys.NullValue); isNull {
			continue
		}
		src := fmt.Sprintf("trace:%s/%s/%s.%s", r.WorkflowID, r.StepID, side, name)
		before := pool.Len()
		if err := pool.Add(concept, v, src); err == nil && pool.Len() > before {
			added++
		}
	}
	return added
}

// ExamplesFor reconstructs the data examples of a module from its
// successful recorded invocations, de-duplicated by input assignment
// (first occurrence wins) and annotated with the recorded parameter
// concepts as partition hints.
func (c *Corpus) ExamplesFor(moduleID string) dataexample.Set {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var set dataexample.Set
	seen := map[string]bool{}
	for _, r := range c.records {
		if r.ModuleID != moduleID || r.Failed {
			continue
		}
		e := dataexample.Example{
			Inputs:           r.Inputs,
			Outputs:          r.Outputs,
			InputPartitions:  r.InputConcepts,
			OutputPartitions: r.OutputConcepts,
		}
		k := e.InputKey()
		if seen[k] {
			continue
		}
		seen[k] = true
		set = append(set, e)
	}
	return set
}

// Source is ExamplesFor in the shape expected by workflow.ExamplesSource:
// the boolean reports whether any example could be reconstructed.
func (c *Corpus) Source(moduleID string) (dataexample.Set, bool) {
	set := c.ExamplesFor(moduleID)
	return set, len(set) > 0
}

// wireRecord is the JSON persistence form of one invocation record.
type wireRecord struct {
	WorkflowID     string                     `json:"workflow"`
	StepID         string                     `json:"step"`
	ModuleID       string                     `json:"module"`
	Seq            int                        `json:"seq"`
	Inputs         map[string]json.RawMessage `json:"inputs,omitempty"`
	Outputs        map[string]json.RawMessage `json:"outputs,omitempty"`
	InputConcepts  map[string]string          `json:"inputConcepts,omitempty"`
	OutputConcepts map[string]string          `json:"outputConcepts,omitempty"`
	Failed         bool                       `json:"failed,omitempty"`
	Error          string                     `json:"error,omitempty"`
}

// Save writes the corpus as JSON.
func (c *Corpus) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]wireRecord, 0, len(c.records))
	for _, r := range c.records {
		wr := wireRecord{
			WorkflowID: r.WorkflowID, StepID: r.StepID, ModuleID: r.ModuleID, Seq: r.Seq,
			InputConcepts: r.InputConcepts, OutputConcepts: r.OutputConcepts,
			Failed: r.Failed, Error: r.Error,
		}
		var err error
		if wr.Inputs, err = encodeValues(r.Inputs); err != nil {
			return err
		}
		if wr.Outputs, err = encodeValues(r.Outputs); err != nil {
			return err
		}
		out = append(out, wr)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Load reads a corpus saved by Save.
func Load(r io.Reader) (*Corpus, error) {
	var wrs []wireRecord
	if err := json.NewDecoder(r).Decode(&wrs); err != nil {
		return nil, fmt.Errorf("provenance: decoding: %w", err)
	}
	c := NewCorpus()
	for _, wr := range wrs {
		rec := workflow.InvocationRecord{
			WorkflowID: wr.WorkflowID, StepID: wr.StepID, ModuleID: wr.ModuleID, Seq: wr.Seq,
			InputConcepts: wr.InputConcepts, OutputConcepts: wr.OutputConcepts,
			Failed: wr.Failed, Error: wr.Error,
		}
		var err error
		if rec.Inputs, err = decodeValues(wr.Inputs); err != nil {
			return nil, err
		}
		if rec.Outputs, err = decodeValues(wr.Outputs); err != nil {
			return nil, err
		}
		c.records = append(c.records, rec)
	}
	return c, nil
}

func encodeValues(vals map[string]typesys.Value) (map[string]json.RawMessage, error) {
	if vals == nil {
		return nil, nil
	}
	out := make(map[string]json.RawMessage, len(vals))
	for n, v := range vals {
		data, err := typesys.MarshalValue(v)
		if err != nil {
			return nil, fmt.Errorf("provenance: encoding %s: %w", n, err)
		}
		out[n] = data
	}
	return out, nil
}

func decodeValues(raw map[string]json.RawMessage) (map[string]typesys.Value, error) {
	if raw == nil {
		return nil, nil
	}
	out := make(map[string]typesys.Value, len(raw))
	for n, data := range raw {
		v, err := typesys.UnmarshalValue(data)
		if err != nil {
			return nil, fmt.Errorf("provenance: decoding %s: %w", n, err)
		}
		out[n] = v
	}
	return out, nil
}
