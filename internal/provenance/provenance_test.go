package provenance

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dexa/internal/ontology"
	"dexa/internal/typesys"
	"dexa/internal/workflow"
)

func rec(wf, step, mod string, seq int, in, out string) workflow.InvocationRecord {
	return workflow.InvocationRecord{
		WorkflowID: wf, StepID: step, ModuleID: mod, Seq: seq,
		Inputs:         map[string]typesys.Value{"acc": typesys.Str(in)},
		Outputs:        map[string]typesys.Value{"rec": typesys.Str(out)},
		InputConcepts:  map[string]string{"acc": "Accession"},
		OutputConcepts: map[string]string{"rec": "Record"},
	}
}

func testOnt(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Accession", "", "Data")
	o.MustAddConcept("Record", "", "Data")
	return o
}

func TestCorpusBasics(t *testing.T) {
	c := NewCorpus()
	c.OnInvocation(rec("wf1", "s1", "getRecord", 1, "P1", "R1"))
	c.OnInvocation(rec("wf2", "s1", "getRecord", 1, "P2", "R2"))
	c.OnInvocation(rec("wf2", "s2", "identify", 2, "P3", "R3"))
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
	if got := c.ModuleIDs(); !reflect.DeepEqual(got, []string{"getRecord", "identify"}) {
		t.Errorf("ModuleIDs = %v", got)
	}
	if got := c.WorkflowIDs(); !reflect.DeepEqual(got, []string{"wf1", "wf2"}) {
		t.Errorf("WorkflowIDs = %v", got)
	}
	recs := c.Records()
	recs[0].ModuleID = "mutated"
	if c.Records()[0].ModuleID != "getRecord" {
		t.Error("Records should return a copy")
	}
}

func TestHarvest(t *testing.T) {
	c := NewCorpus()
	c.OnInvocation(rec("wf1", "s1", "m", 1, "P1", "R1"))
	c.OnInvocation(rec("wf1", "s1", "m", 2, "P1", "R1")) // duplicate values
	c.OnInvocation(rec("wf1", "s1", "m", 3, "P2", "R2"))
	failed := rec("wf1", "s2", "m", 4, "P9", "R9")
	failed.Failed = true
	c.OnInvocation(failed)
	// A record with an unannotated parameter and an unknown concept.
	odd := workflow.InvocationRecord{
		WorkflowID: "wf1", StepID: "s3", ModuleID: "m", Seq: 5,
		Inputs:         map[string]typesys.Value{"x": typesys.Str("v"), "y": typesys.Str("w"), "z": typesys.Null},
		Outputs:        map[string]typesys.Value{},
		InputConcepts:  map[string]string{"x": "", "y": "Mystery", "z": "Accession"},
		OutputConcepts: map[string]string{},
	}
	c.OnInvocation(odd)

	pool, added := c.Harvest(testOnt(t))
	// P1, R1, P2, R2 -> 4 distinct instances; failed and odd contribute none
	// (unannotated, unknown concept, null value).
	if added != 4 || pool.Len() != 4 {
		t.Errorf("added = %d, pool = %d", added, pool.Len())
	}
	ins := pool.Direct("Accession")
	if len(ins) != 2 {
		t.Errorf("accessions = %v", ins)
	}
	if ins[0].Source == "" {
		t.Error("source not recorded")
	}
	// HarvestInto merges into an existing pool without duplicating.
	n := c.HarvestInto(pool)
	if n != 0 || pool.Len() != 4 {
		t.Errorf("HarvestInto added %d, pool %d", n, pool.Len())
	}
}

func TestExamplesFor(t *testing.T) {
	c := NewCorpus()
	c.OnInvocation(rec("wf1", "s1", "m", 1, "P1", "R1"))
	c.OnInvocation(rec("wf2", "s9", "m", 1, "P1", "R1")) // same inputs: dedup
	c.OnInvocation(rec("wf1", "s1", "m", 2, "P2", "R2"))
	c.OnInvocation(rec("wf1", "s1", "other", 1, "P3", "R3"))
	failed := rec("wf1", "s1", "m", 3, "P4", "R4")
	failed.Failed = true
	c.OnInvocation(failed)

	set := c.ExamplesFor("m")
	if len(set) != 2 {
		t.Fatalf("examples = %d", len(set))
	}
	if set[0].InputPartitions["acc"] != "Accession" || set[0].OutputPartitions["rec"] != "Record" {
		t.Errorf("partition hints = %+v", set[0])
	}
	if got := c.ExamplesFor("ghost"); len(got) != 0 {
		t.Errorf("unknown module examples = %v", got)
	}
	set2, ok := c.Source("m")
	if !ok || len(set2) != 2 {
		t.Errorf("Source = %v, %v", set2, ok)
	}
	if _, ok := c.Source("ghost"); ok {
		t.Error("Source for unknown module should report false")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := NewCorpus()
	c.OnInvocation(rec("wf1", "s1", "m", 1, "P1", "R1"))
	failed := rec("wf1", "s2", "m", 2, "P2", "")
	failed.Failed = true
	failed.Outputs = nil
	failed.Error = "boom"
	c.OnInvocation(failed)

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
	recs := got.Records()
	if !recs[0].Inputs["acc"].Equal(typesys.Str("P1")) {
		t.Errorf("inputs lost: %+v", recs[0])
	}
	if recs[0].InputConcepts["acc"] != "Accession" {
		t.Errorf("concepts lost: %+v", recs[0])
	}
	if !recs[1].Failed || recs[1].Error != "boom" || recs[1].Outputs != nil {
		t.Errorf("failure record lost: %+v", recs[1])
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte(`{`))); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := Load(bytes.NewReader([]byte(`[{"inputs":{"x":{"kind":"??"}}}]`))); err == nil {
		t.Error("bad value should fail")
	}
}

func TestCorpusConcurrency(t *testing.T) {
	c := NewCorpus()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.OnInvocation(rec(fmt.Sprintf("wf%d", g), "s", "m", i, fmt.Sprintf("P%d-%d", g, i), "R"))
				c.Len()
				c.ExamplesFor("m")
				c.ModuleIDs()
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 400 {
		t.Errorf("Len = %d", c.Len())
	}
}
