package annotate

import (
	"fmt"
	"sort"

	"dexa/internal/module"
	"dexa/internal/ontology"
)

// Suggestion is one ranked annotation candidate for a parameter.
type Suggestion struct {
	Concept string
	Score   float64
}

// Annotator suggests ontology concepts for module parameters.
type Annotator struct {
	ont *ontology.Ontology
	// synonyms maps concept IDs to alternative surface names that the
	// matcher also scores against (e.g. "acc" for Accession).
	synonyms map[string][]string
}

// NewAnnotator builds an annotator over the given ontology.
func NewAnnotator(ont *ontology.Ontology) *Annotator {
	return &Annotator{ont: ont, synonyms: map[string][]string{}}
}

// AddSynonym registers an extra surface name for a concept.
func (a *Annotator) AddSynonym(concept, name string) error {
	if !a.ont.Has(concept) {
		return fmt.Errorf("annotate: unknown concept %q", concept)
	}
	a.synonyms[concept] = append(a.synonyms[concept], name)
	return nil
}

// Suggest returns the k best concept suggestions for the given parameter
// name, ordered by descending score. Each concept is scored by the best
// similarity across its ID, label and synonyms.
func (a *Annotator) Suggest(paramName string, k int) []Suggestion {
	if k <= 0 {
		return nil
	}
	var out []Suggestion
	for _, id := range a.ont.Concepts() {
		c, _ := a.ont.Concept(id)
		best := Similarity(paramName, id)
		if c.Label != "" {
			if s := Similarity(paramName, c.Label); s > best {
				best = s
			}
		}
		for _, syn := range a.synonyms[id] {
			if s := Similarity(paramName, syn); s > best {
				best = s
			}
		}
		out = append(out, Suggestion{Concept: id, Score: best})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Concept < out[j].Concept
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// AnnotateModule fills in the Semantic field of every unannotated
// parameter whose top suggestion scores at least threshold, and returns
// how many parameters were annotated. Already-annotated parameters are
// left untouched.
func (a *Annotator) AnnotateModule(m *module.Module, threshold float64) int {
	n := 0
	n += a.annotateParams(m.Inputs, threshold)
	n += a.annotateParams(m.Outputs, threshold)
	return n
}

func (a *Annotator) annotateParams(ps []module.Parameter, threshold float64) int {
	n := 0
	for i := range ps {
		if ps[i].Semantic != "" {
			continue
		}
		sug := a.Suggest(ps[i].Name, 1)
		if len(sug) == 1 && sug[0].Score >= threshold {
			ps[i].Semantic = sug[0].Concept
			n++
		}
	}
	return n
}
