package annotate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/typesys"
)

func TestTokenize(t *testing.T) {
	cases := map[string][]string{
		"getProteinSequence":    {"get", "protein", "sequence"},
		"GetRecord":             {"get", "record"},
		"DNASequence":           {"dna", "sequence"},
		"peptide_masses":        {"peptide", "masses"},
		"blast-report":          {"blast", "report"},
		"uniprot.accession":     {"uniprot", "accession"},
		"seq2prot":              {"seq", "2", "prot"},
		"getPDBEntry":           {"get", "pdb", "entry"},
		"v2":                    {"v", "2"},
		"":                      nil,
		"___":                   nil,
		"simple":                {"simple"},
		"Protein Sequence":      {"protein", "sequence"},
		"get_genes_by_enzyme42": {"get", "genes", "by", "enzyme", "42"},
	}
	for in, want := range cases {
		if got := Tokenize(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"protein", "protein", 0},
		{"protein", "proteins", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSimilarityProperties(t *testing.T) {
	words := []string{"protein", "sequence", "dna", "accession", "record", "blast", "", "a", "getRecord"}
	r := rand.New(rand.NewSource(9))
	pick := func() string { return words[r.Intn(len(words))] }
	symmetric := func() bool {
		a, b := pick(), pick()
		return DiceBigram(a, b) == DiceBigram(b, a) &&
			Levenshtein(a, b) == Levenshtein(b, a) &&
			TokenJaccard(a, b) == TokenJaccard(b, a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	bounded := func() bool {
		a, b := pick(), pick()
		for _, s := range []float64{DiceBigram(a, b), LevenshteinSimilarity(a, b), TokenJaccard(a, b), Similarity(a, b)} {
			if s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	for _, w := range words {
		if w == "" {
			continue
		}
		if DiceBigram(w, w) != 1 || LevenshteinSimilarity(w, w) != 1 || TokenJaccard(w, w) != 1 {
			t.Errorf("self-similarity of %q should be 1", w)
		}
	}
}

func TestSimilarityEdgeCases(t *testing.T) {
	if DiceBigram("a", "a") != 1 || DiceBigram("a", "b") != 0 {
		t.Error("short-string dice")
	}
	if LevenshteinSimilarity("", "") != 1 {
		t.Error("empty lev sim")
	}
	if TokenJaccard("", "") != 1 {
		t.Error("empty token jaccard")
	}
	if TokenJaccard("_", "_") != 1 && TokenJaccard("_", "_") != 0 {
		// Both tokenless but equal strings: defined as equality check.
		t.Error("tokenless jaccard")
	}
	if got := TokenJaccard("protein_sequence", "ProteinSequence"); got != 1 {
		t.Errorf("naming-convention-insensitive jaccard = %v", got)
	}
}

func testOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New("mygrid")
	o.MustAddConcept("BioinformaticsData", "Bioinformatics data")
	o.MustAddConcept("BioSequence", "Biological sequence", "BioinformaticsData")
	o.MustAddConcept("ProteinSequence", "Protein sequence", "BioSequence")
	o.MustAddConcept("DNASequence", "DNA sequence", "BioSequence")
	o.MustAddConcept("Accession", "Accession number", "BioinformaticsData")
	o.MustAddConcept("UniprotRecord", "Uniprot protein record", "BioinformaticsData")
	return o
}

func TestSuggest(t *testing.T) {
	a := NewAnnotator(testOntology(t))
	sug := a.Suggest("protein_sequence", 3)
	if len(sug) != 3 {
		t.Fatalf("suggestions = %v", sug)
	}
	if sug[0].Concept != "ProteinSequence" {
		t.Errorf("top suggestion = %+v", sug[0])
	}
	if sug[0].Score <= sug[1].Score-1e-12 {
		t.Errorf("ranking not descending: %v", sug)
	}
	if got := a.Suggest("x", 0); got != nil {
		t.Error("k=0 should return nil")
	}
	// Label matching: "uniprot protein record" should match UniprotRecord.
	sug = a.Suggest("uniprot protein record", 1)
	if sug[0].Concept != "UniprotRecord" {
		t.Errorf("label match = %+v", sug[0])
	}
}

func TestSuggestSynonyms(t *testing.T) {
	a := NewAnnotator(testOntology(t))
	if err := a.AddSynonym("Accession", "acc"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSynonym("nope", "x"); err == nil {
		t.Error("unknown concept should fail")
	}
	sug := a.Suggest("acc", 1)
	if sug[0].Concept != "Accession" || sug[0].Score != 1 {
		t.Errorf("synonym match = %+v", sug[0])
	}
}

func TestAnnotateModule(t *testing.T) {
	a := NewAnnotator(testOntology(t))
	m := &module.Module{
		ID: "m", Name: "m",
		Inputs: []module.Parameter{
			{Name: "protein_sequence", Struct: typesys.StringType},
			{Name: "zqxwv", Struct: typesys.StringType},                           // matches nothing well
			{Name: "dna_sequence", Struct: typesys.StringType, Semantic: "Fixed"}, // already annotated
		},
		Outputs: []module.Parameter{
			{Name: "accession_number", Struct: typesys.StringType},
		},
	}
	n := a.AnnotateModule(m, 0.6)
	if n != 2 {
		t.Errorf("annotated = %d, want 2", n)
	}
	if m.Inputs[0].Semantic != "ProteinSequence" {
		t.Errorf("input annotation = %q", m.Inputs[0].Semantic)
	}
	if m.Inputs[1].Semantic != "" {
		t.Errorf("low-confidence parameter should stay unannotated, got %q", m.Inputs[1].Semantic)
	}
	if m.Inputs[2].Semantic != "Fixed" {
		t.Error("existing annotation overwritten")
	}
	if m.Outputs[0].Semantic != "Accession" {
		t.Errorf("output annotation = %q", m.Outputs[0].Semantic)
	}
}
