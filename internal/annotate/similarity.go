// Package annotate implements the parameter-annotation assistant of the
// system architecture (Figure 3, step 1): given an unannotated module and
// a domain ontology, it suggests an ordered list of concepts per parameter
// using schema-matching techniques (name tokenisation plus string
// similarity), in the style of Meteor-S and Radiant.
//
// The curator remains in the loop: Suggest returns ranked candidates, and
// AnnotateModule applies the top suggestion only above a confidence
// threshold. The generation heuristic (package core) consumes the
// resulting annotations.
package annotate

import (
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits an identifier into lower-cased word tokens, handling
// camelCase, PascalCase, snake_case, kebab-case, dotted.names and digit
// boundaries: "getProteinSequence_v2" -> ["get", "protein", "sequence",
// "v", "2"].
func Tokenize(s string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '.' || r == ' ' || r == '/':
			flush()
		case unicode.IsDigit(r):
			if cur.Len() > 0 && !unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		case unicode.IsUpper(r):
			// Split at lower->Upper and at Upper->Upper followed by lower
			// ("DNASequence" -> "DNA", "Sequence").
			if cur.Len() > 0 {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
				if unicode.IsLower(prev) || unicode.IsDigit(prev) || (unicode.IsUpper(prev) && nextLower) {
					flush()
				}
			}
			cur.WriteRune(r)
		default:
			if cur.Len() > 0 && unicode.IsDigit(runes[i-1]) {
				flush()
			}
			cur.WriteRune(r)
		}
	}
	flush()
	return tokens
}

// Levenshtein returns the edit distance between two strings (unit costs).
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity normalises edit distance into [0, 1]: 1 for equal
// strings, 0 for maximally different. Two empty strings score 1.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(maxLen)
}

// DiceBigram returns the Sørensen–Dice coefficient over character bigrams,
// a standard schema-matching string measure. Strings shorter than 2 runes
// compare by equality.
func DiceBigram(a, b string) float64 {
	ba, bb := bigrams(a), bigrams(b)
	if len(ba) == 0 || len(bb) == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	inter := 0
	counts := map[string]int{}
	for _, g := range ba {
		counts[g]++
	}
	for _, g := range bb {
		if counts[g] > 0 {
			counts[g]--
			inter++
		}
	}
	return 2 * float64(inter) / float64(len(ba)+len(bb))
}

func bigrams(s string) []string {
	r := []rune(strings.ToLower(s))
	if len(r) < 2 {
		return nil
	}
	out := make([]string, len(r)-1)
	for i := 0; i < len(r)-1; i++ {
		out[i] = string(r[i : i+2])
	}
	return out
}

// TokenJaccard returns the Jaccard coefficient between the token sets of
// the two identifiers. Two tokenless strings score 1 when equal.
func TokenJaccard(a, b string) float64 {
	ta, tb := Tokenize(a), Tokenize(b)
	if len(ta) == 0 && len(tb) == 0 {
		if a == b {
			return 1
		}
		return 0
	}
	set := map[string]bool{}
	for _, t := range ta {
		set[t] = true
	}
	inter, union := 0, len(set)
	seen := map[string]bool{}
	for _, t := range tb {
		if seen[t] {
			continue
		}
		seen[t] = true
		if set[t] {
			inter++
		} else {
			union++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Similarity is the combined schema-matching score used for ranking: a
// weighted blend of bigram Dice (captures morphology), normalised
// Levenshtein (captures near-misses) and token Jaccard (captures word
// overlap across naming conventions).
func Similarity(a, b string) float64 {
	na := strings.Join(Tokenize(a), " ")
	nb := strings.Join(Tokenize(b), " ")
	return 0.5*DiceBigram(na, nb) + 0.2*LevenshteinSimilarity(na, nb) + 0.3*TokenJaccard(a, b)
}

// rank sorts candidate names by similarity to the query, descending,
// ties broken lexicographically.
func rank(query string, names []string) []scored {
	out := make([]scored, len(names))
	for i, n := range names {
		out[i] = scored{name: n, score: Similarity(query, n)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].name < out[j].name
	})
	return out
}

type scored struct {
	name  string
	score float64
}
