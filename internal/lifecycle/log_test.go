package lifecycle

import (
	"path/filepath"
	"testing"
	"time"

	"dexa/internal/store"
)

func mustAppend(t *testing.T, l *Log, module string, from, to State) Event {
	t.Helper()
	ev, err := l.Append(Event{
		At: time.Date(2014, 3, 24, 12, 0, 0, 0, time.UTC),
		Module: module, From: from, To: to, Probe: ProbeDrifted,
	})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return ev
}

func TestLogAppendSinceAndCursor(t *testing.T) {
	l, err := OpenLog("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i, id := range []string{"a", "b", "c"} {
		ev := mustAppend(t, l, id, StateHealthy, StateSuspect)
		if ev.Seq != uint64(i+1) {
			t.Fatalf("append %d stamped seq %d", i, ev.Seq)
		}
	}
	if l.Seq() != 3 {
		t.Fatalf("Seq = %d, want 3", l.Seq())
	}
	events, next := l.Since(0, 0)
	if len(events) != 3 || next != 3 {
		t.Fatalf("Since(0) = %d events, cursor %d", len(events), next)
	}
	events, next = l.Since(1, 0)
	if len(events) != 2 || events[0].Module != "b" || next != 3 {
		t.Fatalf("Since(1) = %+v, cursor %d", events, next)
	}
	events, next = l.Since(0, 2)
	if len(events) != 2 || next != 2 {
		t.Fatalf("Since(0, limit 2) = %d events, cursor %d", len(events), next)
	}
	if events, next = l.Since(3, 0); len(events) != 0 || next != 3 {
		t.Fatalf("Since(at head) = %d events, cursor %d", len(events), next)
	}
}

func TestLogChangedBroadcast(t *testing.T) {
	l, err := OpenLog("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	mustAppend(t, l, "a", StateHealthy, StateSuspect)

	// Already past the cursor: the channel comes back closed.
	select {
	case <-l.Changed(0):
	default:
		t.Fatal("Changed(0) not ready although the log is past it")
	}
	// At the head: blocks until the next append.
	ch := l.Changed(1)
	select {
	case <-ch:
		t.Fatal("Changed(head) fired without an append")
	default:
	}
	done := make(chan struct{})
	go func() {
		<-ch
		close(done)
	}()
	mustAppend(t, l, "a", StateSuspect, StateQuarantined)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("append did not wake the watcher")
	}
}

func TestLogReplayAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	first := mustAppend(t, l, "alpha", StateHealthy, StateSuspect)
	mustAppend(t, l, "alpha", StateSuspect, StateQuarantined)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Seq() != 2 {
		t.Fatalf("replayed Seq = %d, want 2", l2.Seq())
	}
	events, _ := l2.Since(0, 0)
	if events[0] != first {
		t.Fatalf("replayed event %+v, want %+v", events[0], first)
	}
	// Appends continue the sequence.
	if ev := mustAppend(t, l2, "alpha", StateQuarantined, StateRetired); ev.Seq != 3 {
		t.Fatalf("post-replay append stamped seq %d, want 3", ev.Seq)
	}
}

func TestLogRejectsSequenceGap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.log")
	j, err := store.OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Seq: 7, Module: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(path); err == nil {
		t.Fatal("OpenLog accepted a log starting at seq 7")
	}
}
