package lifecycle

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dexa/internal/workflow"
)

func sampleProposal(moduleID, workflowID string) Proposal {
	p := Proposal{
		Module:     moduleID,
		WorkflowID: workflowID,
		EnqueuedAt: time.Date(2014, 3, 24, 9, 0, 0, 0, time.UTC),
	}
	if workflowID != "" {
		p.Status = workflow.FullyRepaired.String()
		p.Replacements = []workflow.Replacement{{
			StepID: "s0", OldModuleID: moduleID, NewModuleID: moduleID + "-mirror",
		}}
	} else {
		p.Substitutes = []SubstituteRef{{ModuleID: moduleID + "-mirror", Verdict: "Equivalent"}}
	}
	return p
}

func TestQueueEnqueueResolveList(t *testing.T) {
	q, err := OpenQueue("")
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	p1, err := q.Enqueue(sampleProposal("alpha", ""))
	if err != nil {
		t.Fatal(err)
	}
	if p1.ID != "rq-000001" || p1.State != ProposalPending {
		t.Fatalf("first proposal stamped %+v", p1)
	}
	p2, _ := q.Enqueue(sampleProposal("alpha", "wf-1"))
	p3, _ := q.Enqueue(sampleProposal("beta", ""))

	if !q.HasPending("alpha", "wf-1") || q.HasPending("alpha", "wf-2") {
		t.Fatal("HasPending does not key on (module, workflow)")
	}
	at := time.Date(2014, 3, 25, 10, 0, 0, 0, time.UTC)
	if p, err := q.Resolve(p2.ID, true, at); err != nil || p.State != ProposalApproved || p.ResolvedAt == nil {
		t.Fatalf("approve = %+v, %v", p, err)
	}
	if q.HasPending("alpha", "wf-1") {
		t.Fatal("resolved proposal still counts as pending")
	}
	if _, err := q.Resolve(p3.ID, false, at); err != nil {
		t.Fatal(err)
	}
	if q.Pending() != 1 || q.Len() != 3 {
		t.Fatalf("pending %d / len %d, want 1 / 3", q.Pending(), q.Len())
	}
	if got := q.List(ProposalRejected); len(got) != 1 || got[0].ID != p3.ID {
		t.Fatalf("List(rejected) = %+v", got)
	}
	if got := q.List(""); len(got) != 3 || got[0].ID != p1.ID || got[2].ID != p3.ID {
		t.Fatalf("List() lost enqueue order: %+v", got)
	}

	// Error paths: unknown ID, double resolution.
	if _, err := q.Resolve("rq-999999", true, at); err == nil {
		t.Fatal("resolved an unknown proposal")
	}
	if _, err := q.Resolve(p2.ID, false, at); err == nil || !strings.Contains(err.Error(), "already") {
		t.Fatalf("double resolve error = %v", err)
	}
}

// TestQueueCrashRecovery is the durability contract: replaying the
// journal after a restart rebuilds byte-identical queue state, and fresh
// enqueues continue the ID sequence instead of reusing it.
func TestQueueCrashRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repair-queue.log")
	q, err := OpenQueue(path)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(sampleProposal("alpha", ""))
	p2, _ := q.Enqueue(sampleProposal("alpha", "wf-1"))
	q.Enqueue(sampleProposal("beta", ""))
	at := time.Date(2014, 3, 25, 10, 0, 0, 0, time.UTC)
	if _, err := q.Resolve(p2.ID, true, at); err != nil {
		t.Fatal(err)
	}
	before, err := json.Marshal(q.List(""))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := OpenQueue(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer q2.Close()
	after, err := json.Marshal(q2.List(""))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("replayed queue diverged:\n%s\n---\n%s", before, after)
	}
	if q2.Pending() != 2 {
		t.Fatalf("replayed pending = %d, want 2", q2.Pending())
	}
	p4, err := q2.Enqueue(sampleProposal("gamma", ""))
	if err != nil {
		t.Fatal(err)
	}
	if p4.ID != "rq-000004" {
		t.Fatalf("post-replay ID = %s, want rq-000004", p4.ID)
	}
}
