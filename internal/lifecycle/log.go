package lifecycle

import (
	"encoding/json"
	"fmt"
	"sync"

	"dexa/internal/store"
)

// Log is the durable, totally ordered record of lifecycle transitions.
// Appends go to a CRC-framed journal (see store.Journal) before they are
// visible to readers, so a crash never shows a watcher an event that
// would vanish on restart. Readers resume from a cursor — the Seq of the
// last event they saw — and can block until the log grows past it, which
// is what the serving layer's /watch long-poll builds on.
type Log struct {
	mu     sync.Mutex
	events []Event
	j      *store.Journal
	// notify is closed and replaced whenever an event is appended — a
	// broadcast to every blocked watcher.
	notify chan struct{}
}

// OpenLog opens (or creates) the event log at path, replaying any
// existing events. An empty path yields a memory-only log.
func OpenLog(path string) (*Log, error) {
	l := &Log{notify: make(chan struct{})}
	j, err := store.OpenJournal(path, func(payload []byte) error {
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return err
		}
		if want := uint64(len(l.events) + 1); ev.Seq != want {
			return fmt.Errorf("lifecycle: event log gap: got seq %d, want %d", ev.Seq, want)
		}
		l.events = append(l.events, ev)
		return nil
	})
	if err != nil {
		return nil, err
	}
	l.j = j
	return l, nil
}

// Append stamps the next sequence number onto ev, persists it, and wakes
// every blocked watcher. The stamped event is returned.
func (l *Log) Append(ev Event) (Event, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev.Seq = uint64(len(l.events) + 1)
	if err := l.j.Append(ev); err != nil {
		return Event{}, err
	}
	l.events = append(l.events, ev)
	close(l.notify)
	l.notify = make(chan struct{})
	return ev, nil
}

// Seq returns the sequence number of the newest event (0 when empty).
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.events))
}

// Since returns up to limit events with Seq > cursor (limit <= 0 means
// all), plus the cursor to resume from after consuming them.
func (l *Log) Since(cursor uint64, limit int) ([]Event, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cursor >= uint64(len(l.events)) {
		return nil, uint64(len(l.events))
	}
	tail := l.events[cursor:]
	if limit > 0 && len(tail) > limit {
		tail = tail[:limit]
	}
	out := append([]Event(nil), tail...)
	return out, cursor + uint64(len(out))
}

// Changed returns a channel that is closed once the log holds an event
// with Seq > cursor. When it already does, the returned channel is
// already closed, so a select never misses an update.
func (l *Log) Changed(cursor uint64) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if uint64(len(l.events)) > cursor {
		ch := make(chan struct{})
		close(ch)
		return ch
	}
	return l.notify
}

// Flush forces appended events to stable storage.
func (l *Log) Flush() error { return l.j.Sync() }

// Close flushes and closes the backing journal.
func (l *Log) Close() error { return l.j.Close() }
