// Package lifecycle runs the live catalog: a background probe scheduler
// that periodically re-invokes registered modules through the resilient
// executor stack, diffs what they answer against the stored data examples
// that annotate them (§3: δ = ⟨I, O⟩), and drives a per-module state
// machine
//
//	healthy → suspect → quarantined → retired
//	                 ↘ probation ↗
//
// turning the paper's offline workflow-decay experiment (§6) into a
// continuous preservation process in the spirit of Hettne et al.'s
// Research Objects: decay is detected as it happens, quarantined modules
// get a probation path back when their provider recovers, and retirement
// automatically triggers substitute search plus repair proposals queued
// for human approval.
//
// Every transition is appended to a durable, WAL-backed event log
// (store.Journal) exposed by the serving layer as a change feed; the
// repair queue survives restarts the same way. All time flows through
// resilient.Clock, so the whole subsystem — jittered schedules, backoff,
// probation windows — is deterministic under the fake clock.
package lifecycle

import (
	"encoding/json"
	"fmt"
	"time"
)

// Canonical journal file names inside a store directory, shared by
// dexa-serve (which writes them) and dexa-repair -queue (which reads the
// queue back).
const (
	EventLogFile = "lifecycle-events.log"
	QueueFile    = "repair-queue.log"
)

// State is a module's position in the lifecycle state machine.
type State int

const (
	// StateHealthy: recent probes agree with the stored annotation.
	StateHealthy State = iota
	// StateSuspect: the last probe disagreed (drifted output or dead
	// provider); the module stays available while the evidence accrues.
	StateSuspect
	// StateQuarantined: enough consecutive bad probes — the module is
	// pulled from the available catalog (and the match index) but keeps
	// being probed in case the provider recovers.
	StateQuarantined
	// StateProbation: a quarantined module answered correctly again; it
	// must stay correct for a configured number of probes before
	// re-admission.
	StateProbation
	// StateRetired: the module kept failing through quarantine. Probing
	// stops, substitute search runs, and repair proposals are enqueued.
	StateRetired
)

var stateNames = [...]string{"healthy", "suspect", "quarantined", "probation", "retired"}

// String returns the lowercase state name.
func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// MarshalJSON encodes the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range stateNames {
		if n == name {
			*s = State(i)
			return nil
		}
	}
	return fmt.Errorf("lifecycle: unknown state %q", name)
}

// ProbeOutcome classifies one probe of one module.
type ProbeOutcome int

const (
	// ProbeHealthy: every invoked example reproduced its recorded output.
	ProbeHealthy ProbeOutcome = iota
	// ProbeDrifted: the module answered, but at least one output diverged
	// from the stored example (or a previously valid input was rejected) —
	// the silent-decay case data examples exist to catch.
	ProbeDrifted
	// ProbeDead: every invocation failed transiently — the provider is
	// unreachable.
	ProbeDead
	// ProbeSkipped: the module has no stored examples to probe against.
	ProbeSkipped
)

var outcomeNames = [...]string{"healthy", "drifted", "dead", "skipped"}

// String returns the lowercase outcome name.
func (o ProbeOutcome) String() string {
	if o < 0 || int(o) >= len(outcomeNames) {
		return fmt.Sprintf("outcome(%d)", int(o))
	}
	return outcomeNames[o]
}

// MarshalJSON encodes the outcome as its name.
func (o ProbeOutcome) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// UnmarshalJSON decodes an outcome name.
func (o *ProbeOutcome) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for i, n := range outcomeNames {
		if n == name {
			*o = ProbeOutcome(i)
			return nil
		}
	}
	return fmt.Errorf("lifecycle: unknown probe outcome %q", name)
}

// Event is one lifecycle transition. Events are totally ordered by Seq
// (1-based, contiguous), which doubles as the change-feed resume cursor.
type Event struct {
	Seq    uint64       `json:"seq"`
	At     time.Time    `json:"at"`
	Module string       `json:"module"`
	From   State        `json:"from"`
	To     State        `json:"to"`
	Probe  ProbeOutcome `json:"probe"`
	// Reason is a human-readable explanation of the transition.
	Reason string `json:"reason,omitempty"`
}
