package lifecycle

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"dexa/internal/dataexample"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/registry"
	"dexa/internal/resilient"
	"dexa/internal/store"
	"dexa/internal/typesys"
)

// seqModule builds a Seq->Acc string module computing fn.
func seqModule(id string, fn func(s string) string) *module.Module {
	m := &module.Module{
		ID: id, Name: "module " + id, Kind: module.Kind(0),
		Inputs:  []module.Parameter{{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"}},
		Outputs: []module.Parameter{{Name: "acc", Struct: typesys.StringType, Semantic: "Acc"}},
	}
	m.Bind(seqExec(fn))
	return m
}

func seqExec(fn func(s string) string) module.ExecFunc {
	return func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{"acc": typesys.Str(fn(string(in["seq"].(typesys.StringValue))))}, nil
	}
}

// deadExec fails every call transiently — an unreachable provider.
func deadExec(id string) module.ExecFunc {
	return func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return nil, module.Transient(id, module.FaultUnavailable, errors.New("provider gone"))
	}
}

// exampleSet hand-writes n stored examples consistent with fn.
func exampleSet(n int, fn func(s string) string) dataexample.Set {
	set := make(dataexample.Set, n)
	for i := range set {
		in := fmt.Sprintf("ACGT-%d", i)
		set[i] = dataexample.Example{
			Inputs:  map[string]typesys.Value{"seq": typesys.Str(in)},
			Outputs: map[string]typesys.Value{"acc": typesys.Str(fn(in))},
		}
	}
	return set
}

// world is a minimal lifecycle test bed: a registry of Seq->Acc modules,
// a memory store annotated with examples matching their pristine
// behaviour, a catalog index, and a manager on a fake clock.
type world struct {
	clock *resilient.FakeClock
	reg   *registry.Registry
	st    *store.Store
	ix    *match.CatalogIndex
	log   *Log
	queue *Queue
	mgr   *Manager
}

// fastPolicy keeps probes single-attempt so fake time only moves when a
// test advances it.
var fastPolicy = resilient.Policy{MaxAttempts: 1}

func newWorld(t *testing.T, cfg Config, behaviours map[string]func(string) string) *world {
	t.Helper()
	o := ontology.New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Seq", "", "Data")
	o.MustAddConcept("Acc", "", "Data")

	w := &world{clock: resilient.NewFakeClock(), reg: registry.New()}
	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	w.st = st
	for id, fn := range behaviours {
		w.reg.MustRegister(seqModule(id, fn))
		if _, _, err := st.Put(id, exampleSet(4, fn)); err != nil {
			t.Fatal(err)
		}
	}
	w.ix = match.NewCatalogIndex(o, w.reg.Modules())
	log, err := OpenLog("")
	if err != nil {
		t.Fatal(err)
	}
	w.log = log
	w.queue, err = OpenQueue("")
	if err != nil {
		t.Fatal(err)
	}
	w.mgr, err = NewManager(cfg, Deps{
		Registry: w.reg, Examples: st, Index: w.ix,
		Log: log, Queue: w.queue, Clock: w.clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// rebind swaps a module's executor, simulating provider decay/recovery.
func (w *world) rebind(t *testing.T, id string, exec module.Executor) {
	t.Helper()
	e, ok := w.reg.Get(id)
	if !ok {
		t.Fatalf("no module %s", id)
	}
	e.Module.Bind(exec)
}

// sweep advances the fake clock by d and runs every due probe.
func (w *world) sweep(t *testing.T, d time.Duration) []ProbeResult {
	t.Helper()
	w.clock.Advance(d)
	res, err := w.mgr.RunDue(context.Background())
	if err != nil {
		t.Fatalf("RunDue: %v", err)
	}
	return res
}

func (w *world) mustState(t *testing.T, id string, want State) {
	t.Helper()
	got, ok := w.mgr.StateOf(id)
	if !ok || got != want {
		t.Fatalf("state of %s = %v (tracked=%v), want %v", id, got, ok, want)
	}
}

func TestProbeClassification(t *testing.T) {
	identity := func(s string) string { return "X:" + s }
	set := exampleSet(3, identity)
	ctx := context.Background()

	if res := probe(ctx, "m", seqExec(identity), set, 0); res.Outcome != ProbeHealthy || res.Compared != 3 || res.Agreeing != 3 {
		t.Errorf("healthy probe = %+v", res)
	}
	// Silent format change: the module answers, wrongly.
	mutant := func(s string) string { return "LEGACY\n" + identity(s) }
	if res := probe(ctx, "m", seqExec(mutant), set, 0); res.Outcome != ProbeDrifted || res.Agreeing != 0 {
		t.Errorf("drifted probe = %+v", res)
	}
	// All calls fault transiently: the provider is gone.
	if res := probe(ctx, "m", deadExec("m"), set, 0); res.Outcome != ProbeDead || res.Faults != 3 || res.Err == "" {
		t.Errorf("dead probe = %+v", res)
	}
	// A previously valid input now rejected is drift, not a fault.
	reject := module.ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return nil, errors.New("input no longer supported")
	})
	if res := probe(ctx, "m", reject, set, 0); res.Outcome != ProbeDrifted || res.Compared != 3 || res.Faults != 0 {
		t.Errorf("rejecting probe = %+v", res)
	}
	// Some faults, but every completed call agreed: a transient blip.
	n := 0
	flaky := module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		n++
		if n == 1 {
			return nil, module.Transient("m", module.FaultUnavailable, errors.New("blip"))
		}
		return seqExec(identity)(in)
	})
	if res := probe(ctx, "m", flaky, set, 0); res.Outcome != ProbeHealthy || res.Faults != 1 || res.Agreeing != 2 {
		t.Errorf("flaky-but-agreeing probe = %+v", res)
	}
	// No stored examples: nothing to diff against.
	if res := probe(ctx, "m", seqExec(identity), nil, 0); res.Outcome != ProbeSkipped {
		t.Errorf("skipped probe = %+v", res)
	}
	// maxExamples caps the work.
	if res := probe(ctx, "m", seqExec(identity), set, 2); res.Compared != 2 {
		t.Errorf("capped probe compared %d, want 2", res.Compared)
	}
	if res := probe(ctx, "m", nil, set, 0); res.Outcome != ProbeDead {
		t.Errorf("nil-executor probe = %+v", res)
	}
}

// TestDriftQuarantineRetire walks a drifting module through the whole
// decline: suspect on the first bad probe, quarantined (and pulled from
// the catalog and the index) after QuarantineAfter, retired after
// RetireAfter more, at which point probing stops.
func TestDriftQuarantineRetire(t *testing.T) {
	interval := time.Minute
	w := newWorld(t, Config{
		Interval: interval, Jitter: -1, // -1 clamps to zero jitter
		QuarantineAfter: 2, RetireAfter: 2, Policy: fastPolicy,
	}, map[string]func(string) string{
		"alpha": func(s string) string { return "X:" + s },
		"beta":  func(s string) string { return "X:" + s },
	})
	w.mgr.Track("alpha", "beta")

	// First pass: everything healthy, no transitions.
	w.sweep(t, interval)
	if seq := w.log.Seq(); seq != 0 {
		t.Fatalf("healthy sweep logged %d events", seq)
	}
	w.mustState(t, "alpha", StateHealthy)

	// Alpha starts answering in a changed format.
	w.rebind(t, "alpha", seqExec(func(s string) string { return "LEGACY\nX:" + s }))
	genBefore := w.ix.Generation()

	w.sweep(t, interval)
	w.mustState(t, "alpha", StateSuspect)
	if e, _ := w.reg.Get("alpha"); !e.Available {
		t.Fatal("suspect module should stay available")
	}

	w.sweep(t, interval)
	w.mustState(t, "alpha", StateQuarantined)
	if e, _ := w.reg.Get("alpha"); e.Available {
		t.Fatal("quarantined module still available")
	}
	if w.ix.Generation() == genBefore {
		t.Fatal("quarantine did not bump the index generation")
	}

	w.sweep(t, interval) // bad streak 1 of RetireAfter
	w.mustState(t, "alpha", StateQuarantined)
	w.sweep(t, interval)
	w.mustState(t, "alpha", StateRetired)

	// Retired modules drop off the schedule.
	before := w.log.Seq()
	for i := 0; i < 3; i++ {
		for _, res := range w.sweep(t, interval) {
			if res.Module == "alpha" {
				t.Fatal("retired module was probed")
			}
		}
	}
	if w.log.Seq() != before {
		t.Fatal("retired module kept producing events")
	}

	events, _ := w.log.Since(0, 0)
	var got []string
	for i, ev := range events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		got = append(got, fmt.Sprintf("%s:%s->%s", ev.Module, ev.From, ev.To))
	}
	want := []string{
		"alpha:healthy->suspect",
		"alpha:suspect->quarantined",
		"alpha:quarantined->retired",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	// Beta never left healthy.
	w.mustState(t, "beta", StateHealthy)
	if e, _ := w.reg.Get("beta"); !e.Available {
		t.Fatal("healthy module lost availability")
	}
}

// TestRecoveryThroughProbation quarantines a dead module, recovers the
// provider, and checks the probation path back: availability and the
// index entry are restored only after the configured streak of healthy
// probes, and a relapse during probation goes straight back to
// quarantine.
func TestRecoveryThroughProbation(t *testing.T) {
	interval := time.Minute
	w := newWorld(t, Config{
		Interval: interval, Jitter: -1,
		QuarantineAfter: 2, RetireAfter: 100, Probation: 2,
		MaxBackoffShift: 1, Policy: fastPolicy,
	}, map[string]func(string) string{
		"alpha": func(s string) string { return "X:" + s },
	})
	w.mgr.Track("alpha")
	original := seqExec(func(s string) string { return "X:" + s })

	w.rebind(t, "alpha", deadExec("alpha"))
	w.sweep(t, interval)   // suspect
	w.sweep(t, 2*interval) // quarantined (dead probes back off: shift 1 -> 2m)
	w.mustState(t, "alpha", StateQuarantined)

	// Provider comes back.
	w.rebind(t, "alpha", original)
	genBefore := w.ix.Generation()
	w.sweep(t, 2*interval)
	w.mustState(t, "alpha", StateProbation)
	if e, _ := w.reg.Get("alpha"); e.Available {
		t.Fatal("probation must not restore availability yet")
	}

	// Relapse during probation: straight back to quarantine.
	w.rebind(t, "alpha", deadExec("alpha"))
	w.sweep(t, interval)
	w.mustState(t, "alpha", StateQuarantined)

	// Recover again and serve out the full probation.
	w.rebind(t, "alpha", original)
	w.sweep(t, 2*interval)
	w.mustState(t, "alpha", StateProbation)
	w.sweep(t, interval)
	w.mustState(t, "alpha", StateHealthy)
	if e, _ := w.reg.Get("alpha"); !e.Available {
		t.Fatal("re-admitted module should be available")
	}
	if w.ix.Generation() == genBefore {
		t.Fatal("re-admission did not restore the index entry")
	}

	events, _ := w.log.Since(0, 0)
	var got []string
	for _, ev := range events {
		got = append(got, fmt.Sprintf("%s->%s", ev.From, ev.To))
	}
	want := []string{
		"healthy->suspect", "suspect->quarantined",
		"quarantined->probation", "probation->quarantined",
		"quarantined->probation", "probation->healthy",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}

// TestDeadBackoff: probes of a dead provider space out exponentially up
// to the cap, and snap back to the base interval once it answers again.
func TestDeadBackoff(t *testing.T) {
	interval := time.Minute
	w := newWorld(t, Config{
		Interval: interval, Jitter: -1,
		QuarantineAfter: 100, RetireAfter: 100, // stay in suspect forever
		MaxBackoffShift: 2, Policy: fastPolicy,
	}, map[string]func(string) string{
		"alpha": func(s string) string { return "X:" + s },
	})
	w.mgr.Track("alpha")
	w.sweep(t, interval) // healthy baseline

	w.rebind(t, "alpha", deadExec("alpha"))
	wantGaps := []time.Duration{
		2 * interval, // shift 1
		4 * interval, // shift 2
		4 * interval, // capped
		4 * interval, // still capped
	}
	for i, want := range wantGaps {
		if res := w.sweep(t, gapTo(t, w)); len(res) != 1 || res[0].Outcome != ProbeDead {
			t.Fatalf("dead sweep %d = %+v", i, res)
		}
		if got := gapTo(t, w); got != want {
			t.Fatalf("backoff gap %d = %v, want %v", i, got, want)
		}
	}

	// Recovery resets the backoff to the base interval.
	w.rebind(t, "alpha", seqExec(func(s string) string { return "X:" + s }))
	w.sweep(t, gapTo(t, w))
	if got := gapTo(t, w); got != interval {
		t.Fatalf("gap after recovery = %v, want %v", got, interval)
	}
}

// gapTo returns how far ahead of the fake clock the next probe sits.
func gapTo(t *testing.T, w *world) time.Duration {
	t.Helper()
	next, ok := w.mgr.NextDue()
	if !ok {
		t.Fatal("nothing scheduled")
	}
	return next.Sub(w.clock.Now())
}

// TestPhaseSpreadNoThunderingHerd: tracking a large catalog spreads the
// first probes across [0, Interval) instead of firing them all at once.
func TestPhaseSpreadNoThunderingHerd(t *testing.T) {
	interval := 10 * time.Minute
	behaviours := map[string]func(string) string{}
	for i := 0; i < 40; i++ {
		behaviours[fmt.Sprintf("mod-%02d", i)] = func(s string) string { return "X:" + s }
	}
	w := newWorld(t, Config{Interval: interval, Policy: fastPolicy}, behaviours)
	w.mgr.Track(w.mgr.reg.IDs()...)

	now := w.clock.Now()
	distinct := map[time.Time]bool{}
	var min, max time.Duration = interval, 0
	for _, ms := range w.mgr.Status() {
		phase := ms.NextProbe.Sub(now)
		if phase < 0 || phase >= interval {
			t.Fatalf("phase of %s = %v, outside [0, %v)", ms.Module, phase, interval)
		}
		distinct[ms.NextProbe] = true
		if phase < min {
			min = phase
		}
		if phase > max {
			max = phase
		}
	}
	if len(distinct) < 30 {
		t.Fatalf("only %d distinct phases across 40 modules", len(distinct))
	}
	if max-min < interval/4 {
		t.Fatalf("phases bunched into %v of a %v interval", max-min, interval)
	}
}

// TestJitteredRescheduling: consecutive healthy probes land within
// ±Jitter of the base interval, and the offsets vary probe to probe.
func TestJitteredRescheduling(t *testing.T) {
	interval := time.Minute
	jitter := 0.2
	w := newWorld(t, Config{Interval: interval, Jitter: jitter, Policy: fastPolicy},
		map[string]func(string) string{"alpha": func(s string) string { return "X:" + s }})
	w.mgr.Track("alpha")

	lo := time.Duration(float64(interval) * (1 - jitter))
	hi := time.Duration(float64(interval) * (1 + jitter))
	distinct := map[time.Duration]bool{}
	for i := 0; i < 12; i++ {
		w.sweep(t, gapTo(t, w))
		gap := gapTo(t, w)
		if gap < lo || gap > hi {
			t.Fatalf("probe %d rescheduled %v ahead, outside [%v, %v]", i, gap, lo, hi)
		}
		distinct[gap] = true
	}
	if len(distinct) < 4 {
		t.Fatalf("only %d distinct jittered gaps in 12 probes", len(distinct))
	}
}

// TestProbeRidesRetryStack: a probe retries transient faults through the
// resilient executor before concluding anything, so a provider that
// needs two attempts still counts as healthy.
func TestProbeRidesRetryStack(t *testing.T) {
	interval := time.Minute
	w := newWorld(t, Config{
		Interval: interval, Jitter: -1,
		Policy: resilient.Policy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
	}, map[string]func(string) string{
		"alpha": func(s string) string { return "X:" + s },
	})
	w.mgr.Track("alpha")

	calls := 0
	w.rebind(t, "alpha", module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		calls++
		if calls%2 == 1 {
			return nil, module.Transient("alpha", module.FaultThrottled, errors.New("429"))
		}
		return seqExec(func(s string) string { return "X:" + s })(in)
	}))
	res := w.sweep(t, interval)
	if len(res) != 1 || res[0].Outcome != ProbeHealthy {
		t.Fatalf("flaky provider probe = %+v", res)
	}
	if w.clock.Slept() == 0 {
		t.Fatal("retries did not back off through the shared clock")
	}
	w.mustState(t, "alpha", StateHealthy)
}

// TestSkippedModulesNeverTransition: a tracked module without stored
// examples is probed but never moved, whatever its executor does.
func TestSkippedModulesNeverTransition(t *testing.T) {
	w := newWorld(t, Config{Interval: time.Minute, Jitter: -1, Policy: fastPolicy},
		map[string]func(string) string{"alpha": func(s string) string { return "X:" + s }})
	w.reg.MustRegister(seqModule("bare", func(s string) string { return s }))
	w.mgr.Track("bare")
	w.rebind(t, "bare", deadExec("bare"))
	for i := 0; i < 4; i++ {
		w.sweep(t, 2*time.Minute)
	}
	w.mustState(t, "bare", StateHealthy)
	if seq := w.log.Seq(); seq != 0 {
		t.Fatalf("skipped probes logged %d events", seq)
	}
}

// TestScriptedRunsAreDeterministic replays the same decay script in two
// fresh worlds and requires byte-identical event logs — the property the
// fake clock, sorted application order, and hashed jitter exist for.
func TestScriptedRunsAreDeterministic(t *testing.T) {
	run := func() []byte {
		w := newWorld(t, Config{
			Interval: time.Minute, Jitter: 0.3,
			QuarantineAfter: 2, RetireAfter: 2, Probation: 2,
			Workers: 4,
			Policy:  resilient.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
		}, map[string]func(string) string{
			"alpha": func(s string) string { return "X:" + s },
			"beta":  func(s string) string { return "Y:" + s },
			"gamma": func(s string) string { return "Z:" + s },
			"delta": func(s string) string { return "W:" + s },
		})
		w.mgr.Track(w.reg.IDs()...)
		for i := 0; i < 20; i++ {
			switch i {
			case 3:
				w.rebind(t, "alpha", seqExec(func(s string) string { return "LEGACY\nX:" + s }))
				w.rebind(t, "beta", deadExec("beta"))
			case 9:
				w.rebind(t, "beta", seqExec(func(s string) string { return "Y:" + s }))
			}
			w.sweep(t, 90*time.Second)
		}
		events, _ := w.log.Since(0, 0)
		b, err := json.Marshal(events)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("two identical scripted runs diverged:\n%s\n---\n%s", a, b)
	}
}
