package lifecycle

import (
	"context"

	"dexa/internal/match"
	"dexa/internal/registry"
	"dexa/internal/telemetry"
	"dexa/internal/workflow"
)

// Planner turns a retirement into concrete repair proposals. It always
// produces a module-level proposal ranking behavioural substitutes from
// the stored annotation (§6's substitute search over persisted data
// examples), and — when a workflow repository is wired — one proposal per
// decayed workflow, computed by the same workflow.Repairer the offline
// repair pass uses, so the proposed replacements are byte-identical to
// the offline oracle for the same catalog state.
type Planner struct {
	// Comparer runs the substitute search; its Index (if any) must be the
	// live catalog index so pruning follows quarantine/retirement.
	Comparer *match.Comparer
	// Store supplies the retired module's persisted examples.
	Store match.StoredExamples
	// Registry supplies the retired module's signature and the candidates.
	Registry *registry.Registry
	// Repairer and Workflows enable workflow-level proposals; both may be
	// nil/empty when no repository is being tracked.
	Repairer  *workflow.Repairer
	Workflows []*workflow.Workflow
	// MaxSubstitutes caps the ranked candidates listed in the module-level
	// proposal; <= 0 means 5.
	MaxSubstitutes int
}

// Plan computes the proposals for one retired module. The returned
// proposals are unstamped (no ID/state); the caller enqueues them.
func (p *Planner) Plan(ctx context.Context, moduleID string) ([]Proposal, error) {
	ctx, span := telemetry.StartSpan(ctx, "lifecycle.plan")
	span.Annotate("module", moduleID)
	defer span.End()

	var out []Proposal
	mod := p.modulePlan(ctx, moduleID)
	out = append(out, mod)

	if p.Repairer != nil {
		for _, w := range p.Workflows {
			if !referencesModule(w, moduleID) {
				continue
			}
			res, err := p.Repairer.Repair(w)
			if err != nil {
				span.Fail(err)
				return nil, err
			}
			if res.Status == workflow.NotBroken {
				continue
			}
			out = append(out, Proposal{
				Module:       moduleID,
				WorkflowID:   w.ID,
				Status:       res.Status.String(),
				Replacements: res.Replacements,
				Unrepairable: res.Unrepairable,
			})
		}
	}
	return out, nil
}

// modulePlan runs the stored-example substitute search for the module.
func (p *Planner) modulePlan(ctx context.Context, moduleID string) Proposal {
	prop := Proposal{Module: moduleID}
	entry, ok := p.Registry.Get(moduleID)
	if !ok {
		prop.Reason = "module not registered"
		return prop
	}
	subs, err := p.Comparer.FindSubstitutesStoredContext(ctx, p.Store, entry.Module, p.Registry.Available())
	if err != nil {
		// Typically: no stored examples survived from when the module was
		// alive — the §6 caveat that examples cannot be reconstructed after
		// the provider is gone.
		prop.Reason = err.Error()
		return prop
	}
	limit := p.MaxSubstitutes
	if limit <= 0 {
		limit = 5
	}
	for _, c := range subs.Ranked {
		if len(prop.Substitutes) >= limit {
			break
		}
		prop.Substitutes = append(prop.Substitutes, SubstituteRef{
			ModuleID: c.Module.ID,
			Verdict:  c.Result.Verdict.String(),
		})
	}
	if len(prop.Substitutes) == 0 {
		prop.Reason = "no behaviourally compatible candidate"
	}
	return prop
}

func referencesModule(w *workflow.Workflow, moduleID string) bool {
	for _, s := range w.Steps {
		if s.ModuleID == moduleID {
			return true
		}
	}
	return false
}
