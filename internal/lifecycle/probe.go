package lifecycle

import (
	"context"
	"fmt"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/typesys"
)

// ProbeResult is the evidence one probe gathered about one module.
type ProbeResult struct {
	Module  string       `json:"module"`
	Outcome ProbeOutcome `json:"outcome"`
	// Compared counts examples on which the module produced an answer
	// (including execution errors); Agreeing counts how many of those
	// reproduced the stored output.
	Compared int `json:"compared"`
	Agreeing int `json:"agreeing"`
	// Faults counts invocations that failed transiently even after the
	// resilient layer's retries.
	Faults int `json:"faults"`
	// Err is the last transport error observed, for dead probes.
	Err string `json:"err,omitempty"`
}

// probe re-invokes mod (through exec, the resilient wrapper) on up to
// maxExamples of its stored data examples and classifies the answers.
// The rules mirror the matching semantics of §4: an execution error on an
// input that previously produced an output is a behavioural change
// (drift), not a transport fault; only calls whose every attempt faulted
// transiently count as the provider being unreachable.
func probe(ctx context.Context, moduleID string, exec module.Executor, set dataexample.Set, maxExamples int) ProbeResult {
	res := ProbeResult{Module: moduleID}
	if len(set) == 0 {
		res.Outcome = ProbeSkipped
		return res
	}
	n := len(set)
	if maxExamples > 0 && n > maxExamples {
		n = maxExamples
	}
	if exec == nil {
		// Nothing bound locally: indistinguishable from a vanished provider.
		res.Outcome = ProbeDead
		res.Faults = n
		res.Err = fmt.Sprintf("module %s: no executor bound", moduleID)
		return res
	}
	for _, ex := range set[:n] {
		outs, err := module.InvokeWithContext(ctx, exec, ex.Inputs)
		if err != nil {
			if module.IsTransient(err) {
				res.Faults++
				res.Err = err.Error()
				continue
			}
			// The module answered: it now rejects an input combination it
			// used to accept. That is a behavioural disagreement.
			res.Compared++
			continue
		}
		res.Compared++
		if outputsEqual(ex.Outputs, outs) {
			res.Agreeing++
		}
	}
	switch {
	case res.Compared == 0 && res.Faults > 0:
		res.Outcome = ProbeDead
	case res.Agreeing == res.Compared && res.Faults == 0:
		res.Outcome = ProbeHealthy
	case res.Agreeing == res.Compared:
		// Some calls faulted but every completed one agreed: a transient
		// blip the resilient layer already fought through — not decay.
		res.Outcome = ProbeHealthy
	default:
		res.Outcome = ProbeDrifted
	}
	return res
}

// outputsEqual reports whether the observed outputs reproduce the stored
// ones exactly: same parameter names, equal values.
func outputsEqual(want, got map[string]typesys.Value) bool {
	if len(want) != len(got) {
		return false
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok || !w.Equal(g) {
			return false
		}
	}
	return true
}
