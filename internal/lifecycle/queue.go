package lifecycle

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"dexa/internal/store"
	"dexa/internal/telemetry"
	"dexa/internal/workflow"
)

// ProposalState is the approval status of a queued repair proposal.
type ProposalState string

const (
	ProposalPending  ProposalState = "pending"
	ProposalApproved ProposalState = "approved"
	ProposalRejected ProposalState = "rejected"
)

// SubstituteRef names one ranked substitute candidate for a retired
// module, with the behavioural verdict that ranked it.
type SubstituteRef struct {
	ModuleID string `json:"module_id"`
	Verdict  string `json:"verdict"`
}

// Proposal is one human-approvable repair suggestion produced when a
// module is retired. Module-level proposals (WorkflowID == "") carry the
// ranked substitutes from the stored-example search; workflow-level
// proposals carry the concrete step replacements computed by
// workflow.Repair, byte-identical to what the offline repair pass would
// produce for the same catalog state.
type Proposal struct {
	ID     string `json:"id"`
	Module string `json:"module"`
	// WorkflowID identifies the decayed workflow this proposal rewrites;
	// empty for the module-level substitute summary.
	WorkflowID string `json:"workflow_id,omitempty"`
	// Status is the workflow.RepairStatus name for workflow proposals.
	Status       string                 `json:"status,omitempty"`
	Replacements []workflow.Replacement `json:"replacements,omitempty"`
	Unrepairable map[string]string      `json:"unrepairable,omitempty"`
	Substitutes  []SubstituteRef        `json:"substitutes,omitempty"`
	// Reason notes why a proposal is empty (e.g. no stored examples).
	Reason     string        `json:"reason,omitempty"`
	State      ProposalState `json:"state"`
	EnqueuedAt time.Time     `json:"enqueued_at"`
	ResolvedAt *time.Time    `json:"resolved_at,omitempty"`
}

// queueRecord is one journaled queue mutation.
type queueRecord struct {
	Op       string        `json:"op"` // "enqueue" | "resolve"
	Proposal *Proposal     `json:"proposal,omitempty"`
	ID       string        `json:"id,omitempty"`
	State    ProposalState `json:"state,omitempty"`
	At       time.Time     `json:"at,omitempty"`
}

// Queue is the durable repair-proposal queue. Every mutation is journaled
// before it is visible, so replaying the journal after a crash rebuilds
// the exact queue state, pending approvals included.
type Queue struct {
	mu    sync.Mutex
	j     *store.Journal
	byID  map[string]*Proposal
	order []string
	seq   int

	enqueued *telemetry.Counter
	resolved *telemetry.CounterVec
}

// OpenQueue opens (or creates) the repair queue at path, replaying any
// journaled history. An empty path yields a memory-only queue.
func OpenQueue(path string) (*Queue, error) {
	q := &Queue{byID: map[string]*Proposal{}}
	j, err := store.OpenJournal(path, func(payload []byte) error {
		var rec queueRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return err
		}
		return q.apply(rec)
	})
	if err != nil {
		return nil, err
	}
	q.j = j
	return q, nil
}

// apply replays one journaled mutation into the in-memory state.
func (q *Queue) apply(rec queueRecord) error {
	switch rec.Op {
	case "enqueue":
		if rec.Proposal == nil {
			return fmt.Errorf("lifecycle: enqueue record without proposal")
		}
		p := *rec.Proposal
		if _, dup := q.byID[p.ID]; dup {
			return fmt.Errorf("lifecycle: duplicate proposal %s in journal", p.ID)
		}
		q.byID[p.ID] = &p
		q.order = append(q.order, p.ID)
		var n int
		if _, err := fmt.Sscanf(p.ID, "rq-%d", &n); err == nil && n > q.seq {
			q.seq = n
		}
	case "resolve":
		p, ok := q.byID[rec.ID]
		if !ok {
			return fmt.Errorf("lifecycle: resolve record for unknown proposal %s", rec.ID)
		}
		p.State = rec.State
		at := rec.At
		p.ResolvedAt = &at
	default:
		return fmt.Errorf("lifecycle: unknown queue op %q", rec.Op)
	}
	return nil
}

// Enqueue assigns the next proposal ID, marks the proposal pending, and
// journals it. The stamped proposal is returned.
func (q *Queue) Enqueue(p Proposal) (Proposal, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.seq++
	p.ID = fmt.Sprintf("rq-%06d", q.seq)
	p.State = ProposalPending
	if err := q.j.Append(queueRecord{Op: "enqueue", Proposal: &p}); err != nil {
		q.seq--
		return Proposal{}, err
	}
	cp := p
	q.byID[p.ID] = &cp
	q.order = append(q.order, p.ID)
	if q.enqueued != nil {
		q.enqueued.Inc()
	}
	return p, nil
}

// Resolve approves or rejects a pending proposal at the given time.
func (q *Queue) Resolve(id string, approve bool, at time.Time) (Proposal, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p, ok := q.byID[id]
	if !ok {
		return Proposal{}, fmt.Errorf("lifecycle: unknown proposal %q", id)
	}
	if p.State != ProposalPending {
		return Proposal{}, fmt.Errorf("lifecycle: proposal %s already %s", id, p.State)
	}
	state := ProposalRejected
	if approve {
		state = ProposalApproved
	}
	if err := q.j.Append(queueRecord{Op: "resolve", ID: id, State: state, At: at}); err != nil {
		return Proposal{}, err
	}
	p.State = state
	p.ResolvedAt = &at
	if q.resolved != nil {
		q.resolved.With(string(state)).Inc()
	}
	return *p, nil
}

// Get returns a copy of the proposal with the given ID.
func (q *Queue) Get(id string) (Proposal, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	p, ok := q.byID[id]
	if !ok {
		return Proposal{}, false
	}
	return *p, true
}

// List returns proposals in enqueue order; state filters when non-empty.
func (q *Queue) List(state ProposalState) []Proposal {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Proposal, 0, len(q.order))
	for _, id := range q.order {
		p := q.byID[id]
		if state != "" && p.State != state {
			continue
		}
		out = append(out, *p)
	}
	return out
}

// HasPending reports whether a pending proposal already covers the given
// (module, workflow) pair — the dedup guard against re-proposing the same
// repair when several modules of one workflow retire in sequence.
func (q *Queue) HasPending(moduleID, workflowID string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, id := range q.order {
		p := q.byID[id]
		if p.State == ProposalPending && p.Module == moduleID && p.WorkflowID == workflowID {
			return true
		}
	}
	return false
}

// Pending returns the number of proposals awaiting a decision.
func (q *Queue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, p := range q.byID {
		if p.State == ProposalPending {
			n++
		}
	}
	return n
}

// Len returns the total number of proposals ever enqueued (and retained).
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// Instrument exports queue metrics into the registry.
func (q *Queue) Instrument(r *telemetry.Registry) {
	if r == nil {
		return
	}
	q.mu.Lock()
	q.enqueued = r.Counter("dexa_repair_proposals_enqueued_total", "Repair proposals enqueued by module retirement.")
	q.resolved = r.CounterVec("dexa_repair_proposals_resolved_total", "Repair proposals resolved, by decision.", "state")
	q.mu.Unlock()
	r.GaugeFunc("dexa_repair_proposals_pending", "Repair proposals awaiting a decision.", func() float64 {
		return float64(q.Pending())
	})
}

// Flush forces journaled mutations to stable storage.
func (q *Queue) Flush() error { return q.j.Sync() }

// Close flushes and closes the backing journal.
func (q *Queue) Close() error { return q.j.Close() }
