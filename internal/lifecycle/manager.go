package lifecycle

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/registry"
	"dexa/internal/resilient"
	"dexa/internal/telemetry"
)

// Config tunes the probe scheduler and state machine. Zero fields take
// the defaults documented per field.
type Config struct {
	// Interval is the base probe period per module (default 5m).
	Interval time.Duration
	// Jitter spreads consecutive probes by ±Jitter·Interval so modules
	// sharing a schedule drift apart instead of stampeding the providers
	// together (default 0.2, clamped to [0, 0.9]).
	Jitter float64
	// MaxExamples bounds how many stored examples one probe re-invokes
	// (default 4 — enough to catch the drift cases of §6 without turning
	// the probe itself into load).
	MaxExamples int
	// QuarantineAfter is the consecutive bad probes (counting the one
	// that made the module suspect) that quarantine it (default 2).
	QuarantineAfter int
	// RetireAfter is the additional consecutive bad probes while
	// quarantined that retire it (default 2).
	RetireAfter int
	// Probation is the consecutive healthy probes a quarantined module
	// must answer before re-admission (default 2).
	Probation int
	// MaxBackoffShift caps the exponential backoff applied to probes of
	// dead providers: the interval doubles per dead probe up to
	// Interval·2^MaxBackoffShift (default 4).
	MaxBackoffShift int
	// Workers bounds concurrent probes per sweep (default min(4, NumCPU)).
	Workers int
	// Seed makes phase offsets and jitter deterministic (default 1).
	Seed int64
	// Policy is the per-probe resilient retry policy; zero fields take
	// resilient.DefaultPolicy values.
	Policy resilient.Policy
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	}
	if c.Jitter > 0.9 {
		c.Jitter = 0.9
	}
	if c.MaxExamples <= 0 {
		c.MaxExamples = 4
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 2
	}
	if c.RetireAfter <= 0 {
		c.RetireAfter = 2
	}
	if c.Probation <= 0 {
		c.Probation = 2
	}
	if c.MaxBackoffShift <= 0 {
		c.MaxBackoffShift = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
		if c.Workers > 4 {
			c.Workers = 4
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Deps wires the manager into the rest of the system.
type Deps struct {
	// Registry is the module catalog; lifecycle transitions drive its
	// availability flags. Required.
	Registry *registry.Registry
	// Examples supplies the persisted annotations probes diff against
	// (typically *store.Store). Required.
	Examples match.StoredExamples
	// Index, when set, is incrementally maintained: quarantine/retirement
	// call Remove, re-admission calls Update — each bumps the generation
	// that keys the serving layer's caches. No full rebuilds.
	Index *match.CatalogIndex
	// Log records transitions. Required.
	Log *Log
	// Queue and Planner enable repair-as-a-service on retirement; both
	// may be nil to disable.
	Queue   *Queue
	Planner *Planner
	// Clock abstracts time; nil means the system clock.
	Clock resilient.Clock
	// Metrics, when set, exports probe/transition/state series.
	Metrics *telemetry.Registry
}

// moduleState is the scheduler's per-module bookkeeping.
type moduleState struct {
	id           string
	state        State
	badStreak    int
	goodStreak   int
	backoffShift int
	probes       uint64
	nextDue      time.Time
	lastOutcome  ProbeOutcome
	lastProbed   time.Time
}

// Manager owns the probe schedule and the lifecycle state machine.
type Manager struct {
	cfg     Config
	reg     *registry.Registry
	store   match.StoredExamples
	index   *match.CatalogIndex
	log     *Log
	queue   *Queue
	planner *Planner
	clock   resilient.Clock

	mu    sync.Mutex
	mods  map[string]*moduleState
	execs map[string]*resilient.Executor

	met managerMetrics
}

type managerMetrics struct {
	probes      *telemetry.CounterVec
	transitions *telemetry.CounterVec
	sweeps      *telemetry.Counter
	states      *telemetry.GaugeVec
}

// NewManager builds a manager. Registry, Examples and Log are required.
func NewManager(cfg Config, deps Deps) (*Manager, error) {
	if deps.Registry == nil || deps.Examples == nil || deps.Log == nil {
		return nil, fmt.Errorf("lifecycle: Registry, Examples and Log are required")
	}
	clock := deps.Clock
	if clock == nil {
		clock = resilient.SystemClock{}
	}
	m := &Manager{
		cfg:     cfg.withDefaults(),
		reg:     deps.Registry,
		store:   deps.Examples,
		index:   deps.Index,
		log:     deps.Log,
		queue:   deps.Queue,
		planner: deps.Planner,
		clock:   clock,
		mods:    map[string]*moduleState{},
		execs:   map[string]*resilient.Executor{},
	}
	if r := deps.Metrics; r != nil {
		m.met = managerMetrics{
			probes:      r.CounterVec("dexa_lifecycle_probes_total", "Module probes, by outcome.", "outcome"),
			transitions: r.CounterVec("dexa_lifecycle_transitions_total", "Lifecycle transitions, by destination state.", "to"),
			sweeps:      r.Counter("dexa_lifecycle_sweeps_total", "Probe sweeps executed."),
			states:      r.GaugeVec("dexa_lifecycle_modules", "Tracked modules, by lifecycle state.", "state"),
		}
	}
	return m, nil
}

// Log returns the transition log the manager appends to.
func (m *Manager) Log() *Log { return m.log }

// Now reads the manager's clock — the shared time source callers should
// stamp queue resolutions with, so everything stays deterministic under
// the fake clock.
func (m *Manager) Now() time.Time { return m.clock.Now() }

// Queue returns the repair queue (nil when repair is disabled).
func (m *Manager) Queue() *Queue { return m.queue }

// Track adds modules to the probe schedule, each starting healthy with a
// deterministic phase offset in [0, Interval) so a large catalog's first
// sweep does not hammer every provider at the same instant. Already
// tracked IDs are ignored.
func (m *Manager) Track(ids ...string) {
	now := m.clock.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, id := range ids {
		if _, ok := m.mods[id]; ok {
			continue
		}
		phase := time.Duration(m.unit(id, 0) * float64(m.cfg.Interval))
		m.mods[id] = &moduleState{id: id, state: StateHealthy, nextDue: now.Add(phase)}
	}
	m.updateStateGaugesLocked()
}

// TrackAll tracks every available registered module that has examples to
// probe against, and returns how many are now tracked.
func (m *Manager) TrackAll() int {
	var ids []string
	for _, id := range m.reg.IDs() {
		e, ok := m.reg.Get(id)
		if !ok || !e.Available {
			continue
		}
		if set, _, ok := m.store.Get(id); ok && len(set) > 0 {
			ids = append(ids, id)
		} else if len(e.Examples) > 0 {
			ids = append(ids, id)
		}
	}
	m.Track(ids...)
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.mods)
}

// Tracked returns the tracked module IDs, sorted.
func (m *Manager) Tracked() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.mods))
	for id := range m.mods {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// StateOf returns the lifecycle state of a tracked module.
func (m *Manager) StateOf(id string) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ms, ok := m.mods[id]
	if !ok {
		return 0, false
	}
	return ms.state, true
}

// ModuleStatus is one row of the lifecycle summary.
type ModuleStatus struct {
	Module      string       `json:"module"`
	State       State        `json:"state"`
	LastOutcome ProbeOutcome `json:"last_outcome"`
	LastProbed  time.Time    `json:"last_probed"`
	NextProbe   time.Time    `json:"next_probe"`
}

// Status returns the per-module lifecycle summary, sorted by module ID.
func (m *Manager) Status() []ModuleStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]ModuleStatus, 0, len(m.mods))
	for _, ms := range m.mods {
		out = append(out, ModuleStatus{
			Module: ms.id, State: ms.state, LastOutcome: ms.lastOutcome,
			LastProbed: ms.lastProbed, NextProbe: ms.nextDue,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Module < out[j].Module })
	return out
}

// Counts returns how many tracked modules sit in each state.
func (m *Manager) Counts() map[string]int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]int{}
	for _, ms := range m.mods {
		out[ms.state.String()]++
	}
	return out
}

// NextDue returns the earliest scheduled probe time; ok is false when
// nothing probeable is tracked.
func (m *Manager) NextDue() (time.Time, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var next time.Time
	found := false
	for _, ms := range m.mods {
		if ms.state == StateRetired {
			continue
		}
		if !found || ms.nextDue.Before(next) {
			next = ms.nextDue
			found = true
		}
	}
	return next, found
}

// dueIDs returns the modules due at or before now, sorted.
func (m *Manager) dueIDs(now time.Time) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var due []string
	for id, ms := range m.mods {
		if ms.state == StateRetired {
			continue
		}
		if !ms.nextDue.After(now) {
			due = append(due, id)
		}
	}
	sort.Strings(due)
	return due
}

// RunDue probes every due module — concurrently up to Workers — and then
// applies the resulting transitions in sorted module order, so the event
// stream is deterministic regardless of probe interleaving. Results are
// returned in the same order.
func (m *Manager) RunDue(ctx context.Context) ([]ProbeResult, error) {
	ctx, span := telemetry.StartSpan(ctx, "lifecycle.sweep")
	defer span.End()
	due := m.dueIDs(m.clock.Now())
	span.Annotate("due", strconv.Itoa(len(due)))
	m.met.sweeps.Inc()
	if len(due) == 0 {
		return nil, nil
	}
	results := make([]ProbeResult, len(due))
	sem := make(chan struct{}, m.cfg.Workers)
	var wg sync.WaitGroup
	for i, id := range due {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = m.probeOne(ctx, id)
		}(i, id)
	}
	wg.Wait()
	// Transitions are applied after every probe returned, stamped with a
	// single post-sweep clock read: deterministic even under the fake
	// clock, whose Sleep-driven advances during retries depend on probe
	// interleaving only in total, not per module.
	now := m.clock.Now()
	for i := range results {
		if err := m.apply(ctx, results[i], now); err != nil {
			return results, err
		}
	}
	m.mu.Lock()
	m.updateStateGaugesLocked()
	m.mu.Unlock()
	return results, nil
}

// maxSleepSlice keeps Run responsive to cancellation under the system
// clock, whose Sleep cannot be interrupted.
const maxSleepSlice = 250 * time.Millisecond

// Run probes on schedule until ctx is cancelled. Under the fake clock
// tests drive RunDue directly instead; Run is the production loop.
func (m *Manager) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return nil
		}
		now := m.clock.Now()
		next, ok := m.NextDue()
		if !ok {
			next = now.Add(m.cfg.Interval)
		}
		if next.After(now) {
			d := next.Sub(now)
			if d > maxSleepSlice {
				d = maxSleepSlice
			}
			m.clock.Sleep(d)
			continue
		}
		if _, err := m.RunDue(ctx); err != nil {
			return err
		}
	}
}

// executor returns the module's cached resilient wrapper. The wrapper
// holds the *module.Module itself as the inner executor, so rebinding
// (how the simulation scripts decay and recovery) is observed on the
// next probe without rebuilding the wrapper or its breaker history.
func (m *Manager) executor(mod *module.Module) module.Executor {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.execs[mod.ID]; ok {
		return e
	}
	pol := m.cfg.Policy
	if pol.Seed == 0 {
		pol.Seed = m.cfg.Seed
	}
	e := resilient.Wrap(mod.ID, mod, resilient.Options{Policy: pol, Clock: m.clock})
	m.execs[mod.ID] = e
	return e
}

// probeOne gathers evidence for one module.
func (m *Manager) probeOne(ctx context.Context, id string) ProbeResult {
	ctx, span := telemetry.StartSpan(ctx, "lifecycle.probe")
	span.Annotate("module", id)
	defer span.End()
	var res ProbeResult
	entry, ok := m.reg.Get(id)
	switch {
	case !ok:
		res = ProbeResult{Module: id, Outcome: ProbeDead, Err: "module deregistered"}
	case !entry.Module.Bound():
		res = ProbeResult{Module: id, Outcome: ProbeDead, Err: "no executor bound"}
	default:
		set, _, found := m.store.Get(id)
		if !found || len(set) == 0 {
			set = entry.Examples
		}
		res = probe(ctx, id, m.executor(entry.Module), set, m.cfg.MaxExamples)
	}
	span.Annotate("outcome", res.Outcome.String())
	m.met.probes.With(res.Outcome.String()).Inc()
	return res
}

// apply advances one module's state machine with the probe's evidence,
// performs the catalog side effects, and records the transition event.
func (m *Manager) apply(ctx context.Context, res ProbeResult, now time.Time) error {
	m.mu.Lock()
	ms, ok := m.mods[res.Module]
	if !ok || ms.state == StateRetired {
		m.mu.Unlock()
		return nil
	}
	ms.probes++
	ms.lastOutcome = res.Outcome
	ms.lastProbed = now
	if res.Outcome == ProbeSkipped {
		m.rescheduleLocked(ms, res.Outcome, now)
		m.mu.Unlock()
		return nil
	}
	from := ms.state
	to := from
	bad := res.Outcome == ProbeDrifted || res.Outcome == ProbeDead
	var reason string
	switch from {
	case StateHealthy:
		if bad {
			to, ms.badStreak, reason = StateSuspect, 1, badReason(res)
		} else {
			ms.badStreak = 0
		}
	case StateSuspect:
		if bad {
			ms.badStreak++
			if ms.badStreak >= m.cfg.QuarantineAfter {
				to = StateQuarantined
				reason = fmt.Sprintf("%d consecutive bad probes (%s)", ms.badStreak, badReason(res))
				ms.badStreak = 0
			}
		} else {
			to, ms.badStreak, reason = StateHealthy, 0, "probe agreed with stored examples"
		}
	case StateQuarantined:
		if bad {
			ms.badStreak++
			if ms.badStreak >= m.cfg.RetireAfter {
				to = StateRetired
				reason = fmt.Sprintf("still failing after quarantine (%s)", badReason(res))
			}
		} else {
			to, ms.goodStreak, ms.badStreak = StateProbation, 1, 0
			reason = "probe agreed; starting probation"
		}
	case StateProbation:
		if bad {
			to, ms.badStreak, ms.goodStreak = StateQuarantined, 1, 0
			reason = fmt.Sprintf("relapsed during probation (%s)", badReason(res))
		} else {
			ms.goodStreak++
			if ms.goodStreak >= m.cfg.Probation {
				to = StateHealthy
				reason = fmt.Sprintf("probation complete after %d healthy probes", ms.goodStreak)
				ms.goodStreak = 0
			}
		}
	}
	ms.state = to
	if to == StateRetired {
		ms.nextDue = time.Time{}
	} else {
		m.rescheduleLocked(ms, res.Outcome, now)
	}
	m.mu.Unlock()

	if to == from {
		return nil
	}
	// Catalog side effects, outside m.mu (the registry fires availability
	// watchers that may read back through us or the index).
	switch to {
	case StateQuarantined, StateRetired:
		_ = m.reg.SetAvailable(res.Module, false)
		if m.index != nil {
			m.index.Remove(res.Module)
		}
	case StateHealthy:
		if from == StateProbation {
			_ = m.reg.SetAvailable(res.Module, true)
			if m.index != nil {
				if e, ok := m.reg.Get(res.Module); ok {
					m.index.Update(e.Module)
				}
			}
		}
	}
	if _, err := m.log.Append(Event{At: now, Module: res.Module, From: from, To: to, Probe: res.Outcome, Reason: reason}); err != nil {
		return err
	}
	m.met.transitions.With(to.String()).Inc()
	if to == StateRetired {
		return m.retire(ctx, res.Module, now)
	}
	return nil
}

// retire plans repair proposals for a freshly retired module and
// enqueues the ones not already pending.
func (m *Manager) retire(ctx context.Context, id string, now time.Time) error {
	if m.planner == nil || m.queue == nil {
		return nil
	}
	props, err := m.planner.Plan(ctx, id)
	if err != nil {
		return err
	}
	for _, p := range props {
		if m.queue.HasPending(p.Module, p.WorkflowID) {
			continue
		}
		p.EnqueuedAt = now
		if _, err := m.queue.Enqueue(p); err != nil {
			return err
		}
	}
	return nil
}

// badReason renders a short explanation of a bad probe.
func badReason(res ProbeResult) string {
	if res.Outcome == ProbeDead {
		return "provider unreachable: " + res.Err
	}
	return fmt.Sprintf("output drift: %d/%d examples agree", res.Agreeing, res.Compared)
}

// rescheduleLocked computes the module's next probe time: the base
// interval with deterministic ±Jitter spread, doubled per consecutive
// dead probe up to the backoff cap. Callers hold m.mu.
func (m *Manager) rescheduleLocked(ms *moduleState, outcome ProbeOutcome, now time.Time) {
	interval := m.cfg.Interval
	if outcome == ProbeDead {
		if ms.backoffShift < m.cfg.MaxBackoffShift {
			ms.backoffShift++
		}
		interval <<= ms.backoffShift
	} else {
		ms.backoffShift = 0
	}
	jit := (m.unit(ms.id, ms.probes)*2 - 1) * m.cfg.Jitter
	ms.nextDue = now.Add(time.Duration(float64(interval) * (1 + jit)))
}

// unit hashes (seed, id, n) into [0, 1) deterministically.
func (m *Manager) unit(id string, n uint64) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(m.cfg.Seed))
	h.Write(b[:])
	h.Write([]byte(id))
	binary.BigEndian.PutUint64(b[:], n)
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// updateStateGaugesLocked refreshes the per-state module gauges.
func (m *Manager) updateStateGaugesLocked() {
	if m.met.states == nil {
		return
	}
	counts := map[State]int{}
	for _, ms := range m.mods {
		counts[ms.state]++
	}
	for s := StateHealthy; s <= StateRetired; s++ {
		m.met.states.With(s.String()).Set(float64(counts[s]))
	}
}
