package ontology

import (
	"reflect"
	"testing"
)

// buildMyGridFragment mirrors Figure 4 of the paper plus a record branch.
func buildMyGridFragment(t testing.TB) *Ontology {
	t.Helper()
	o := New("mygrid-fragment")
	o.MustAddConcept("BioinformaticsData", "Bioinformatics data")
	o.MustAddConcept("BioSequence", "Biological sequence", "BioinformaticsData")
	o.MustAddConcept("NucleotideSequence", "Nucleotide sequence", "BioSequence")
	o.MustAddConcept("DNASequence", "DNA sequence", "NucleotideSequence")
	o.MustAddConcept("RNASequence", "RNA sequence", "NucleotideSequence")
	o.MustAddConcept("ProtSequence", "Protein sequence", "BioSequence")
	o.MustAddConcept("Record", "Biological record", "BioinformaticsData")
	o.MustAddConcept("UniprotRecord", "Uniprot record", "Record")
	o.MustAddConcept("FastaRecord", "Fasta record", "Record")
	return o
}

func TestAddConceptErrors(t *testing.T) {
	o := New("t")
	if err := o.AddConcept("", ""); err == nil {
		t.Error("empty ID should fail")
	}
	o.MustAddConcept("A", "")
	if err := o.AddConcept("A", ""); err == nil {
		t.Error("duplicate should fail")
	}
	if err := o.AddConcept("B", "", "missing"); err == nil {
		t.Error("unknown parent should fail")
	}
}

func TestSubsumes(t *testing.T) {
	o := buildMyGridFragment(t)
	cases := []struct {
		sup, sub string
		want     bool
	}{
		{"BioSequence", "ProtSequence", true},
		{"BioSequence", "DNASequence", true},
		{"BioinformaticsData", "RNASequence", true},
		{"BioSequence", "BioSequence", true},
		{"ProtSequence", "BioSequence", false},
		{"ProtSequence", "DNASequence", false},
		{"Record", "DNASequence", false},
		{"Nope", "DNASequence", false},
		{"BioSequence", "Nope", false},
	}
	for _, c := range cases {
		if got := o.Subsumes(c.sup, c.sub); got != c.want {
			t.Errorf("Subsumes(%s, %s) = %v, want %v", c.sup, c.sub, got, c.want)
		}
	}
	if o.StrictlySubsumes("BioSequence", "BioSequence") {
		t.Error("StrictlySubsumes must exclude equality")
	}
	if !o.StrictlySubsumes("BioSequence", "RNASequence") {
		t.Error("StrictlySubsumes(BioSequence, RNASequence) should hold")
	}
}

func TestDescendantsAncestors(t *testing.T) {
	o := buildMyGridFragment(t)
	wantDesc := []string{"DNASequence", "NucleotideSequence", "ProtSequence", "RNASequence"}
	if got := o.Descendants("BioSequence"); !reflect.DeepEqual(got, wantDesc) {
		t.Errorf("Descendants = %v, want %v", got, wantDesc)
	}
	wantAnc := []string{"BioSequence", "BioinformaticsData", "NucleotideSequence"}
	if got := o.Ancestors("DNASequence"); !reflect.DeepEqual(got, wantAnc) {
		t.Errorf("Ancestors = %v, want %v", got, wantAnc)
	}
	if o.Descendants("nope") != nil || o.Ancestors("nope") != nil {
		t.Error("unknown concepts should return nil")
	}
	if got := o.Descendants("DNASequence"); len(got) != 0 {
		t.Errorf("leaf should have no descendants, got %v", got)
	}
}

func TestRootsLeavesDepth(t *testing.T) {
	o := buildMyGridFragment(t)
	if got := o.Roots(); !reflect.DeepEqual(got, []string{"BioinformaticsData"}) {
		t.Errorf("Roots = %v", got)
	}
	if !o.IsLeaf("DNASequence") || o.IsLeaf("BioSequence") || o.IsLeaf("nope") {
		t.Error("IsLeaf misbehaves")
	}
	for id, want := range map[string]int{"BioinformaticsData": 0, "BioSequence": 1, "DNASequence": 3, "nope": -1} {
		if got := o.Depth(id); got != want {
			t.Errorf("Depth(%s) = %d, want %d", id, got, want)
		}
	}
}

func TestDAGMultipleParents(t *testing.T) {
	o := buildMyGridFragment(t)
	// FastaRecord is also a kind of BioSequence representation in some
	// annotation schemes; model via an extra edge.
	if err := o.AddSubsumption("FastaRecord", "BioSequence"); err != nil {
		t.Fatalf("AddSubsumption: %v", err)
	}
	if !o.Subsumes("BioSequence", "FastaRecord") || !o.Subsumes("Record", "FastaRecord") {
		t.Error("multi-parent subsumption broken")
	}
	if err := o.AddSubsumption("FastaRecord", "BioSequence"); err == nil {
		t.Error("duplicate edge should fail")
	}
	if err := o.AddSubsumption("FastaRecord", "FastaRecord"); err == nil {
		t.Error("self edge should fail")
	}
	if err := o.AddSubsumption("BioinformaticsData", "FastaRecord"); err == nil {
		t.Error("cycle should be rejected")
	}
	if err := o.AddSubsumption("x", "Record"); err == nil {
		t.Error("unknown sub should fail")
	}
	if err := o.AddSubsumption("Record", "x"); err == nil {
		t.Error("unknown sup should fail")
	}
	if err := o.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestLeastCommonAncestors(t *testing.T) {
	o := buildMyGridFragment(t)
	cases := []struct {
		a, b string
		want []string
	}{
		{"DNASequence", "RNASequence", []string{"NucleotideSequence"}},
		{"DNASequence", "ProtSequence", []string{"BioSequence"}},
		{"DNASequence", "UniprotRecord", []string{"BioinformaticsData"}},
		{"DNASequence", "DNASequence", []string{"DNASequence"}},
		{"DNASequence", "NucleotideSequence", []string{"NucleotideSequence"}},
		{"DNASequence", "nope", nil},
	}
	for _, c := range cases {
		if got := o.LeastCommonAncestors(c.a, c.b); !reflect.DeepEqual(got, c.want) {
			t.Errorf("LCA(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPartitions(t *testing.T) {
	o := buildMyGridFragment(t)
	got, err := o.Partitions("BioSequence")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BioSequence", "DNASequence", "NucleotideSequence", "ProtSequence", "RNASequence"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Partitions = %v, want %v", got, want)
	}
	// Abstract concepts are excluded (covered by their subconcepts).
	if err := o.MarkAbstract("NucleotideSequence"); err != nil {
		t.Fatal(err)
	}
	got, err = o.Partitions("BioSequence")
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"BioSequence", "DNASequence", "ProtSequence", "RNASequence"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Partitions with abstract = %v, want %v", got, want)
	}
	if _, err := o.Partitions("nope"); err == nil {
		t.Error("unknown concept should error")
	}
	// Leaf concept partitions to itself.
	got, err = o.Partitions("DNASequence")
	if err != nil || !reflect.DeepEqual(got, []string{"DNASequence"}) {
		t.Errorf("leaf Partitions = %v, %v", got, err)
	}
}

func TestLeafPartitions(t *testing.T) {
	o := buildMyGridFragment(t)
	got, err := o.LeafPartitions("BioSequence")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"DNASequence", "ProtSequence", "RNASequence"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("LeafPartitions = %v, want %v", got, want)
	}
	got, _ = o.LeafPartitions("DNASequence")
	if !reflect.DeepEqual(got, []string{"DNASequence"}) {
		t.Errorf("leaf LeafPartitions = %v", got)
	}
	if _, err := o.LeafPartitions("nope"); err == nil {
		t.Error("unknown concept should error")
	}
}

func TestMostSpecific(t *testing.T) {
	o := buildMyGridFragment(t)
	got := o.MostSpecific([]string{"BioSequence", "DNASequence", "NucleotideSequence"})
	if !reflect.DeepEqual(got, []string{"DNASequence"}) {
		t.Errorf("MostSpecific = %v", got)
	}
	got = o.MostSpecific([]string{"DNASequence", "ProtSequence", "bogus"})
	if !reflect.DeepEqual(got, []string{"DNASequence", "ProtSequence"}) {
		t.Errorf("MostSpecific incomparable = %v", got)
	}
}

func TestMarkAbstractUnknown(t *testing.T) {
	o := New("t")
	if err := o.MarkAbstract("x"); err == nil {
		t.Error("unknown concept should error")
	}
}

func TestMustAddConceptPanics(t *testing.T) {
	o := New("t")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	o.MustAddConcept("A", "", "missing-parent")
}
