package ontology

import (
	"sort"
	"testing"
)

// TestClosureViews: the no-copy view accessors must expose exactly the
// same closure the copying accessors return — the index uses them on
// every feasibility query, so they must not allocate fresh slices (that
// is their whole point) nor diverge in content.
func TestClosureViews(t *testing.T) {
	o := New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Seq", "", "Data")
	o.MustAddConcept("DNA", "", "Seq")
	o.MustAddConcept("Prot", "", "Seq")

	asSet := func(xs []string) map[string]bool {
		m := map[string]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	for _, id := range []string{"Data", "Seq", "DNA", "Prot"} {
		wantUp := asSet(o.Ancestors(id))
		gotUp := asSet(o.AncestorsView(id))
		if len(wantUp) != len(gotUp) {
			t.Errorf("%s: ancestors view = %v, want %v", id, gotUp, wantUp)
		}
		for c := range wantUp {
			if !gotUp[c] {
				t.Errorf("%s: ancestors view missing %s", id, c)
			}
		}
		wantDown := asSet(o.Descendants(id))
		gotDown := asSet(o.DescendantsView(id))
		if len(wantDown) != len(gotDown) {
			t.Errorf("%s: descendants view = %v, want %v", id, gotDown, wantDown)
		}
		for c := range wantDown {
			if !gotDown[c] {
				t.Errorf("%s: descendants view missing %s", id, c)
			}
		}
	}
	// Unknown concepts have empty closures.
	if len(o.AncestorsView("nope")) != 0 || len(o.DescendantsView("nope")) != 0 {
		t.Error("unknown concept must have empty closure views")
	}
	// Repeated calls return the same cached backing array (no per-call
	// allocation) — compare first elements' identity via sorted stability.
	a := o.AncestorsView("DNA")
	b := o.AncestorsView("DNA")
	if len(a) != len(b) {
		t.Fatal("view changed between calls")
	}
	sort.Strings(append([]string{}, a...)) // views themselves must not be mutated
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("view is not cached: fresh backing array per call")
	}
}
