package ontology

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// dagFixture builds a multi-parent DAG exercising every cache code path:
//
//	      Root
//	     /    \
//	   Seq    Ann(abstract)
//	  /   \   /  \
//	DNA   Shared  GO
//	 |      |
//	cDNA  Leafy
func dagFixture(t testing.TB) *Ontology {
	t.Helper()
	o := New("cache-test")
	o.MustAddConcept("Root", "")
	o.MustAddConcept("Seq", "", "Root")
	o.MustAddConcept("Ann", "", "Root")
	o.MustAddConcept("DNA", "", "Seq")
	o.MustAddConcept("Shared", "", "Seq", "Ann")
	o.MustAddConcept("GO", "", "Ann")
	o.MustAddConcept("cDNA", "", "DNA")
	o.MustAddConcept("Leafy", "", "Shared")
	if err := o.MarkAbstract("Ann"); err != nil {
		t.Fatal(err)
	}
	return o
}

// TestCacheMatchesWalks cross-checks every cached answer against the
// uncached graph walk on all concept pairs.
func TestCacheMatchesWalks(t *testing.T) {
	o := dagFixture(t)
	ids := append(o.Concepts(), "Nope")
	for _, sup := range ids {
		for _, sub := range ids {
			if got, want := o.Subsumes(sup, sub), o.walkSubsumes(sup, sub); got != want {
				t.Errorf("Subsumes(%s, %s) = %v, walk says %v", sup, sub, got, want)
			}
		}
	}
	// Reference traversals computed directly from the struct pointers.
	for _, id := range o.Concepts() {
		c := o.concepts[id]
		wantDesc := walkClosure(c, func(c *Concept) []*Concept { return c.children })
		if got := o.Descendants(id); !reflect.DeepEqual(got, wantDesc) {
			t.Errorf("Descendants(%s) = %v, want %v", id, got, wantDesc)
		}
		wantAnc := walkClosure(c, func(c *Concept) []*Concept { return c.parents })
		if got := o.Ancestors(id); !reflect.DeepEqual(got, wantAnc) {
			t.Errorf("Ancestors(%s) = %v, want %v", id, got, wantAnc)
		}
	}
	if o.Descendants("Nope") != nil || o.Ancestors("Nope") != nil {
		t.Error("unknown concept must yield nil closures")
	}
	if parts, _ := o.Partitions("Ann"); !reflect.DeepEqual(parts, []string{"GO", "Leafy", "Shared"}) {
		t.Errorf("Partitions(Ann) = %v (abstract root must be excluded)", parts)
	}
	if leaves, _ := o.LeafPartitions("Seq"); !reflect.DeepEqual(leaves, []string{"Leafy", "cDNA"}) {
		t.Errorf("LeafPartitions(Seq) = %v", leaves)
	}
	if _, err := o.Partitions("Nope"); err == nil {
		t.Error("Partitions of unknown concept must error")
	}
}

func walkClosure(c *Concept, next func(*Concept) []*Concept) []string {
	seen := map[*Concept]bool{}
	var walk func(*Concept)
	walk = func(c *Concept) {
		for _, n := range next(c) {
			if !seen[n] {
				seen[n] = true
				walk(n)
			}
		}
	}
	walk(c)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n.ID)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestCacheInvalidationOnMutation verifies that every mutator discards the
// closure so post-build mutation is visible to subsequent queries.
func TestCacheInvalidationOnMutation(t *testing.T) {
	o := dagFixture(t)
	if !o.Subsumes("Seq", "cDNA") {
		t.Fatal("warm-up query failed") // also builds the cache
	}

	// AddConcept after the cache was built.
	o.MustAddConcept("mRNA", "", "Seq")
	if !o.Subsumes("Seq", "mRNA") {
		t.Error("cache kept stale closure after AddConcept")
	}
	if parts, _ := o.Partitions("Seq"); !contains(parts, "mRNA") {
		t.Errorf("Partitions(Seq) = %v, missing new concept", parts)
	}

	// AddSubsumption after rebuild.
	if !o.Subsumes("Root", "GO") {
		t.Fatal("warm-up")
	}
	if err := o.AddSubsumption("mRNA", "Ann"); err != nil {
		t.Fatal(err)
	}
	if !o.Subsumes("Ann", "mRNA") {
		t.Error("cache kept stale closure after AddSubsumption")
	}

	// MarkAbstract flips partition membership.
	if err := o.MarkAbstract("mRNA"); err != nil {
		t.Fatal(err)
	}
	if parts, _ := o.Partitions("Seq"); contains(parts, "mRNA") {
		t.Errorf("Partitions(Seq) = %v, abstract concept must disappear", parts)
	}

	// Direct field mutation needs the explicit hook.
	c, _ := o.Concept("mRNA")
	c.Abstract = false
	o.InvalidateCaches()
	if parts, _ := o.Partitions("Seq"); !contains(parts, "mRNA") {
		t.Errorf("Partitions(Seq) = %v after InvalidateCaches", parts)
	}
}

// TestCacheResultsAreCopies ensures callers cannot corrupt the cache
// through a returned slice.
func TestCacheResultsAreCopies(t *testing.T) {
	o := dagFixture(t)
	d := o.Descendants("Seq")
	if len(d) == 0 {
		t.Fatal("no descendants")
	}
	d[0] = "CORRUPTED"
	if again := o.Descendants("Seq"); contains(again, "CORRUPTED") {
		t.Error("Descendants returned a shared slice")
	}
	p, _ := o.Partitions("Seq")
	p[0] = "CORRUPTED"
	if again, _ := o.Partitions("Seq"); contains(again, "CORRUPTED") {
		t.Error("Partitions returned a shared slice")
	}
}

// TestConcurrentReasoning hammers the lazily-built cache from many
// goroutines starting cold, backing the "concurrent reads are safe,
// including the first one" guarantee (run with -race).
func TestConcurrentReasoning(t *testing.T) {
	o := dagFixture(t)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !o.Subsumes("Root", "Leafy") || o.Subsumes("DNA", "GO") {
					errs <- "bad subsumption under concurrency"
					return
				}
				parts, err := o.Partitions("Seq")
				if err != nil || len(parts) == 0 {
					errs <- fmt.Sprintf("Partitions: %v %v", parts, err)
					return
				}
				if len(o.Descendants("Root")) != o.Len()-1 {
					errs <- "bad descendant count"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
