// Package ontology implements the domain-ontology substrate used to
// annotate module parameters with semantic types.
//
// The paper's heuristic partitions the domain of a parameter annotated with
// concept c into the sub-domains of all concepts subsumed by c (paper §3.1),
// and selects for each partition a *realization* — an instance of the
// concept that is not an instance of any strict subconcept (§3.2, after
// Koide & Takeda). Concepts whose domain is entirely covered by their
// subconcepts admit no realization; we model these with an Abstract flag and
// exclude them from the partition list, exactly as the paper prescribes
// ("we do not create a data example for such a concept, since it is
// represented by the data examples of its subconcepts").
//
// An Ontology is a rooted DAG of named concepts connected by the subsumption
// relationship (a concept may have several parents, as in OWL class
// hierarchies). All traversals return deterministic orders so that the
// generation heuristic and the experiment harness are reproducible.
package ontology

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Concept is a node in the ontology: a named class of data values.
type Concept struct {
	// ID is the unique identifier, e.g. "ProteinSequence".
	ID string
	// Label is an optional human-readable name, e.g. "Protein sequence".
	Label string
	// Abstract marks a concept whose domain is fully covered by the domains
	// of its subconcepts, so that no realization of the concept itself
	// exists and no partition is created for it.
	Abstract bool

	parents  []*Concept
	children []*Concept
}

// Parents returns the IDs of the direct superconcepts in sorted order.
func (c *Concept) Parents() []string { return idsOf(c.parents) }

// Children returns the IDs of the direct subconcepts in sorted order.
func (c *Concept) Children() []string { return idsOf(c.children) }

func idsOf(cs []*Concept) []string {
	ids := make([]string, len(cs))
	for i, c := range cs {
		ids[i] = c.ID
	}
	sort.Strings(ids)
	return ids
}

// Ontology is a mutable concept DAG. The zero value is not usable; call New.
//
// Concurrency: an Ontology is not safe for concurrent mutation, and
// mutation must not race with reads. Once construction is complete,
// concurrent reads from any number of goroutines are safe — including the
// first reasoning call, which lazily builds the reachability cache under
// an internal mutex (see cache.go). Mutating after construction is
// allowed from a single goroutine with no concurrent readers; the mutators
// invalidate the cache automatically, and InvalidateCaches covers direct
// field edits such as Concept.Abstract.
type Ontology struct {
	name     string
	concepts map[string]*Concept
	order    []string // insertion order, for deterministic serialisation

	// Lazily-built transitive-closure index; nil until the first reasoning
	// query after construction or invalidation.
	cacheMu sync.Mutex
	cache   atomic.Pointer[reachability]

	// Cache telemetry: reasoning calls served by the prebuilt index vs
	// full rebuilds (see CacheStats).
	cacheHits   atomic.Uint64
	cacheBuilds atomic.Uint64
}

// New creates an empty ontology with the given name.
func New(name string) *Ontology {
	return &Ontology{name: name, concepts: make(map[string]*Concept)}
}

// Name returns the ontology name.
func (o *Ontology) Name() string { return o.name }

// Len returns the number of concepts.
func (o *Ontology) Len() int { return len(o.concepts) }

// AddConcept inserts a concept under the given parent IDs (none for a
// root). It returns an error if the ID is empty or already present, if a
// parent is unknown, or if the edge would create a cycle (impossible when
// parents pre-exist, but kept for AddSubsumption symmetry).
func (o *Ontology) AddConcept(id, label string, parentIDs ...string) error {
	if err := validateConceptID(id); err != nil {
		return fmt.Errorf("ontology %s: %w", o.name, err)
	}
	if _, dup := o.concepts[id]; dup {
		return fmt.Errorf("ontology %s: duplicate concept %q", o.name, id)
	}
	ps := make([]*Concept, 0, len(parentIDs))
	for _, pid := range parentIDs {
		p, ok := o.concepts[pid]
		if !ok {
			return fmt.Errorf("ontology %s: unknown parent %q for concept %q", o.name, pid, id)
		}
		ps = append(ps, p)
	}
	c := &Concept{ID: id, Label: label, parents: ps}
	for _, p := range ps {
		p.children = append(p.children, c)
	}
	o.concepts[id] = c
	o.order = append(o.order, id)
	o.invalidate()
	return nil
}

// validateConceptID enforces that concept IDs survive the textual
// serialisation: no whitespace, no leading '#' (comment marker), and not
// one of the directive keywords.
func validateConceptID(id string) error {
	if id == "" {
		return fmt.Errorf("empty concept ID")
	}
	if strings.ContainsAny(id, " \t\n\r") {
		return fmt.Errorf("concept ID %q contains whitespace", id)
	}
	if id[0] == '#' {
		return fmt.Errorf("concept ID %q starts with the comment marker", id)
	}
	if id == "subsume" || id == "ontology" {
		return fmt.Errorf("concept ID %q collides with a directive keyword", id)
	}
	return nil
}

// MustAddConcept is AddConcept but panics on error; for static ontologies.
func (o *Ontology) MustAddConcept(id, label string, parentIDs ...string) {
	if err := o.AddConcept(id, label, parentIDs...); err != nil {
		panic(err)
	}
}

// AddSubsumption records an additional parent edge sub < sup between two
// existing concepts (used for DAG-shaped hierarchies). It rejects unknown
// concepts, duplicate edges, self-edges and edges that would create a cycle.
func (o *Ontology) AddSubsumption(subID, supID string) error {
	sub, ok := o.concepts[subID]
	if !ok {
		return fmt.Errorf("ontology %s: unknown concept %q", o.name, subID)
	}
	sup, ok := o.concepts[supID]
	if !ok {
		return fmt.Errorf("ontology %s: unknown concept %q", o.name, supID)
	}
	if subID == supID {
		return fmt.Errorf("ontology %s: self subsumption on %q", o.name, subID)
	}
	for _, p := range sub.parents {
		if p == sup {
			return fmt.Errorf("ontology %s: duplicate edge %q < %q", o.name, subID, supID)
		}
	}
	// Cycle check via the uncached graph walk: construction would otherwise
	// rebuild the closure once per added edge.
	if o.walkSubsumes(subID, supID) {
		return fmt.Errorf("ontology %s: edge %q < %q would create a cycle", o.name, subID, supID)
	}
	sub.parents = append(sub.parents, sup)
	sup.children = append(sup.children, sub)
	o.invalidate()
	return nil
}

// MarkAbstract flags the concept as abstract (no realization of its own).
func (o *Ontology) MarkAbstract(id string) error {
	c, ok := o.concepts[id]
	if !ok {
		return fmt.Errorf("ontology %s: unknown concept %q", o.name, id)
	}
	c.Abstract = true
	o.invalidate()
	return nil
}

// Concept returns the concept with the given ID, if present.
func (o *Ontology) Concept(id string) (*Concept, bool) {
	c, ok := o.concepts[id]
	return c, ok
}

// Has reports whether the concept exists.
func (o *Ontology) Has(id string) bool {
	_, ok := o.concepts[id]
	return ok
}

// Concepts returns all concept IDs in sorted order.
func (o *Ontology) Concepts() []string {
	ids := make([]string, 0, len(o.concepts))
	for id := range o.concepts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Roots returns the IDs of concepts without parents, sorted.
func (o *Ontology) Roots() []string {
	var roots []string
	for id, c := range o.concepts {
		if len(c.parents) == 0 {
			roots = append(roots, id)
		}
	}
	sort.Strings(roots)
	return roots
}

// IsLeaf reports whether the concept exists and has no subconcepts.
func (o *Ontology) IsLeaf(id string) bool {
	c, ok := o.concepts[id]
	return ok && len(c.children) == 0
}
