package ontology

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomOntology builds a random DAG ontology: n concepts, each attached
// to 1-2 random earlier parents, with ~20% marked abstract (never the
// root, so partitions stay non-empty at the top).
func randomOntology(r *rand.Rand, n int) *Ontology {
	o := New("random")
	o.MustAddConcept("c0", "")
	for i := 1; i < n; i++ {
		id := fmt.Sprintf("c%d", i)
		p1 := fmt.Sprintf("c%d", r.Intn(i))
		o.MustAddConcept(id, "", p1)
		if r.Intn(3) == 0 {
			p2 := fmt.Sprintf("c%d", r.Intn(i))
			// Extra DAG edge; ignore duplicates/cycles (AddSubsumption
			// rejects them, which is itself part of the property).
			_ = o.AddSubsumption(id, p2)
		}
		if r.Intn(5) == 0 {
			_ = o.MarkAbstract(id)
		}
	}
	return o
}

func pick(r *rand.Rand, o *Ontology) string {
	cs := o.Concepts()
	return cs[r.Intn(len(cs))]
}

func TestSubsumptionIsPartialOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	prop := func() bool {
		o := randomOntology(r, 3+r.Intn(25))
		a, b, c := pick(r, o), pick(r, o), pick(r, o)
		// Reflexivity.
		if !o.Subsumes(a, a) {
			return false
		}
		// Antisymmetry: mutual subsumption implies equality (acyclic DAG).
		if o.Subsumes(a, b) && o.Subsumes(b, a) && a != b {
			return false
		}
		// Transitivity.
		if o.Subsumes(a, b) && o.Subsumes(b, c) && !o.Subsumes(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestPartitionsConsistencyProperty(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	prop := func() bool {
		o := randomOntology(r, 3+r.Intn(25))
		c := pick(r, o)
		parts, err := o.Partitions(c)
		if err != nil {
			return false
		}
		leaves, err := o.LeafPartitions(c)
		if err != nil {
			return false
		}
		inParts := map[string]bool{}
		for _, p := range parts {
			// Every partition is subsumed by the partitioned concept and is
			// not abstract.
			if !o.Subsumes(c, p) {
				return false
			}
			pc, _ := o.Concept(p)
			if pc.Abstract {
				return false
			}
			inParts[p] = true
		}
		// Leaf partitions are a subset of realization partitions (leaves
		// are never abstract in our generator? they can be — skip those).
		for _, l := range leaves {
			lc, _ := o.Concept(l)
			if !lc.Abstract && !inParts[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDescendantAncestorDualityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	prop := func() bool {
		o := randomOntology(r, 3+r.Intn(20))
		a, b := pick(r, o), pick(r, o)
		// b ∈ Descendants(a) ⇔ a ∈ Ancestors(b).
		inDesc := contains(o.Descendants(a), b)
		inAnc := contains(o.Ancestors(b), a)
		if inDesc != inAnc {
			return false
		}
		// And both are equivalent to strict subsumption.
		return inDesc == o.StrictlySubsumes(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestLCACommutesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	prop := func() bool {
		o := randomOntology(r, 3+r.Intn(20))
		a, b := pick(r, o), pick(r, o)
		ab := o.LeastCommonAncestors(a, b)
		ba := o.LeastCommonAncestors(b, a)
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		// Every LCA subsumes both arguments.
		for _, l := range ab {
			if !o.Subsumes(l, a) || !o.Subsumes(l, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestSerialisationPreservesSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	prop := func() bool {
		o := randomOntology(r, 3+r.Intn(20))
		o2, err := ParseString(o.String())
		if err != nil {
			return false
		}
		if o2.Len() != o.Len() {
			return false
		}
		// Subsumption is preserved on sampled pairs.
		for i := 0; i < 10; i++ {
			a, b := pick(r, o), pick(r, o)
			if o.Subsumes(a, b) != o2.Subsumes(a, b) {
				return false
			}
		}
		// Abstract flags preserved.
		for _, id := range o.Concepts() {
			c1, _ := o.Concept(id)
			c2, ok := o2.Concept(id)
			if !ok || c1.Abstract != c2.Abstract {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomOntologiesValidate(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 100; i++ {
		o := randomOntology(r, 2+r.Intn(40))
		if err := o.Validate(); err != nil {
			t.Fatalf("random ontology invalid: %v\n%s", err, o)
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
