package ontology

import (
	"strings"
	"testing"
)

// FuzzParseOntology checks the textual ontology parser never panics, and
// that everything it accepts validates, serialises, and re-parses into a
// semantically identical ontology.
func FuzzParseOntology(f *testing.F) {
	seeds := []string{
		sampleDoc,
		"A",
		"A\n  B\n  C\nsubsume C B",
		"ontology x\nA : label *abstract\n  B",
		"# only a comment\n",
		"A\n    B",       // bad indent
		"A\nsubsume A A", // self edge
		"A B",            // space in ID
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		o, err := ParseString(doc)
		if err != nil {
			return
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("accepted ontology fails validation: %v\ninput:\n%s", err, doc)
		}
		text := o.String()
		o2, err := ParseString(text)
		if err != nil {
			t.Fatalf("serialisation does not re-parse: %v\noutput:\n%s", err, text)
		}
		if o2.Len() != o.Len() {
			t.Fatalf("round trip changed size: %d vs %d", o.Len(), o2.Len())
		}
		for _, id := range o.Concepts() {
			a, _ := o.Concept(id)
			b, ok := o2.Concept(id)
			if !ok || a.Abstract != b.Abstract || a.Label != b.Label {
				t.Fatalf("concept %q changed across round trip", id)
			}
			if strings.Join(a.Parents(), ",") != strings.Join(b.Parents(), ",") {
				t.Fatalf("parents of %q changed: %v vs %v", id, a.Parents(), b.Parents())
			}
		}
	})
}
