package ontology

import (
	"reflect"
	"strings"
	"testing"
)

const sampleDoc = `# myGrid fragment (Figure 4)
ontology mygrid
BioinformaticsData : Bioinformatics data
  BioSequence : Biological sequence
    NucleotideSequence *abstract
      DNASequence : DNA sequence
      RNASequence
    ProtSequence : Protein sequence
  Record
    UniprotRecord
    FastaRecord
subsume FastaRecord BioSequence
`

func TestParseSample(t *testing.T) {
	o, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if o.Name() != "mygrid" {
		t.Errorf("name = %q", o.Name())
	}
	if o.Len() != 9 {
		t.Errorf("Len = %d, want 9", o.Len())
	}
	c, ok := o.Concept("DNASequence")
	if !ok || c.Label != "DNA sequence" {
		t.Errorf("DNASequence = %+v, %v", c, ok)
	}
	ns, _ := o.Concept("NucleotideSequence")
	if !ns.Abstract {
		t.Error("NucleotideSequence should be abstract")
	}
	if !o.Subsumes("BioSequence", "FastaRecord") {
		t.Error("subsume directive not applied")
	}
	if !o.Subsumes("Record", "FastaRecord") {
		t.Error("tree edge lost")
	}
	parts, err := o.Partitions("BioSequence")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"BioSequence", "DNASequence", "FastaRecord", "ProtSequence", "RNASequence"}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("Partitions = %v, want %v", parts, want)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	o, err := ParseString(sampleDoc)
	if err != nil {
		t.Fatal(err)
	}
	text := o.String()
	o2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse of\n%s\nfailed: %v", text, err)
	}
	if o2.Len() != o.Len() {
		t.Fatalf("round trip lost concepts: %d vs %d", o2.Len(), o.Len())
	}
	for _, id := range o.Concepts() {
		a, _ := o.Concept(id)
		b, ok := o2.Concept(id)
		if !ok {
			t.Fatalf("concept %s lost", id)
		}
		if a.Label != b.Label || a.Abstract != b.Abstract {
			t.Errorf("concept %s changed: %+v vs %+v", id, a, b)
		}
		if !reflect.DeepEqual(a.Parents(), b.Parents()) {
			t.Errorf("concept %s parents changed: %v vs %v", id, a.Parents(), b.Parents())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"A\n   B",             // odd indent
		"A\n    B",            // indentation jump
		"A\nA",                // duplicate
		"subsume A",           // malformed directive
		"subsume A B",         // unknown concepts
		"A B : label",         // space in ID
		"A\nsubsume A A",      // self edge
		"A\n  B\nsubsume A B", // cycle
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("ParseString(%q): expected error", s)
		}
	}
}

func TestParseBlankAndComments(t *testing.T) {
	o, err := ParseString("\n# c\n\nA : root\n\n  B\n")
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 2 || !o.Subsumes("A", "B") {
		t.Errorf("unexpected ontology: %s", o)
	}
}

func TestWriteContainsDirectives(t *testing.T) {
	o, _ := ParseString(sampleDoc)
	text := o.String()
	if !strings.Contains(text, "subsume FastaRecord BioSequence") {
		t.Errorf("serialisation lost DAG edge:\n%s", text)
	}
	if !strings.Contains(text, "*abstract") {
		t.Errorf("serialisation lost abstract flag:\n%s", text)
	}
}
