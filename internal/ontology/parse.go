package ontology

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The textual ontology format is an indented tree, two spaces per level,
// with optional labels and flags:
//
//	# comment
//	ontology mygrid
//	BioinformaticsData : Bioinformatics data
//	  BiologicalSequence
//	    NucleotideSequence *abstract
//	      DNASequence : DNA sequence
//	      RNASequence
//	    ProteinSequence
//	subsume ProteinRecord BiologicalRecord
//
// A line "subsume CHILD PARENT" adds an extra DAG edge after the tree is
// built. A trailing "*abstract" marks the concept abstract.

// Parse reads an ontology from the textual format.
func Parse(r io.Reader) (*Ontology, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	o := New("ontology")
	var stack []string // stack[d] = concept at depth d
	lineNo := 0
	var extraEdges [][2]string
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		line := strings.TrimRight(raw, " \t")
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if strings.HasPrefix(trimmed, "ontology ") {
			o.name = strings.TrimSpace(strings.TrimPrefix(trimmed, "ontology "))
			continue
		}
		if strings.HasPrefix(trimmed, "subsume ") {
			parts := strings.Fields(trimmed)
			if len(parts) != 3 {
				return nil, fmt.Errorf("ontology parse: line %d: subsume needs CHILD PARENT", lineNo)
			}
			extraEdges = append(extraEdges, [2]string{parts[1], parts[2]})
			continue
		}
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, "\t") {
			return nil, fmt.Errorf("ontology parse: line %d: tab indentation is not supported", lineNo)
		}
		if indent%2 != 0 {
			return nil, fmt.Errorf("ontology parse: line %d: odd indentation %d", lineNo, indent)
		}
		depth := indent / 2
		if depth > len(stack) {
			return nil, fmt.Errorf("ontology parse: line %d: indentation jumps from %d to %d", lineNo, len(stack), depth)
		}
		id, label, abstract, err := parseConceptLine(trimmed)
		if err != nil {
			return nil, fmt.Errorf("ontology parse: line %d: %w", lineNo, err)
		}
		var parents []string
		if depth > 0 {
			parents = []string{stack[depth-1]}
		}
		if err := o.AddConcept(id, label, parents...); err != nil {
			return nil, fmt.Errorf("ontology parse: line %d: %w", lineNo, err)
		}
		if abstract {
			if err := o.MarkAbstract(id); err != nil {
				return nil, fmt.Errorf("ontology parse: line %d: %w", lineNo, err)
			}
		}
		stack = append(stack[:depth], id)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology parse: %w", err)
	}
	for _, e := range extraEdges {
		if err := o.AddSubsumption(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("ontology parse: %w", err)
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func parseConceptLine(s string) (id, label string, abstract bool, err error) {
	if i := strings.Index(s, " *abstract"); i >= 0 {
		abstract = true
		s = s[:i] + s[i+len(" *abstract"):]
	}
	if i := strings.Index(s, ":"); i >= 0 {
		id = strings.TrimSpace(s[:i])
		label = strings.TrimSpace(s[i+1:])
	} else {
		id = strings.TrimSpace(s)
	}
	if id == "" || strings.ContainsAny(id, " \t") {
		return "", "", false, fmt.Errorf("bad concept line %q", s)
	}
	return id, label, abstract, nil
}

// ParseString is Parse over an in-memory document.
func ParseString(s string) (*Ontology, error) {
	return Parse(strings.NewReader(s))
}

// Write serialises the ontology in the textual format accepted by Parse.
// Concepts reachable through several parents are emitted once under their
// first parent (in insertion order) and once as a "subsume" directive per
// extra parent.
func (o *Ontology) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "ontology %s\n", o.name)
	emitted := map[string]bool{}
	var extra [][2]string
	var emit func(id string, depth int)
	emit = func(id string, depth int) {
		c := o.concepts[id]
		fmt.Fprintf(bw, "%s%s", strings.Repeat("  ", depth), id)
		if c.Label != "" {
			fmt.Fprintf(bw, " : %s", c.Label)
		}
		if c.Abstract {
			fmt.Fprint(bw, " *abstract")
		}
		fmt.Fprintln(bw)
		emitted[id] = true
		for _, chID := range o.childOrder(c) {
			ch := o.concepts[chID]
			if emitted[chID] {
				continue
			}
			// A node is emitted under the first of its parents that gets
			// written; extra parents become subsume directives.
			primary := o.primaryParent(ch)
			if primary != id {
				continue
			}
			emit(chID, depth+1)
		}
	}
	for _, id := range o.order {
		if len(o.concepts[id].parents) == 0 && !emitted[id] {
			emit(id, 0)
		}
	}
	for _, id := range o.order {
		c := o.concepts[id]
		if len(c.parents) <= 1 {
			continue
		}
		primary := o.primaryParent(c)
		for _, p := range c.parents {
			if p.ID != primary {
				extra = append(extra, [2]string{id, p.ID})
			}
		}
	}
	for _, e := range extra {
		fmt.Fprintf(bw, "subsume %s %s\n", e[0], e[1])
	}
	return bw.Flush()
}

// primaryParent returns the parent under which the concept is printed in
// the tree serialisation: the first parent edge that was added (the tree
// parent, for ontologies built by Parse).
func (o *Ontology) primaryParent(c *Concept) string {
	if len(c.parents) == 0 {
		return ""
	}
	return c.parents[0].ID
}

// childOrder returns the concept's children in insertion order.
func (o *Ontology) childOrder(c *Concept) []string {
	pos := map[string]int{}
	for i, id := range o.order {
		pos[id] = i
	}
	ids := make([]string, len(c.children))
	for i, ch := range c.children {
		ids[i] = ch.ID
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && pos[ids[j]] < pos[ids[j-1]]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// String renders the ontology in the textual format.
func (o *Ontology) String() string {
	var b strings.Builder
	_ = o.Write(&b)
	return b.String()
}
