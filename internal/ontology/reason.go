package ontology

import (
	"fmt"
	"sort"
)

// Subsumes reports whether sup ⊒ sub, i.e. sub is sup itself or a
// (transitive) subconcept of sup. Unknown concepts never subsume or get
// subsumed. The answer is a bit test against the lazily-built reachability
// cache, not a graph walk.
func (o *Ontology) Subsumes(supID, subID string) bool {
	return o.reach().subsumes(supID, subID)
}

// walkSubsumes is the cache-free subsumption check, used by mutators
// (whose cycle checks must not trigger a closure rebuild per edge).
func (o *Ontology) walkSubsumes(supID, subID string) bool {
	sub, ok := o.concepts[subID]
	if !ok || !o.Has(supID) {
		return false
	}
	if supID == subID {
		return true
	}
	// Walk up from sub.
	seen := map[*Concept]bool{sub: true}
	stack := []*Concept{sub}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range c.parents {
			if p.ID == supID {
				return true
			}
			if !seen[p] {
				seen[p] = true
				stack = append(stack, p)
			}
		}
	}
	return false
}

// StrictlySubsumes reports sup ⊐ sub (subsumption excluding equality).
func (o *Ontology) StrictlySubsumes(supID, subID string) bool {
	return supID != subID && o.Subsumes(supID, subID)
}

// Descendants returns the IDs of all strict subconcepts of id in sorted
// order. It returns nil for an unknown concept. The result is a fresh copy
// of the cached closure; callers may keep or modify it.
func (o *Ontology) Descendants(id string) []string {
	r := o.reach()
	i, ok := r.index[id]
	if !ok {
		return nil
	}
	return copyOf(r.descIDs[i])
}

// Ancestors returns the IDs of all strict superconcepts of id in sorted
// order. It returns nil for an unknown concept. The result is a fresh copy
// of the cached closure; callers may keep or modify it.
func (o *Ontology) Ancestors(id string) []string {
	r := o.reach()
	i, ok := r.index[id]
	if !ok {
		return nil
	}
	return copyOf(r.ancIDs[i])
}

// AncestorsView is Ancestors without the defensive copy: it returns the
// cached closure slice itself, sorted, valid until the next mutation.
// Callers MUST treat the result as read-only — it is shared with every
// other caller and with the cache. Index builders that walk the closure
// of every concept use this to avoid one allocation per concept; all
// other callers should prefer Ancestors.
func (o *Ontology) AncestorsView(id string) []string {
	r := o.reach()
	i, ok := r.index[id]
	if !ok {
		return nil
	}
	return r.ancIDs[i]
}

// DescendantsView is Descendants without the defensive copy; the same
// read-only contract as AncestorsView applies.
func (o *Ontology) DescendantsView(id string) []string {
	r := o.reach()
	i, ok := r.index[id]
	if !ok {
		return nil
	}
	return r.descIDs[i]
}

// Depth returns the length of the shortest parent chain from id to any
// root, or -1 for an unknown concept. Roots have depth 0.
func (o *Ontology) Depth(id string) int {
	c, ok := o.concepts[id]
	if !ok {
		return -1
	}
	depth := 0
	frontier := []*Concept{c}
	seen := map[*Concept]bool{c: true}
	for len(frontier) > 0 {
		var next []*Concept
		for _, n := range frontier {
			if len(n.parents) == 0 {
				return depth
			}
			for _, p := range n.parents {
				if !seen[p] {
					seen[p] = true
					next = append(next, p)
				}
			}
		}
		frontier = next
		depth++
	}
	return depth // unreachable in an acyclic ontology
}

// LeastCommonAncestors returns the set of minimal common superconcepts of a
// and b (there may be several in a DAG), sorted. A concept is its own
// ancestor for this purpose, so LCA(c, c) = {c}. It returns nil if either
// concept is unknown or no common ancestor exists.
func (o *Ontology) LeastCommonAncestors(aID, bID string) []string {
	if !o.Has(aID) || !o.Has(bID) {
		return nil
	}
	up := func(id string) map[string]bool {
		s := map[string]bool{id: true}
		for _, a := range o.Ancestors(id) {
			s[a] = true
		}
		return s
	}
	common := []string{}
	bUp := up(bID)
	for id := range up(aID) {
		if bUp[id] {
			common = append(common, id)
		}
	}
	// Keep only the minimal elements: drop any common ancestor that strictly
	// subsumes another common ancestor.
	minimal := common[:0]
	for _, c := range common {
		isMin := true
		for _, d := range common {
			if c != d && o.StrictlySubsumes(c, d) {
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, c)
		}
	}
	sort.Strings(minimal)
	if len(minimal) == 0 {
		return nil
	}
	return minimal
}

// Partitions returns the equivalence partitions induced by annotating a
// parameter with the concept id: one partition per non-abstract concept in
// {id} ∪ descendants(id), in sorted order (paper §3.1/§3.2). Abstract
// concepts are excluded because they admit no realization; their domains
// are represented by the partitions of their subconcepts. It returns an
// error for an unknown concept.
func (o *Ontology) Partitions(id string) ([]string, error) {
	r := o.reach()
	i, ok := r.index[id]
	if !ok {
		return nil, fmt.Errorf("ontology %s: unknown concept %q", o.name, id)
	}
	return copyOf(r.partitions[i]), nil
}

// LeafPartitions returns only the leaf concepts under id (including id
// itself when it is a leaf), sorted. This is the alternative partitioning
// strategy evaluated by the ablation bench: it ignores realizations of
// inner concepts.
func (o *Ontology) LeafPartitions(id string) ([]string, error) {
	r := o.reach()
	i, ok := r.index[id]
	if !ok {
		return nil, fmt.Errorf("ontology %s: unknown concept %q", o.name, id)
	}
	return copyOf(r.leafParts[i]), nil
}

// MostSpecific returns, from the given concept IDs, those that are not
// strict superconcepts of any other member, sorted. Used when classifying a
// value that is an instance of several concepts.
func (o *Ontology) MostSpecific(ids []string) []string {
	var out []string
	for _, c := range ids {
		if !o.Has(c) {
			continue
		}
		specific := true
		for _, d := range ids {
			if c != d && o.StrictlySubsumes(c, d) {
				specific = false
				break
			}
		}
		if specific {
			out = append(out, c)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks structural invariants: every non-root concept reaches a
// root, and the graph is acyclic (guaranteed by construction, re-verified
// here for ontologies assembled from parsed files).
func (o *Ontology) Validate() error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Concept]int, len(o.concepts))
	var visit func(c *Concept) error
	visit = func(c *Concept) error {
		switch color[c] {
		case grey:
			return fmt.Errorf("ontology %s: cycle through concept %q", o.name, c.ID)
		case black:
			return nil
		}
		color[c] = grey
		for _, ch := range c.children {
			if err := visit(ch); err != nil {
				return err
			}
		}
		color[c] = black
		return nil
	}
	for _, id := range o.Roots() {
		if err := visit(o.concepts[id]); err != nil {
			return err
		}
	}
	for id, c := range o.concepts {
		if color[c] != black {
			return fmt.Errorf("ontology %s: concept %q unreachable from any root", o.name, id)
		}
	}
	return nil
}
