package ontology

import "sort"

// reachability is the precomputed transitive-closure index of the concept
// DAG. It is built lazily, at most once per ontology generation: every
// mutation (AddConcept, AddSubsumption, MarkAbstract, InvalidateCaches)
// discards it, and the next reasoning call rebuilds it from scratch.
//
// Concepts are numbered densely in sorted-ID order and the closure is held
// as one ancestor bitset and one descendant bitset per concept, so
// Subsumes becomes a single bit test and the traversal-shaped queries
// (Descendants, Ancestors, Partitions, LeafPartitions) become copies of
// precomputed, already-sorted ID slices instead of per-call graph walks.
type reachability struct {
	ids   []string       // dense index -> concept ID, sorted
	index map[string]int // concept ID -> dense index
	words int            // bitset words per concept

	anc  []uint64 // anc[i*words:(i+1)*words]: strict ancestors of i
	desc []uint64 // desc[i*words:(i+1)*words]: strict descendants of i

	descIDs    [][]string // strict descendants, sorted
	ancIDs     [][]string // strict ancestors, sorted
	partitions [][]string // {id} ∪ descendants, non-abstract only, sorted
	leafParts  [][]string // leaves of {id} ∪ descendants, sorted
}

// reach returns the reachability index, building it under the cache mutex
// on first use. Safe for concurrent callers: the double-checked build
// publishes the finished index atomically.
func (o *Ontology) reach() *reachability {
	if r := o.cache.Load(); r != nil {
		o.cacheHits.Add(1)
		return r
	}
	o.cacheMu.Lock()
	defer o.cacheMu.Unlock()
	if r := o.cache.Load(); r != nil {
		o.cacheHits.Add(1)
		return r
	}
	r := o.buildReachability()
	o.cache.Store(r)
	o.cacheBuilds.Add(1)
	return r
}

// CacheStats reports how many reasoning calls were served by the cached
// reachability index (hits) and how many rebuilt it (builds). The
// telemetry layer exports both; a builds count that keeps climbing in a
// serving process means something is invalidating the ontology cache in
// the hot path.
func (o *Ontology) CacheStats() (hits, builds uint64) {
	return o.cacheHits.Load(), o.cacheBuilds.Load()
}

// invalidate drops the cached reachability index. Called by every mutator;
// cheap when no cache has been built yet.
func (o *Ontology) invalidate() {
	o.cache.Store(nil)
}

// InvalidateCaches discards the lazily-built reachability cache so the
// next reasoning call sees the current graph. The mutating methods
// (AddConcept, AddSubsumption, MarkAbstract) invalidate automatically;
// call this only after mutating ontology state directly — e.g. setting
// Concept.Abstract on a concept obtained from Concept(). Like the
// mutators themselves, it must not race with concurrent readers.
func (o *Ontology) InvalidateCaches() { o.invalidate() }

func (o *Ontology) buildReachability() *reachability {
	n := len(o.concepts)
	r := &reachability{
		ids:        make([]string, 0, n),
		index:      make(map[string]int, n),
		words:      (n + 63) / 64,
		descIDs:    make([][]string, n),
		ancIDs:     make([][]string, n),
		partitions: make([][]string, n),
		leafParts:  make([][]string, n),
	}
	for id := range o.concepts {
		r.ids = append(r.ids, id)
	}
	sort.Strings(r.ids)
	for i, id := range r.ids {
		r.index[id] = i
	}
	r.anc = make([]uint64, n*r.words)
	r.desc = make([]uint64, n*r.words)

	// Propagate closures in topological order: a concept's ancestor set is
	// the union of its parents and their ancestor sets; descendants dually.
	for _, i := range r.topoOrder(o) {
		c := o.concepts[r.ids[i]]
		row := r.anc[i*r.words : (i+1)*r.words]
		for _, p := range c.parents {
			pi := r.index[p.ID]
			row[pi/64] |= 1 << (pi % 64)
			prow := r.anc[pi*r.words : (pi+1)*r.words]
			for w := range row {
				row[w] |= prow[w]
			}
		}
	}
	// Descendant bitsets are the transpose of the ancestor bitsets.
	for i := 0; i < n; i++ {
		row := r.anc[i*r.words : (i+1)*r.words]
		for j := 0; j < n; j++ {
			if row[j/64]&(1<<(j%64)) != 0 {
				r.desc[j*r.words+i/64] |= 1 << (i % 64)
			}
		}
	}

	// Materialise the sorted ID slices the traversal queries hand out.
	for i, id := range r.ids {
		descs, ancs := []string{}, []string{} // non-nil: the concept is known
		var parts, leaves []string
		c := o.concepts[id]
		if !c.Abstract {
			parts = append(parts, id)
		}
		if len(c.children) == 0 {
			leaves = append(leaves, id)
		}
		for j, jd := range r.ids {
			if r.desc[i*r.words+j/64]&(1<<(j%64)) != 0 {
				descs = append(descs, jd)
				dc := o.concepts[jd]
				if !dc.Abstract {
					parts = append(parts, jd)
				}
				if len(dc.children) == 0 {
					leaves = append(leaves, jd)
				}
			}
			if r.anc[i*r.words+j/64]&(1<<(j%64)) != 0 {
				ancs = append(ancs, jd)
			}
		}
		// The j-loop visits IDs in sorted order, so every slice is sorted
		// except parts/leaves, where the self entry may precede smaller
		// descendants.
		sort.Strings(parts)
		sort.Strings(leaves)
		r.descIDs[i], r.ancIDs[i] = descs, ancs
		r.partitions[i], r.leafParts[i] = parts, leaves
	}
	return r
}

// topoOrder returns the dense indices in parents-before-children order.
// Construction guarantees acyclicity, so a Kahn pass always completes.
func (r *reachability) topoOrder(o *Ontology) []int {
	n := len(r.ids)
	indeg := make([]int, n)
	for i, id := range r.ids {
		indeg[i] = len(o.concepts[id].parents)
	}
	order := make([]int, 0, n)
	frontier := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
		}
	}
	for len(frontier) > 0 {
		i := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, i)
		for _, ch := range o.concepts[r.ids[i]].children {
			ci := r.index[ch.ID]
			indeg[ci]--
			if indeg[ci] == 0 {
				frontier = append(frontier, ci)
			}
		}
	}
	return order
}

// subsumes answers sup ⊒ sub over the closure bitsets.
func (r *reachability) subsumes(supID, subID string) bool {
	sub, ok := r.index[subID]
	if !ok {
		return false
	}
	sup, ok := r.index[supID]
	if !ok {
		return false
	}
	if sup == sub {
		return true
	}
	return r.anc[sub*r.words+sup/64]&(1<<(sup%64)) != 0
}

// copyOf returns a defensive copy: the public traversal queries hand out
// fresh slices, so callers may keep or modify the result without
// corrupting the cache.
func copyOf(ids []string) []string {
	if ids == nil {
		return nil
	}
	out := make([]string, len(ids))
	copy(out, ids)
	return out
}
