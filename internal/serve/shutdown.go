package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"

	"dexa/internal/store"
)

// DefaultGrace is how long Serve waits for in-flight requests to drain
// before giving up on them.
const DefaultGrace = 10 * time.Second

// Serve runs srv on ln until ctx is cancelled, then shuts down
// gracefully: the listener stops accepting, in-flight requests get up to
// grace to finish (connection draining), the preStop hooks run in order,
// and only then is the store's WAL flushed and closed, so nothing
// annotated during the run is lost. It returns nil on a clean shutdown.
//
// The preStop hooks are where callers stop background producers that
// still write through the store or their own journals — dexa-serve uses
// them to stop the lifecycle probe workers and flush the transition log
// and repair queue. Ordering matters: the hooks run strictly after the
// HTTP drain (no request is mid-flight) and strictly before the store
// close (their final writes still land), so a SIGTERM can never lose a
// lifecycle transition that a client already observed.
//
// The caller owns signal wiring — pass a signal.NotifyContext context to
// get SIGINT/SIGTERM handling.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration, st *store.Store, preStop ...func() error) error {
	if grace <= 0 {
		grace = DefaultGrace
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	var err error
	select {
	case err = <-errc:
		// The server died on its own (listener error); nothing to drain.
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		err = srv.Shutdown(sctx)
		cancel()
		<-errc // Serve has returned http.ErrServerClosed by now
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	for _, hook := range preStop {
		if herr := hook(); herr != nil && err == nil {
			err = herr
		}
	}
	if st != nil {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
