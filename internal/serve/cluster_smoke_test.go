package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"testing"

	"dexa/internal/cluster"
	"dexa/internal/core"
	"dexa/internal/match"
	"dexa/internal/simulation"
	"dexa/internal/store"
)

// TestClusterSmokeFullCatalog is the acceptance smoke for the serving
// tier at catalog scale: the full simulated 252-module catalog sharded
// three ways, byte-compared against a single-node oracle on the whole
// match matrix and a sample of substitute queries. Gated behind -short
// because seeding annotates every module on both sides; `make
// cluster-smoke` drives it explicitly.
func TestClusterSmokeFullCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("full-catalog cluster smoke skipped in -short mode")
	}
	u := simulation.NewUniverse()

	newNode := func(name string) *clusterNode {
		st, err := store.Open("", store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		// Each node gets its own generator over the shared pool —
		// generation is deterministic, so shard and oracle stores agree.
		source := store.NewSource(st, core.NewGenerator(u.Ont, u.Pool))
		cmp := match.NewComparer(u.Ont, source)
		cmp.Index = match.NewCatalogIndex(u.Ont, u.Registry.Modules())
		cmp.Workers = 4
		srv := &Server{Registry: u.Registry, Store: st, Source: source, Comparer: cmp}
		return &clusterNode{name: name, st: st, source: source, srv: srv, mux: http.NewServeMux()}
	}

	names := []string{"s1", "s2", "s3"}
	var cfg cluster.Config
	listeners := map[string]net.Listener{}
	for _, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[name] = ln
		cfg.Shards = append(cfg.Shards, cluster.ShardConfig{Name: name, URL: "http://" + ln.Addr().String()})
	}
	ring, err := cfg.Ring()
	if err != nil {
		t.Fatal(err)
	}

	nodes := map[string]*clusterNode{}
	for _, name := range names {
		cn := newNode(name)
		node, err := cluster.NewShardNode(cfg, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		cn.node = node
		cn.srv.Cluster = node
		cn.mux.Handle("/wal", cluster.NewFeed(cn.st, nil))
		cn.start(t, listeners[name])
		nodes[name] = cn
	}
	oracle := newNode("oracle")
	oln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	oracle.start(t, oln)

	// Seed directly through each owner's source (and the oracle's) —
	// driving 252 annotations over HTTP would only slow the smoke down.
	ids := u.Registry.IDs()
	perShard := map[string]int{}
	for _, id := range ids {
		e, _ := u.Registry.Get(id)
		owner := ring.Owner(id)
		perShard[owner]++
		if _, _, err := nodes[owner].source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s on %s: %v", id, owner, err)
		}
		if _, _, err := oracle.source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s on oracle: %v", id, err)
		}
	}
	t.Logf("seeded %d modules across %d shards: %v", len(ids), len(names), perShard)
	for _, name := range names {
		if perShard[name] == 0 {
			t.Fatalf("shard %s owns no modules — ring placement degenerated", name)
		}
	}

	// Whole-matrix byte equality: a query answered by scatter-gather over
	// three partial stores must be indistinguishable from one answered by
	// a node holding everything.
	_, oracleMatrix := fetch(t, oracle.ts.URL+"/api/matches")
	for _, name := range names {
		status, got := fetch(t, nodes[name].ts.URL+"/api/matches")
		if status != http.StatusOK {
			t.Fatalf("shard %s /matches status %d", name, status)
		}
		var o, g matchesBody
		mustUnmarshal(t, oracleMatrix, &o)
		mustUnmarshal(t, got, &g)
		if g.Partial {
			t.Fatalf("shard %s answered partial on a healthy cluster (failed: %v)", name, g.FailedShards)
		}
		if !bytes.Equal(o.Matrix, g.Matrix) {
			t.Fatalf("shard %s matrix differs from oracle (%d vs %d bytes)", name, len(g.Matrix), len(o.Matrix))
		}
	}

	// Substitute queries for a spread of targets, from every shard, must
	// match the oracle byte for byte.
	sample := ids
	if len(sample) > 12 {
		step := len(sample) / 12
		picked := make([]string, 0, 12)
		for i := 0; i < len(sample); i += step {
			picked = append(picked, sample[i])
		}
		sample = picked
	}
	for _, id := range sample {
		path := "/api/modules/" + id + "/substitutes"
		ostatus, want := fetch(t, oracle.ts.URL+path)
		for _, name := range names {
			status, got := fetch(t, nodes[name].ts.URL+path)
			if status != ostatus {
				t.Fatalf("substitutes(%s) via %s: status %d, oracle %d", id, name, status, ostatus)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("substitutes(%s) via %s differs from oracle:\n got: %s\nwant: %s", id, name, got, want)
			}
		}
	}
}

func mustUnmarshal(t *testing.T, data []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(data, into); err != nil {
		t.Fatalf("decoding %.80s...: %v", data, err)
	}
}
