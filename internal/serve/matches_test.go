package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"dexa/internal/match"
)

func post(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s = %d", url, resp.StatusCode)
	}
}

func getWithETag(t *testing.T, url, etag string, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

// TestMatchesEndpoint drives the full lifecycle: an unannotated catalog
// yields an all-missing matrix, annotating modules changes the ETag and
// fills cells, an If-None-Match revalidation answers 304, and the cached
// build serves unchanged catalogs.
func TestMatchesEndpoint(t *testing.T) {
	f := newFixture(t, "")

	var first struct {
		State  string            `json:"state"`
		Matrix match.MatchMatrix `json:"matrix"`
	}
	resp := getWithETag(t, f.ts.URL+"/matches", "", &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag0 := resp.Header.Get("ETag")
	if etag0 == "" {
		t.Fatal("no ETag on /matches")
	}
	if len(first.Matrix.Missing) != 3 || len(first.Matrix.Cells) != 0 {
		t.Fatalf("unannotated matrix = %+v", first.Matrix)
	}

	// Revalidation with the current state answers 304 without a rebuild.
	if resp := getWithETag(t, f.ts.URL+"/matches", etag0, nil); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp.StatusCode)
	}

	// Annotating modules changes the catalog state: new ETag, real cells.
	for _, id := range []string{"alpha", "beta", "gamma"} {
		post(t, f.ts.URL+"/modules/"+id+"/generate")
	}
	var second struct {
		State  string            `json:"state"`
		Matrix match.MatchMatrix `json:"matrix"`
	}
	resp = getWithETag(t, f.ts.URL+"/matches", etag0, &second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after annotation: %d, want 200 (stale ETag must not 304)", resp.StatusCode)
	}
	etag1 := resp.Header.Get("ETag")
	if etag1 == etag0 {
		t.Fatal("ETag unchanged although the catalog changed")
	}
	if len(second.Matrix.Missing) != 0 {
		t.Fatalf("missing = %v", second.Matrix.Missing)
	}
	// alpha and beta are behaviourally equivalent; gamma is disjoint from
	// both — 2 equivalent + 4 disjoint ordered cells.
	if second.Matrix.Stats.Equivalent != 2 || second.Matrix.Stats.Disjoint != 4 {
		t.Errorf("stats = %+v", second.Matrix.Stats)
	}

	// An unchanged catalog serves the identical cached build.
	var third struct {
		State string `json:"state"`
	}
	getWithETag(t, f.ts.URL+"/matches", "", &third)
	if third.State != second.State {
		t.Errorf("state churned on an unchanged catalog: %s vs %s", third.State, second.State)
	}
}

// TestSubstitutesWarmAndETagged: the substitutes endpoint carries the
// catalog-state ETag, answers 304 on revalidation, reuses the warmed
// search on an unchanged catalog, and invalidates when the target's
// stored annotation changes.
func TestSubstitutesWarmAndETagged(t *testing.T) {
	f := newFixture(t, "")
	for _, id := range []string{"alpha", "beta", "gamma"} {
		post(t, f.ts.URL+"/modules/"+id+"/generate")
	}
	url := f.ts.URL + "/modules/alpha/substitutes"

	var subs struct {
		Substitutes []struct {
			ID      string `json:"id"`
			Verdict string `json:"verdict"`
		} `json:"substitutes"`
	}
	resp := getWithETag(t, url, "", &subs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /substitutes")
	}
	if len(subs.Substitutes) != 1 || subs.Substitutes[0].ID != "beta" || subs.Substitutes[0].Verdict != "equivalent" {
		t.Fatalf("substitutes = %+v", subs.Substitutes)
	}

	if resp := getWithETag(t, url, etag, nil); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", resp.StatusCode)
	}

	// The warmed entry serves repeats without a fresh search: the
	// generator-run counter must not move.
	runs := f.source.Runs()
	getWithETag(t, url, "", nil)
	if got := f.source.Runs(); got != runs {
		t.Errorf("warm substitutes re-ran generation: %d -> %d", runs, got)
	}

	// Retiring a candidate changes the availability fingerprint: stale
	// ETag revalidation must miss and the search re-run.
	if err := f.reg.SetAvailable("beta", false); err != nil {
		t.Fatal(err)
	}
	resp = getWithETag(t, url, etag, &subs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after retirement: %d, want 200", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == etag {
		t.Error("ETag unchanged although a candidate was retired")
	}
	for _, s := range subs.Substitutes {
		if s.ID == "beta" {
			t.Error("retired candidate still ranked")
		}
	}
}
