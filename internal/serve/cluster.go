package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strings"

	"dexa/internal/cluster"
	"dexa/internal/dataexample"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/registry"
)

// Cluster endpoints and behaviour, active only when Server.Cluster is
// set. A shard node mounts the intra-cluster API:
//
//	GET  /cluster/info        — this node's identity and replication seq
//	GET  /cluster/sets        — every annotation this shard stores
//	POST /cluster/substitutes — rank a candidate slice against shipped examples
//	POST /cluster/matrix      — compute this shard's slice of the pair matrix
//
// and changes how the public query routes answer: /matches and
// /modules/{id}/substitutes scatter-gather across the ring through the
// cluster Router (merged results are byte-identical to a single node
// holding the whole catalog; failed shards degrade the response to a
// partial one instead of failing it), while /examples and /generate for
// a module another shard owns answer 307 to the owner. A follower node
// mounts /cluster/info only and serves its replicated slice read-only.

func (s *Server) clusterRoutes() []route {
	rts := []route{
		{http.MethodGet, "/cluster/info", s.handleClusterInfo},
	}
	if s.Cluster.Role == cluster.RoleShard {
		rts = append(rts,
			route{http.MethodGet, "/cluster/sets", s.handleClusterSets},
			route{http.MethodPost, "/cluster/substitutes", s.handleClusterSubstitutes},
			route{http.MethodPost, "/cluster/matrix", s.handleClusterMatrix},
			route{http.MethodPost, "/cluster/search", s.handleClusterSearch},
		)
	}
	return rts
}

// clusterMode reports whether public queries scatter-gather: only shard
// nodes route; followers answer from their replicated slice.
func (s *Server) clusterMode() bool {
	return s.Cluster != nil && s.Cluster.Role == cluster.RoleShard && s.Cluster.Router != nil
}

// readOnly reports whether mutating endpoints must refuse: a follower
// mirrors its leader, so accepting a local write would diverge it.
func (s *Server) readOnly() bool {
	return s.Cluster != nil && s.Cluster.Role == cluster.RoleFollower
}

// redirectToOwner answers 307 to the shard owning the module when this
// shard node is not it, and reports whether it did. 307 preserves the
// method, so POST /generate lands on the owner as a POST.
func (s *Server) redirectToOwner(w http.ResponseWriter, r *http.Request, id string) bool {
	n := s.Cluster
	if n == nil || n.Role != cluster.RoleShard || n.Owns(id) {
		return false
	}
	base := n.OwnerURL(id)
	if base == "" {
		return false
	}
	prefix := "/api"
	if n.Router != nil && n.Router.APIPrefix != "" {
		prefix = n.Router.APIPrefix
	}
	loc := strings.TrimSuffix(base, "/") + prefix + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		loc += "?" + q
	}
	http.Redirect(w, r, loc, http.StatusTemporaryRedirect)
	return true
}

func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	info := cluster.Info{
		Shard:   s.Cluster.Self,
		Role:    s.Cluster.Role,
		Seq:     s.Store.Seq(),
		Modules: s.Store.Len(),
	}
	if f := s.Cluster.Follower; f != nil {
		st := f.Status()
		info.Leader = st.Leader
		info.LeaderSeq = st.LeaderSeq
		info.Lag = st.Lag
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleClusterSets(w http.ResponseWriter, r *http.Request) {
	payload := cluster.SetsPayload{
		Shard: s.Cluster.Self,
		Seq:   s.Store.Seq(),
		Sets:  make(map[string]cluster.StoredSet, s.Store.Len()),
	}
	for _, id := range s.Store.IDs() {
		set, hash, ok := s.Store.Get(id)
		if !ok {
			continue
		}
		version, _ := s.Store.Version(id)
		payload.Sets[id] = cluster.StoredSet{Hash: hash, Version: version, Examples: set}
	}
	writeJSON(w, http.StatusOK, payload)
}

// handleClusterSubstitutes ranks this shard's slice of the candidate set
// against the target's examples (shipped in the body — only the owner
// shard stores them). Candidates run through the same FindSubstitutes
// path the single-node search uses, so each slice carries exactly the
// entries the oracle would have produced for those candidates.
func (s *Server) handleClusterSubstitutes(w http.ResponseWriter, r *http.Request) {
	if s.Comparer == nil {
		writeError(w, http.StatusNotImplemented, "substitute search is not enabled on this server")
		return
	}
	var req cluster.SubstitutesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding substitutes request: %v", err)
		return
	}
	e, ok := s.Registry.Get(req.Target)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown target module %q", req.Target)
		return
	}
	if len(req.Examples) == 0 {
		writeError(w, http.StatusBadRequest, "target %q shipped no examples", req.Target)
		return
	}
	candMods := make([]*module.Module, 0, len(req.Candidates))
	for _, id := range req.Candidates {
		if ce, ok := s.Registry.Get(id); ok {
			candMods = append(candMods, ce.Module)
		}
	}
	target := match.Unavailable{Signature: e.Module, Examples: req.Examples}
	subs, err := s.Comparer.FindSubstitutesContext(r.Context(), target, candMods)
	if err != nil {
		writeError(w, http.StatusBadGateway, "ranking candidates for %s: %v", req.Target, err)
		return
	}
	reply := cluster.SubstitutesReply{Shard: s.Cluster.Self}
	for _, c := range subs.Ranked {
		reply.Substitutes = append(reply.Substitutes, cluster.SubstituteEntry{
			ID:       c.Module.ID,
			Verdict:  c.Result.Verdict.String(),
			Score:    c.Result.Score(),
			Compared: c.Result.Compared,
			Agreeing: c.Result.Agreeing,
		})
	}
	for _, sk := range subs.Skipped {
		reply.Skipped = append(reply.Skipped, cluster.SkippedEntry{ID: sk.ModuleID, Reason: sk.Reason})
	}
	writeJSON(w, http.StatusOK, reply)
}

// handleClusterMatrix computes this shard's slice of the all-pairs
// matrix: the request carries the full catalog's sets (gathered from
// every shard by the router), the slice covers the pairs whose owner —
// by ring placement — is this shard.
func (s *Server) handleClusterMatrix(w http.ResponseWriter, r *http.Request) {
	if s.Comparer == nil {
		writeError(w, http.StatusNotImplemented, "matching is not enabled on this server")
		return
	}
	var req cluster.MatrixRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding matrix request: %v", err)
		return
	}
	tab := dataexample.NewSymbolTable()
	keyed := make(map[string]*dataexample.KeyedSet, len(req.Sets))
	for id, ss := range req.Sets {
		keyed[id] = ss.Examples.KeyedInterned(tab)
	}
	source := func(id string) (*dataexample.KeyedSet, bool) {
		set, ok := keyed[id]
		return set, ok
	}
	mm, err := s.Comparer.MatchMatrixSlice(r.Context(), s.Registry.Modules(), source, s.Cluster.Owns)
	if err != nil {
		writeError(w, http.StatusBadGateway, "building matrix slice: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, cluster.MatrixReply{Shard: s.Cluster.Self, Matrix: mm})
}

// scatterSubstitutes is the cluster-mode /modules/{id}/substitutes: the
// target's examples come from the local store (owned) or the owner shard
// (not owned), the candidate catalog is partitioned by ring owner, and
// the merged ranking is byte-identical to the single-node search when
// every shard answers. Failed shards degrade the response to a partial
// ranking flagged as such.
func (s *Server) scatterSubstitutes(w http.ResponseWriter, r *http.Request, e *registry.Entry) {
	limit, ok := parseLimitParam(w, r)
	if !ok {
		return
	}
	id := e.Module.ID
	var (
		hash     string
		examples dataexample.Set
	)
	if s.Cluster.Owns(id) {
		set, h, ok := s.Store.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "no stored examples for module %q (POST .../generate first)", id)
			return
		}
		hash, examples = h, set
	} else {
		ss, err := s.Cluster.Router.FetchExamples(r.Context(), id)
		if err != nil {
			status := http.StatusBadGateway
			if strings.Contains(err.Error(), "404") {
				status = http.StatusNotFound
			}
			writeError(w, status, "%v", err)
			return
		}
		hash, examples = ss.Hash, ss.Examples
	}
	avail := s.Registry.Available()
	candidates := make([]string, len(avail))
	for i, m := range avail {
		candidates[i] = m.ID
	}
	res, err := s.Cluster.Router.Substitutes(r.Context(), id, hash, examples, candidates)
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster substitute search for %s: %v", id, err)
		return
	}
	ranked := res.Substitutes
	if limit > 0 && len(ranked) > limit {
		ranked = ranked[:limit]
	}
	resp := substitutesResponse{Target: id, Hash: hash, Partial: res.Partial, FailedShards: res.FailedShards}
	for _, c := range ranked {
		resp.Substitutes = append(resp.Substitutes, substituteInfo(c))
	}
	for _, sk := range res.Skipped {
		resp.Skipped = append(resp.Skipped, skippedInfo(sk))
	}
	writeJSON(w, http.StatusOK, resp)
}

// scatterMatches is the cluster-mode /matches: gather, scatter the
// sweep, merge (see Router.Matrix). The ETag hashes the cluster state
// key — every shard's replication sequence — and is only honoured for
// complete results: a partial build must not 304 against a complete one.
func (s *Server) scatterMatches(w http.ResponseWriter, r *http.Request) {
	res, err := s.Cluster.Router.Matrix(r.Context())
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster matrix build: %v", err)
		return
	}
	sum := sha256.Sum256([]byte(res.StateKey))
	state := hex.EncodeToString(sum[:])[:32]
	if !res.Partial {
		etag := `"` + state + `"`
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache")
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, http.StatusOK, matchesResponse{
		State:        state,
		Matrix:       res.Matrix,
		Partial:      res.Partial,
		FailedShards: res.FailedShards,
	})
}

// clusterStats is the /stats cluster block.
type clusterStats struct {
	Role string `json:"role"`
	Self string `json:"self"`
	Seq  uint64 `json:"seq"`
	// Shards carries the health checker's per-shard verdicts (shard role).
	Shards []cluster.ShardHealth `json:"shards,omitempty"`
	// Replication is the follower's tail position (follower role).
	Replication *cluster.FollowerStatus `json:"replication,omitempty"`
}

func (s *Server) clusterStatsBlock() *clusterStats {
	if s.Cluster == nil {
		return nil
	}
	cs := &clusterStats{Role: s.Cluster.Role, Self: s.Cluster.Self, Seq: s.Store.Seq()}
	if s.Cluster.Checker != nil {
		cs.Shards = s.Cluster.Checker.Status()
	}
	if s.Cluster.Follower != nil {
		st := s.Cluster.Follower.Status()
		cs.Replication = &st
	}
	return cs
}
