package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dexa/internal/core"
	"dexa/internal/instances"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/registry"
	"dexa/internal/store"
	"dexa/internal/typesys"
)

type fixture struct {
	ont    *ontology.Ontology
	reg    *registry.Registry
	st     *store.Store
	source *store.Source
	srv    *Server
	ts     *httptest.Server
}

// seqModule builds a Seq->Acc module computing fn.
func seqModule(id string, fn func(s string) string) *module.Module {
	m := &module.Module{
		ID: id, Name: "module " + id, Kind: module.Kind(0),
		Inputs:  []module.Parameter{{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"}},
		Outputs: []module.Parameter{{Name: "acc", Struct: typesys.StringType, Semantic: "Acc"}},
	}
	m.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{"acc": typesys.Str(fn(string(in["seq"].(typesys.StringValue))))}, nil
	}))
	return m
}

// newFixture builds a three-module universe: a and b are behaviourally
// equivalent, c is disjoint from both.
func newFixture(t *testing.T, dir string) *fixture {
	t.Helper()
	o := ontology.New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Seq", "", "Data")
	o.MustAddConcept("DNA", "", "Seq")
	o.MustAddConcept("Prot", "", "Seq")
	o.MustAddConcept("Acc", "", "Data")
	p := instances.NewPool(o)
	p.MustAdd("DNA", typesys.Str("ACGT"), "")
	p.MustAdd("Prot", typesys.Str("MKTW"), "")
	p.MustAdd("Acc", typesys.Str("P12345"), "")

	reg := registry.New()
	for _, m := range []*module.Module{
		seqModule("alpha", func(s string) string { return "X:" + s }),
		seqModule("beta", func(s string) string { return "X:" + s }),
		seqModule("gamma", func(s string) string { return "Y:" + s }),
	} {
		reg.MustRegister(m)
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	source := store.NewSource(st, core.NewGenerator(o, p))
	srv := &Server{
		Registry: reg,
		Store:    st,
		Source:   source,
		Comparer: match.NewComparer(o, source),
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fixture{ont: o, reg: reg, st: st, source: source, srv: srv, ts: ts}
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp
}

func TestCatalogAndModule(t *testing.T) {
	f := newFixture(t, "")
	var cat struct {
		Count   int `json:"count"`
		Modules []struct {
			ID       string `json:"id"`
			Examples int    `json:"examples"`
			Hash     string `json:"hash"`
		} `json:"modules"`
	}
	if resp := getJSON(t, f.ts.URL+"/catalog", &cat); resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog status %d", resp.StatusCode)
	}
	if cat.Count != 3 || len(cat.Modules) != 3 {
		t.Fatalf("catalog count = %d (%d rows), want 3", cat.Count, len(cat.Modules))
	}
	if cat.Modules[0].ID != "alpha" || cat.Modules[1].ID != "beta" || cat.Modules[2].ID != "gamma" {
		t.Errorf("catalog not in ID order: %+v", cat.Modules)
	}
	if cat.Modules[0].Examples != 0 || cat.Modules[0].Hash != "" {
		t.Errorf("unannotated module shows examples: %+v", cat.Modules[0])
	}

	var mi struct {
		ID     string `json:"id"`
		Inputs []struct {
			Name     string `json:"name"`
			Semantic string `json:"semantic"`
		} `json:"inputs"`
		Available bool `json:"available"`
	}
	if resp := getJSON(t, f.ts.URL+"/modules/alpha", &mi); resp.StatusCode != http.StatusOK {
		t.Fatalf("module status %d", resp.StatusCode)
	}
	if mi.ID != "alpha" || len(mi.Inputs) != 1 || mi.Inputs[0].Semantic != "Seq" || !mi.Available {
		t.Errorf("module info = %+v", mi)
	}
	if resp := getJSON(t, f.ts.URL+"/modules/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown module status %d, want 404", resp.StatusCode)
	}
}

func TestExamplesLifecycleAndETag(t *testing.T) {
	f := newFixture(t, "")
	// Nothing stored yet.
	if resp := getJSON(t, f.ts.URL+"/modules/alpha/examples", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("examples before generation: status %d, want 404", resp.StatusCode)
	}
	// Generate on demand.
	resp, err := http.Post(f.ts.URL+"/modules/alpha/generate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var gen struct {
		Hash   string `json:"hash"`
		Count  int    `json:"count"`
		Cached bool   `json:"cached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&gen); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || gen.Count == 0 || gen.Hash == "" || gen.Cached {
		t.Fatalf("generate: status %d, %+v", resp.StatusCode, gen)
	}

	// Fetch with ETag.
	var ex struct {
		Hash     string          `json:"hash"`
		Count    int             `json:"count"`
		Examples json.RawMessage `json:"examples"`
	}
	resp = getJSON(t, f.ts.URL+"/modules/alpha/examples", &ex)
	if resp.StatusCode != http.StatusOK || ex.Hash != gen.Hash || ex.Count != gen.Count {
		t.Fatalf("examples: status %d, %+v vs generate %+v", resp.StatusCode, ex, gen)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+gen.Hash+`"` {
		t.Fatalf("ETag = %q, want quoted content hash %q", etag, gen.Hash)
	}

	// Conditional revalidation: 304, empty body.
	req, _ := http.NewRequest("GET", f.ts.URL+"/modules/alpha/examples", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Errorf("If-None-Match: status %d body %q, want 304 empty", resp2.StatusCode, body)
	}

	// Weak validators and wildcards match too.
	for _, h := range []string{"W/" + etag, `"stale", ` + etag, "*"} {
		req, _ := http.NewRequest("GET", f.ts.URL+"/modules/alpha/examples", nil)
		req.Header.Set("If-None-Match", h)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", h, resp.StatusCode)
		}
	}

	// A stale tag misses and gets the full body again.
	req, _ = http.NewRequest("GET", f.ts.URL+"/modules/alpha/examples", nil)
	req.Header.Set("If-None-Match", `"0000"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", resp3.StatusCode)
	}

	// Second generate is served from the store.
	resp, err = http.Post(f.ts.URL+"/modules/alpha/generate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&gen); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !gen.Cached {
		t.Error("second generate should be served from the store")
	}
	if f.source.Runs() != 1 {
		t.Errorf("generator runs = %d, want 1", f.source.Runs())
	}
}

// TestGenerateThunderingHerd is the serving-layer acceptance criterion:
// N identical concurrent generation requests cause exactly one
// generator run.
func TestGenerateThunderingHerd(t *testing.T) {
	f := newFixture(t, "")
	const N = 24
	var start, done sync.WaitGroup
	start.Add(1)
	statuses := make([]int, N)
	hashes := make([]string, N)
	for i := 0; i < N; i++ {
		done.Add(1)
		go func(i int) {
			defer done.Done()
			start.Wait()
			resp, err := http.Post(f.ts.URL+"/modules/beta/generate", "", nil)
			if err != nil {
				statuses[i] = -1
				return
			}
			var gen struct {
				Hash string `json:"hash"`
			}
			json.NewDecoder(resp.Body).Decode(&gen)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			hashes[i] = gen.Hash
		}(i)
	}
	start.Done()
	done.Wait()
	for i := 0; i < N; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if hashes[i] != hashes[0] {
			t.Errorf("request %d saw hash %q, others %q", i, hashes[i], hashes[0])
		}
	}
	if runs := f.source.Runs(); runs != 1 {
		t.Fatalf("%d concurrent generate requests performed %d generator runs, want exactly 1", N, runs)
	}
}

func TestSubstitutesFromStoredExamples(t *testing.T) {
	f := newFixture(t, "")
	// No stored examples yet: the search has nothing to go on.
	if resp := getJSON(t, f.ts.URL+"/modules/alpha/substitutes", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("substitutes before generation: status %d, want 404", resp.StatusCode)
	}
	if resp, err := http.Post(f.ts.URL+"/modules/alpha/generate", "", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// The provider retires alpha — the decay scenario. Its stored
	// examples still drive the search.
	if err := f.reg.SetAvailable("alpha", false); err != nil {
		t.Fatal(err)
	}
	var subs struct {
		Target      string `json:"target"`
		Substitutes []struct {
			ID      string  `json:"id"`
			Verdict string  `json:"verdict"`
			Score   float64 `json:"score"`
		} `json:"substitutes"`
	}
	if resp := getJSON(t, f.ts.URL+"/modules/alpha/substitutes", &subs); resp.StatusCode != http.StatusOK {
		t.Fatalf("substitutes: status %d", resp.StatusCode)
	}
	if len(subs.Substitutes) == 0 {
		t.Fatal("no substitutes found")
	}
	if subs.Substitutes[0].ID != "beta" || subs.Substitutes[0].Verdict != "equivalent" {
		t.Errorf("best substitute = %+v, want equivalent beta", subs.Substitutes[0])
	}
	for _, sub := range subs.Substitutes {
		if sub.ID == "gamma" && sub.Verdict == "equivalent" {
			t.Error("gamma behaves differently and must not rank equivalent")
		}
		if sub.ID == "alpha" {
			t.Error("the decayed target must not propose itself")
		}
	}
	// limit caps the ranking.
	var limited struct {
		Substitutes []json.RawMessage `json:"substitutes"`
	}
	getJSON(t, f.ts.URL+"/modules/alpha/substitutes?limit=1", &limited)
	if len(limited.Substitutes) != 1 {
		t.Errorf("limit=1 returned %d substitutes", len(limited.Substitutes))
	}
	if resp := getJSON(t, f.ts.URL+"/modules/alpha/substitutes?limit=-2", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative limit: status %d, want 400", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	f := newFixture(t, "")
	if resp, err := http.Post(f.ts.URL+"/modules/alpha/generate", "", nil); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	var stats struct {
		Store struct {
			Modules int  `json:"modules"`
			Memory  bool `json:"memory"`
		} `json:"store"`
		GeneratorRuns uint64 `json:"generatorRuns"`
		Modules       int    `json:"modules"`
		Annotated     int    `json:"annotated"`
	}
	if resp := getJSON(t, f.ts.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if stats.Modules != 3 || stats.Annotated != 1 || stats.GeneratorRuns != 1 || !stats.Store.Memory {
		t.Errorf("stats = %+v", stats)
	}
}

// TestGracefulShutdown drives the full drain path: an in-flight request
// outlives the shutdown signal and still completes, and everything
// annotated during the run is on disk afterwards.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir)

	slow := make(chan struct{})
	mux := http.NewServeMux()
	mux.Handle("/", f.srv.Handler())
	mux.HandleFunc("GET /slow", func(w http.ResponseWriter, r *http.Request) {
		<-slow
		fmt.Fprint(w, "drained")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, &http.Server{Handler: mux}, ln, 5*time.Second, f.st)
	}()
	base := "http://" + ln.Addr().String()

	// Annotate a module through the real server.
	resp, err := http.Post(base+"/modules/alpha/generate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	wantHash, ok := f.st.Hash("alpha")
	if !ok {
		t.Fatal("generation did not reach the store")
	}

	// Park a request in flight, then pull the plug.
	slowDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err != nil {
			slowDone <- "error: " + err.Error()
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		slowDone <- string(body)
	}()
	time.Sleep(50 * time.Millisecond) // let the slow request arrive
	cancel()                          // SIGTERM equivalent
	time.Sleep(50 * time.Millisecond) // shutdown is draining now
	close(slow)                       // the in-flight request finishes

	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil on clean shutdown", err)
	}
	if got := <-slowDone; got != "drained" {
		t.Errorf("in-flight request during shutdown: %q, want %q", got, "drained")
	}
	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/catalog"); err == nil {
		t.Error("server still accepting connections after shutdown")
	}

	// The store was flushed: a fresh open sees the annotation.
	re, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if h, ok := re.Hash("alpha"); !ok || h != wantHash {
		t.Errorf("after shutdown+reopen: hash %q, want %q", h, wantHash)
	}
}

// TestEtagMatches covers the header comparison corner cases directly.
func TestEtagMatches(t *testing.T) {
	etag := `"abc"`
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{`"abc"`, true},
		{`W/"abc"`, true},
		{"*", true},
		{`"xyz"`, false},
		{`"xyz", "abc"`, true},
		{` "abc" `, true},
	}
	for _, c := range cases {
		if got := etagMatches(c.header, etag); got != c.want {
			t.Errorf("etagMatches(%q) = %v, want %v", c.header, got, c.want)
		}
	}
	if !strings.Contains(`"abc"`, "abc") {
		t.Fatal("sanity")
	}
}
