// Package serve is the annotation serving layer: it exposes the
// persistent example store over HTTP so generated data examples are
// browsable, cacheable and usable for substitute search without a fresh
// generation run. The endpoints (mounted under a prefix of the caller's
// choosing, /api in dexa-serve):
//
//	GET  /catalog                      — every registered module with annotation status
//	GET  /modules/{id}                 — one module's signature, health and annotation metadata
//	GET  /modules/{id}/examples        — the stored example set; ETag = content hash,
//	                                     If-None-Match answers 304 without touching the set
//	POST /modules/{id}/generate        — on-demand annotation through the store-backed
//	                                     source: concurrent identical requests collapse to
//	                                     one generator run (singleflight), the result is
//	                                     persisted before the first response leaves
//	POST /modules/{id}/generate?refresh=1 — force regeneration (content-hash no-op if stable)
//	GET  /modules/{id}/substitutes     — rank live substitutes for a module from its
//	                                     stored examples (the workflow-repair query);
//	                                     warmed per target and ETag'd on the catalog state
//	GET  /matches                      — the catalog-wide all-pairs verdict matrix over
//	                                     stored annotations; ETag = catalog state key,
//	                                     unchanged catalogs serve the cached build
//	GET  /search                       — ranked behavior-aware repository search
//	                                     (keywords, concept: expansion, behaves:
//	                                     classes); paginated, ETag'd on the index
//	                                     generation (see search.go)
//	GET  /compose                      — constraint-guided workflow synthesis from an
//	                                     input concept to an output concept, slots
//	                                     disambiguated by data examples (see compose.go)
//	GET  /stats                        — store and generation counters
//
// A server wired with a lifecycle.Manager additionally mounts the
// live-catalog endpoints — GET /lifecycle, /events, /watch (long-poll
// change feed) and GET/POST /repairs — documented in lifecycle.go.
//
// All responses are JSON. Errors use {"error": "..."} with a matching
// status code.
package serve

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"dexa/internal/cluster"
	"dexa/internal/core"
	"dexa/internal/dataexample"
	"dexa/internal/lifecycle"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/registry"
	"dexa/internal/search"
	"dexa/internal/store"
	"dexa/internal/telemetry"
)

// Server wires the registry, the example store, the store-backed
// generation source and the comparer into an http.Handler. Registry and
// Store are required; Source and Comparer are optional — without a
// Source /generate answers 501, without a Comparer /substitutes does.
//
// The telemetry fields are optional too: with a Telemetry registry every
// route records request counts, latency histograms, in-flight and
// response-size metrics (and GET /stats embeds a full registry
// snapshot); with a Tracer every request becomes a root trace span; with
// a Logger every request emits one structured access-log line. Request
// IDs (X-Request-ID) are accepted, generated and echoed regardless.
type Server struct {
	Registry *registry.Registry
	Store    *store.Store
	Source   *store.Source
	Comparer *match.Comparer

	// Lifecycle, when set, mounts the live-catalog endpoints (/lifecycle,
	// /events, /watch, /repairs) over the manager's event log and repair
	// queue. See lifecycle.go.
	Lifecycle *lifecycle.Manager

	// Cluster, when set, makes this server one node of a sharded serving
	// tier: the intra-cluster endpoints (/cluster/*) are mounted, /matches
	// and /substitutes scatter-gather across the ring, and reads of
	// modules another shard owns redirect to their owner. See cluster.go.
	Cluster *cluster.Node

	// SearchIndex, when set, mounts GET /search (behavior-aware catalog
	// search, see search.go) and adds the index block to /stats. The
	// caller owns keeping it synced to the registry and store — typically
	// via a search.Syncer's availability hook and replication watcher.
	SearchIndex *search.Index

	Telemetry *telemetry.Registry
	Tracer    *telemetry.Tracer
	Logger    *slog.Logger

	// matrix and subs memoize the expensive matching queries; both are
	// keyed on catalog state so they invalidate themselves when stored
	// annotations, module availability or the signature index change.
	matrix matrixCache
	subs   subsCache

	// drain is closed by BeginDrain: long-poll handlers (/watch here, the
	// cluster WAL feed in its own package) answer parked and new waiters
	// immediately instead of holding the shutdown window open.
	drainOnce sync.Once
	drainLazy sync.Once
	drain     chan struct{}
}

// drainCh lazily allocates the drain channel.
func (s *Server) drainCh() chan struct{} {
	s.drainLazy.Do(func() { s.drain = make(chan struct{}) })
	return s.drain
}

// BeginDrain makes every long-poll waiter answer immediately, parked or
// future. Wire it to http.Server.RegisterOnShutdown so a SIGTERM's
// graceful drain is bounded by in-flight work, not poll timeouts.
func (s *Server) BeginDrain() {
	ch := s.drainCh()
	s.drainOnce.Do(func() { close(ch) })
}

// route is one API endpoint: the mux pattern, its method (for the 405
// Allow header on the bare path) and the handler.
type route struct {
	method  string
	pattern string
	handler http.HandlerFunc
}

func (s *Server) routes() []route {
	rts := []route{
		{http.MethodGet, "/catalog", s.handleCatalog},
		{http.MethodGet, "/modules/{id}", s.handleModule},
		{http.MethodGet, "/modules/{id}/examples", s.handleExamples},
		{http.MethodPost, "/modules/{id}/generate", s.handleGenerate},
		{http.MethodGet, "/modules/{id}/substitutes", s.handleSubstitutes},
		{http.MethodGet, "/matches", s.handleMatches},
		{http.MethodGet, "/search", s.handleSearch},
		{http.MethodGet, "/compose", s.handleCompose},
		{http.MethodGet, "/stats", s.handleStats},
	}
	if s.Lifecycle != nil {
		rts = append(rts, s.lifecycleRoutes()...)
	}
	if s.Cluster != nil {
		rts = append(rts, s.clusterRoutes()...)
	}
	return rts
}

// Handler returns the API handler. Mount it under a prefix with
// http.StripPrefix.
//
// Every route is labelled with its pattern (never the raw URL, which
// would explode metric cardinality), wrong-method requests answer a JSON
// 405 carrying an Allow header, and unknown paths answer a JSON 404.
func (s *Server) Handler() http.Handler {
	ins := telemetry.NewHTTPInstrument(telemetry.HTTPOptions{
		Registry: s.Telemetry,
		Tracer:   s.Tracer,
		Logger:   s.Logger,
	})
	mux := http.NewServeMux()
	for _, rt := range s.routes() {
		mux.Handle(rt.method+" "+rt.pattern, ins.Route(rt.pattern, rt.handler))
		// The bare pattern catches every other method: ServeMux precedence
		// prefers the method-specific registration, so this only fires on a
		// method mismatch — answer 405 with the Allow header and a JSON
		// body instead of the mux's plain-text default.
		allow := rt.method
		mux.Handle(rt.pattern, ins.Route(rt.pattern, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Allow", allow)
			writeError(w, http.StatusMethodNotAllowed, "method %s not allowed (allowed: %s)", r.Method, allow)
		})))
	}
	mux.Handle("/", ins.Route("(unmatched)", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no such endpoint %s", r.URL.Path)
	})))
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// lookup resolves the path's module ID against the registry.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*registry.Entry, bool) {
	id := r.PathValue("id")
	e, ok := s.Registry.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown module %q", id)
		return nil, false
	}
	return e, true
}

// catalogEntry is one row of the catalog listing.
type catalogEntry struct {
	ID        string `json:"id"`
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Form      string `json:"form"`
	Provider  string `json:"provider,omitempty"`
	Available bool   `json:"available"`
	// Examples and Hash describe the *stored* annotation; a module that
	// was never annotated (or whose annotation was not persisted) shows
	// zero examples and no hash.
	Examples int    `json:"examples"`
	Hash     string `json:"hash,omitempty"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	ids := s.Registry.IDs()
	out := make([]catalogEntry, 0, len(ids))
	for _, id := range ids {
		e, ok := s.Registry.Get(id)
		if !ok {
			continue
		}
		ce := catalogEntry{
			ID:        e.Module.ID,
			Name:      e.Module.Name,
			Kind:      e.Module.Kind.String(),
			Form:      e.Module.Form.String(),
			Provider:  e.Module.Provider,
			Available: e.Available,
		}
		if set, hash, ok := s.Store.Get(id); ok {
			ce.Examples = len(set)
			ce.Hash = hash
		}
		out = append(out, ce)
	}
	writeJSON(w, http.StatusOK, map[string]any{"modules": out, "count": len(out)})
}

type paramInfo struct {
	Name     string `json:"name"`
	Struct   string `json:"struct"`
	Semantic string `json:"semantic,omitempty"`
	Optional bool   `json:"optional,omitempty"`
}

type moduleInfo struct {
	ID          string      `json:"id"`
	Name        string      `json:"name"`
	Description string      `json:"description,omitempty"`
	Kind        string      `json:"kind"`
	Form        string      `json:"form"`
	Provider    string      `json:"provider,omitempty"`
	Inputs      []paramInfo `json:"inputs"`
	Outputs     []paramInfo `json:"outputs"`
	Available   bool        `json:"available"`
	Examples    int         `json:"examples"`
	Hash        string      `json:"hash,omitempty"`
	Version     uint64      `json:"version,omitempty"`
	Health      *healthInfo `json:"health,omitempty"`
}

type healthInfo struct {
	ConsecutiveFailures int    `json:"consecutiveFailures"`
	TotalFailures       int    `json:"totalFailures"`
	TotalSuccesses      int    `json:"totalSuccesses"`
	LastError           string `json:"lastError,omitempty"`
	AutoRetired         bool   `json:"autoRetired,omitempty"`
}

func params(ps []module.Parameter) []paramInfo {
	out := make([]paramInfo, len(ps))
	for i, p := range ps {
		out[i] = paramInfo{Name: p.Name, Struct: p.Struct.String(), Semantic: p.Semantic, Optional: p.Optional}
	}
	return out
}

func (s *Server) handleModule(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	m := e.Module
	info := moduleInfo{
		ID: m.ID, Name: m.Name, Description: m.Description,
		Kind: m.Kind.String(), Form: m.Form.String(), Provider: m.Provider,
		Inputs: params(m.Inputs), Outputs: params(m.Outputs),
		Available: e.Available,
	}
	if set, hash, ok := s.Store.Get(m.ID); ok {
		info.Examples = len(set)
		info.Hash = hash
		if v, ok := s.Store.Version(m.ID); ok {
			info.Version = v
		}
	}
	if h, ok := s.Registry.HealthOf(m.ID); ok && h != (registry.Health{}) {
		info.Health = &healthInfo{
			ConsecutiveFailures: h.ConsecutiveFailures,
			TotalFailures:       h.TotalFailures,
			TotalSuccesses:      h.TotalSuccesses,
			LastError:           h.LastError,
			AutoRetired:         h.AutoRetired,
		}
	}
	writeJSON(w, http.StatusOK, info)
}

type examplesResponse struct {
	Module   string          `json:"module"`
	Hash     string          `json:"hash"`
	Version  uint64          `json:"version"`
	Count    int             `json:"count"`
	Examples dataexample.Set `json:"examples"`
}

// etagMatches implements the If-None-Match comparison: a literal "*"
// matches anything, otherwise any listed entity tag must equal ours
// (weak validators compare equal under the weak comparison HTTP caching
// uses).
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		if part == "*" || strings.TrimPrefix(part, "W/") == etag {
			return true
		}
	}
	return false
}

func (s *Server) handleExamples(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if s.redirectToOwner(w, r, e.Module.ID) {
		return
	}
	set, hash, ok := s.Store.Get(e.Module.ID)
	if !ok {
		writeError(w, http.StatusNotFound, "no stored examples for module %q (POST .../generate to annotate it)", e.Module.ID)
		return
	}
	etag := `"` + hash + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	version, _ := s.Store.Version(e.Module.ID)
	writeJSON(w, http.StatusOK, examplesResponse{
		Module: e.Module.ID, Hash: hash, Version: version, Count: len(set), Examples: set,
	})
}

type generateResponse struct {
	Module   string          `json:"module"`
	Hash     string          `json:"hash"`
	Count    int             `json:"count"`
	Cached   bool            `json:"cached"`
	Changed  bool            `json:"changed,omitempty"`
	Examples dataexample.Set `json:"examples"`
}

func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if s.readOnly() {
		writeError(w, http.StatusForbidden, "this node is a read-only follower; generate on its leader shard")
		return
	}
	if s.redirectToOwner(w, r, e.Module.ID) {
		return
	}
	if s.Source == nil {
		writeError(w, http.StatusNotImplemented, "generation is not enabled on this server")
		return
	}
	refresh := false
	if v := r.URL.Query().Get("refresh"); v != "" {
		refresh, _ = strconv.ParseBool(v)
	}
	var (
		set     dataexample.Set
		changed bool
		err     error
	)
	if refresh {
		set, _, changed, err = s.Source.RefreshContext(r.Context(), e.Module)
	} else {
		var rep *core.Report
		set, rep, err = s.Source.GenerateContext(r.Context(), e.Module)
		changed = rep != nil // a nil report means the set came from the store
	}
	if err != nil {
		writeError(w, http.StatusBadGateway, "generating examples for %s: %v", e.Module.ID, err)
		return
	}
	hash, _ := s.Store.Hash(e.Module.ID)
	w.Header().Set("ETag", `"`+hash+`"`)
	writeJSON(w, http.StatusOK, generateResponse{
		Module: e.Module.ID, Hash: hash, Count: len(set), Cached: !changed, Changed: changed, Examples: set,
	})
}

type substituteInfo struct {
	ID       string  `json:"id"`
	Verdict  string  `json:"verdict"`
	Score    float64 `json:"score"`
	Compared int     `json:"compared"`
	Agreeing int     `json:"agreeing"`
}

type substitutesResponse struct {
	Target      string           `json:"target"`
	Hash        string           `json:"hash"`
	Substitutes []substituteInfo `json:"substitutes"`
	Skipped     []skippedInfo    `json:"skipped,omitempty"`
	// Cluster mode only: a scatter with failed shards degrades to a
	// partial ranking instead of failing. Absent on healthy answers, so
	// the healthy-cluster body stays byte-identical to a single node's.
	Partial      bool     `json:"partial,omitempty"`
	FailedShards []string `json:"failedShards,omitempty"`
}

// parseLimitParam reads ?limit= (0 = unlimited), answering the 400
// itself on a malformed value.
func parseLimitParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	v := r.URL.Query().Get("limit")
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, "invalid limit %q", v)
		return 0, false
	}
	return n, true
}

type skippedInfo struct {
	ID     string `json:"id"`
	Reason string `json:"reason"`
}

func (s *Server) handleSubstitutes(w http.ResponseWriter, r *http.Request) {
	e, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if s.Comparer == nil {
		writeError(w, http.StatusNotImplemented, "substitute search is not enabled on this server")
		return
	}
	if s.clusterMode() {
		s.scatterSubstitutes(w, r, e)
		return
	}
	hash, ok := s.Store.Hash(e.Module.ID)
	if !ok {
		writeError(w, http.StatusNotFound, "no stored examples for module %q (POST .../generate first)", e.Module.ID)
		return
	}
	limit, ok := parseLimitParam(w, r)
	if !ok {
		return
	}
	state := s.substitutesStateKey(e.Module.ID, hash)
	etag := `"` + state + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	subs, err := s.warmedSubstitutes(r, e.Module, hash, state)
	if err != nil {
		writeError(w, http.StatusBadGateway, "substitute search for %s: %v", e.Module.ID, err)
		return
	}
	ranked := subs.Ranked
	if limit > 0 && len(ranked) > limit {
		ranked = ranked[:limit]
	}
	resp := substitutesResponse{Target: e.Module.ID, Hash: hash}
	for _, c := range ranked {
		resp.Substitutes = append(resp.Substitutes, substituteInfo{
			ID:       c.Module.ID,
			Verdict:  c.Result.Verdict.String(),
			Score:    c.Result.Score(),
			Compared: c.Result.Compared,
			Agreeing: c.Result.Agreeing,
		})
	}
	for _, sk := range subs.Skipped {
		resp.Skipped = append(resp.Skipped, skippedInfo{ID: sk.ModuleID, Reason: sk.Reason})
	}
	writeJSON(w, http.StatusOK, resp)
}

type statsResponse struct {
	Store store.Stats `json:"store"`
	// GeneratorRuns counts on-demand generation runs performed by this
	// server's source (singleflight-deduplicated requests count once);
	// DedupHits counts requests that were collapsed onto another
	// caller's in-flight run.
	GeneratorRuns uint64 `json:"generatorRuns"`
	DedupHits     uint64 `json:"dedupHits"`
	Modules       int    `json:"modules"`
	Available     int    `json:"available"`
	Annotated     int    `json:"annotated"`
	// Telemetry is the full metrics-registry snapshot, present when the
	// server was wired with one — the JSON twin of GET /metrics.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
	// Cluster describes this node's place in a sharded serving tier:
	// per-shard health on a shard node, replication lag on a follower.
	Cluster *clusterStats `json:"cluster,omitempty"`
	// Search is the search-index block — document, term and posting
	// counts plus the generation the pagination cursors bind to.
	Search *search.Stats `json:"search,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Store:     s.Store.Stats(),
		Modules:   s.Registry.Len(),
		Available: len(s.Registry.Available()),
		Annotated: s.Store.Len(),
	}
	if s.Source != nil {
		resp.GeneratorRuns = s.Source.Runs()
		resp.DedupHits = s.Source.SharedHits()
	}
	if s.Telemetry != nil {
		snap := s.Telemetry.Snapshot()
		resp.Telemetry = &snap
	}
	resp.Cluster = s.clusterStatsBlock()
	if s.SearchIndex != nil {
		st := s.SearchIndex.Stats()
		resp.Search = &st
	}
	writeJSON(w, http.StatusOK, resp)
}
