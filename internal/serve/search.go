package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"

	"dexa/internal/cluster"
	"dexa/internal/search"
	"dexa/internal/telemetry"
)

// GET /search — behavior-aware repository search over the live catalog:
//
//	?q=       the query: free keywords, concept:<Concept> atoms (expanded
//	          through the ontology's subsumption hierarchy) and
//	          behaves:<moduleID> atoms (modules whose stored example set
//	          fingerprints to the same behavior class as the anchor)
//	?limit=   page size (default 20)
//	?cursor=  opaque resume cursor from a previous page's nextCursor
//
// Responses are ranked deterministically (score desc, module ID asc) and
// ETag'd on the index generation plus the query, so an unchanged catalog
// revalidates with 304. A catalog mutation between pages answers 410
// with {"restart": true} — the cursor is bound to the index generation
// and silently resuming over a shifted ranking would skip or duplicate
// hits. In cluster mode the query scatter-gathers across the ring (see
// scatterSearch); otherwise it runs on the local index.

// defaultSearchLimit pages /search when no ?limit= is given.
const defaultSearchLimit = 20

type searchResponse struct {
	Query      string       `json:"query"`
	Hits       []search.Hit `json:"hits"`
	Count      int          `json:"count"`
	Total      int          `json:"total"`
	NextCursor string       `json:"nextCursor,omitempty"`
	Generation uint64       `json:"generation"`
	// Cluster mode only: failed shards degrade the ranking to a partial
	// one (never ETag'd) instead of failing the query.
	Partial      bool     `json:"partial,omitempty"`
	FailedShards []string `json:"failedShards,omitempty"`
}

// searchETag derives the entity tag for one page: any index mutation,
// different query, page position or size yields a different tag.
func searchETag(state, queryKey, cursor string, limit int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%s|%s|%d", state, queryKey, cursor, limit)))
	return hex.EncodeToString(sum[:])[:32]
}

// writeCursorExpired answers the 410 that tells pagination clients to
// restart from the first page: the catalog changed underneath the walk.
func writeCursorExpired(w http.ResponseWriter) {
	writeJSON(w, http.StatusGone, map[string]any{
		"error":   "cursor expired: the catalog changed since this page walk began",
		"restart": true,
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.SearchIndex == nil {
		writeError(w, http.StatusNotImplemented, "search is not enabled on this server")
		return
	}
	raw := r.URL.Query().Get("q")
	q, err := search.ParseQuery(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit, ok := parseLimitParam(w, r)
	if !ok {
		return
	}
	if limit == 0 {
		limit = defaultSearchLimit
	}
	cursor := r.URL.Query().Get("cursor")

	_, span := telemetry.StartSpan(r.Context(), "search.query")
	span.Annotate("query", raw)
	defer span.End()

	if s.clusterMode() {
		s.scatterSearch(w, r, raw, q, limit, cursor)
		return
	}

	page, err := s.SearchIndex.Search(q, limit, cursor)
	if errors.Is(err, search.ErrCursorExpired) {
		writeCursorExpired(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	etag := `"` + searchETag(fmt.Sprintf("%d", page.Generation), q.Key(), cursor, limit) + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:      raw,
		Hits:       page.Hits,
		Count:      len(page.Hits),
		Total:      page.Total,
		NextCursor: page.NextCursor,
		Generation: page.Generation,
	})
}

// scatterSearch is the cluster-mode /search: behaves: anchors resolve on
// their owner shards, the query fans out with the anchors attached, each
// shard answers its owned slice against its full-catalog index, and the
// merged ranking — identical postings statistics on every shard — equals
// the single-node ranking. The merged list is paginated with the same
// cursor machinery the local path uses; the cursor binds to the
// cluster-wide generation (every shard's index generation), so any
// shard's index moving between pages expires the walk just as a local
// mutation would.
func (s *Server) scatterSearch(w http.ResponseWriter, r *http.Request, raw string, q search.Query, limit int, cursor string) {
	res, err := s.Cluster.Router.Search(r.Context(), raw, q.Behaves)
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster search: %v", err)
		return
	}
	h := fnv.New64a()
	h.Write([]byte(res.StateKey))
	gen := h.Sum64()
	page, err := search.PaginateHits(res.Hits, gen, q.Key(), limit, cursor)
	if errors.Is(err, search.ErrCursorExpired) {
		writeCursorExpired(w)
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A partial ranking must not 304 against a complete one, so only
	// complete results carry the validator.
	if !res.Partial {
		etag := `"` + searchETag(res.StateKey, q.Key(), cursor, limit) + `"`
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache")
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, http.StatusOK, searchResponse{
		Query:        raw,
		Hits:         page.Hits,
		Count:        len(page.Hits),
		Total:        page.Total,
		NextCursor:   page.NextCursor,
		Generation:   page.Generation,
		Partial:      res.Partial,
		FailedShards: res.FailedShards,
	})
}

// handleClusterSearch is the shard side of the scatter (POST
// /cluster/search), in the two modes of cluster.SearchRequest: resolve
// maps owned behaves: anchors to behavior-class fingerprints; query runs
// the search against this shard's full-catalog index — identical keyword
// and concept statistics on every shard — and returns the hits this
// shard owns.
func (s *Server) handleClusterSearch(w http.ResponseWriter, r *http.Request) {
	if s.SearchIndex == nil {
		writeError(w, http.StatusNotImplemented, "search is not enabled on this server")
		return
	}
	var req cluster.SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding search request: %v", err)
		return
	}
	if len(req.Resolve) > 0 {
		reply := cluster.SearchReply{
			Shard:        s.Cluster.Self,
			Generation:   s.SearchIndex.Generation(),
			Fingerprints: map[string]string{},
		}
		for _, id := range req.Resolve {
			if fp, ok := s.SearchIndex.BehaviorClass(id); ok && fp != "" {
				reply.Fingerprints[id] = fp
			}
		}
		writeJSON(w, http.StatusOK, reply)
		return
	}
	q, err := search.ParseQuery(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	q.AnchorFingerprints = req.Anchors
	hits, gen := s.SearchIndex.Match(q)
	owned := hits[:0]
	for _, h := range hits {
		if s.Cluster.Owns(h.ID) {
			owned = append(owned, h)
		}
	}
	writeJSON(w, http.StatusOK, cluster.SearchReply{
		Shard:      s.Cluster.Self,
		Generation: gen,
		Hits:       owned,
	})
}
