package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dexa/internal/cluster"
	"dexa/internal/core"
	"dexa/internal/instances"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/registry"
	"dexa/internal/store"
	"dexa/internal/typesys"
)

// clusterNode is one shard of an in-process cluster: a full Server on a
// real listener, so scatter-gather rounds travel over actual HTTP.
type clusterNode struct {
	name   string
	st     *store.Store
	source *store.Source
	node   *cluster.Node
	srv    *Server
	mux    *http.ServeMux
	ts     *httptest.Server
}

// clusterWorld is a multi-shard cluster plus a single-node oracle over
// the same module universe: the oracle holds every annotation in one
// store, the cluster splits them by ring placement, and the acceptance
// bar is byte equality between their query answers.
type clusterWorld struct {
	ont    *ontology.Ontology
	pool   *instances.Pool
	reg    *registry.Registry
	cfg    cluster.Config
	ring   *cluster.Ring
	nodes  map[string]*clusterNode
	names  []string
	oracle *clusterNode // no Cluster wired; the reference answers
}

// clusterUniverse builds a six-module universe with two equivalence
// classes and a singleton, so rankings and the matrix have real shape.
func clusterUniverse(t *testing.T) (*ontology.Ontology, *instances.Pool, *registry.Registry) {
	t.Helper()
	o := ontology.New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Seq", "", "Data")
	o.MustAddConcept("DNA", "", "Seq")
	o.MustAddConcept("Prot", "", "Seq")
	o.MustAddConcept("Acc", "", "Data")
	p := instances.NewPool(o)
	p.MustAdd("DNA", typesys.Str("ACGT"), "")
	p.MustAdd("Prot", typesys.Str("MKTW"), "")
	p.MustAdd("Acc", typesys.Str("P12345"), "")
	reg := registry.New()
	for _, m := range []*module.Module{
		seqModule("alpha", func(s string) string { return "X:" + s }),
		seqModule("beta", func(s string) string { return "X:" + s }),
		seqModule("delta", func(s string) string { return "Y:" + s }),
		seqModule("eps", func(s string) string { return "Z:" + s }),
		seqModule("gamma", func(s string) string { return "Y:" + s }),
		seqModule("zeta", func(s string) string { return "X:" + s }),
	} {
		reg.MustRegister(m)
	}
	return o, p, reg
}

// newServeNode assembles one Server over a fresh store. The handler is
// mounted under /api — the prefix the cluster router dials — with the
// WAL feed at /wal, mirroring the dexa-serve layout.
func newServeNode(t *testing.T, name string, o *ontology.Ontology, p *instances.Pool, reg *registry.Registry, workers int) *clusterNode {
	t.Helper()
	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	source := store.NewSource(st, core.NewGenerator(o, p))
	cmp := match.NewComparer(o, source)
	cmp.Workers = workers
	srv := &Server{Registry: reg, Store: st, Source: source, Comparer: cmp}
	mux := http.NewServeMux()
	return &clusterNode{name: name, st: st, source: source, srv: srv, mux: mux}
}

// start mounts the (possibly cluster-wired) handler and starts serving
// on ln.
func (n *clusterNode) start(t *testing.T, ln net.Listener) {
	t.Helper()
	n.mux.Handle("/api/", http.StripPrefix("/api", n.srv.Handler()))
	n.ts = &httptest.Server{Listener: ln, Config: &http.Server{Handler: n.mux}}
	n.ts.Start()
	t.Cleanup(n.ts.Close)
}

func newClusterWorld(t *testing.T, shardNames []string, workers int) *clusterWorld {
	t.Helper()
	o, p, reg := clusterUniverse(t)
	w := &clusterWorld{ont: o, pool: p, reg: reg, nodes: map[string]*clusterNode{}, names: shardNames}

	// Listeners first: the membership config needs every URL before any
	// node starts.
	listeners := make(map[string]net.Listener, len(shardNames))
	for _, name := range shardNames {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[name] = ln
		w.cfg.Shards = append(w.cfg.Shards, cluster.ShardConfig{
			Name: name, URL: "http://" + ln.Addr().String(),
		})
	}
	ring, err := w.cfg.Ring()
	if err != nil {
		t.Fatal(err)
	}
	w.ring = ring

	for _, name := range shardNames {
		cn := newServeNode(t, name, o, p, reg, workers)
		node, err := cluster.NewShardNode(w.cfg, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		cn.node = node
		cn.srv.Cluster = node
		cn.mux.Handle("/wal", cluster.NewFeed(cn.st, nil))
		cn.start(t, listeners[name])
		w.nodes[name] = cn
	}

	w.oracle = newServeNode(t, "oracle", o, p, reg, workers)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	w.oracle.start(t, ln)
	return w
}

func (w *clusterWorld) owner(id string) *clusterNode { return w.nodes[w.ring.Owner(id)] }

// seed annotates every module on its owner shard and on the oracle, and
// asserts both stored the same content (generation is deterministic, so
// a sharded catalog and a whole one must agree hash for hash).
func (w *clusterWorld) seed(t *testing.T) {
	t.Helper()
	for _, id := range w.reg.IDs() {
		e, _ := w.reg.Get(id)
		owner := w.owner(id)
		if _, _, err := owner.source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s on %s: %v", id, owner.name, err)
		}
		if _, _, err := w.oracle.source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s on oracle: %v", id, err)
		}
		oh, _ := owner.st.Hash(id)
		rh, _ := w.oracle.st.Hash(id)
		if oh != rh {
			t.Fatalf("module %s: shard hash %s, oracle hash %s — generation diverged", id, oh, rh)
		}
	}
}

// fetch returns one GET's status and body.
func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// matrixOf decodes a /matches body into its parts.
type matchesBody struct {
	State        string          `json:"state"`
	Matrix       json.RawMessage `json:"matrix"`
	Partial      bool            `json:"partial"`
	FailedShards []string        `json:"failedShards"`
}

// TestClusterMatchesEqualsOracle is the tentpole acceptance criterion:
// the scatter-gathered matrix equals the single-node build byte for
// byte, at every shard count and worker width.
func TestClusterMatchesEqualsOracle(t *testing.T) {
	for _, shards := range [][]string{{"s1", "s2"}, {"s1", "s2", "s3"}} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", len(shards), workers), func(t *testing.T) {
				w := newClusterWorld(t, shards, workers)
				w.seed(t)
				status, oracleRaw := fetch(t, w.oracle.ts.URL+"/api/matches")
				if status != http.StatusOK {
					t.Fatalf("oracle /matches status %d", status)
				}
				var oracle matchesBody
				if err := json.Unmarshal(oracleRaw, &oracle); err != nil {
					t.Fatal(err)
				}
				for _, name := range w.names {
					status, raw := fetch(t, w.nodes[name].ts.URL+"/api/matches")
					if status != http.StatusOK {
						t.Fatalf("shard %s /matches status %d: %s", name, status, raw)
					}
					var got matchesBody
					if err := json.Unmarshal(raw, &got); err != nil {
						t.Fatal(err)
					}
					if got.Partial || len(got.FailedShards) != 0 {
						t.Fatalf("healthy cluster answered partial from %s: %+v", name, got)
					}
					if string(got.Matrix) != string(oracle.Matrix) {
						t.Fatalf("shard %s matrix differs from the oracle\nshard:  %.200s\noracle: %.200s",
							name, got.Matrix, oracle.Matrix)
					}
				}
			})
		}
	}
}

// TestClusterMatchesETag: an unchanged cluster revalidates with 304 and
// the second build is served from the router memo (one state key).
func TestClusterMatchesETag(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2"}, 2)
	w.seed(t)
	first := w.nodes["s1"].ts.URL + "/api/matches"
	resp, err := http.Get(first)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("cluster /matches carries no ETag")
	}
	req, _ := http.NewRequest(http.MethodGet, first, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp2.StatusCode)
	}
}

// TestClusterSubstitutesEqualsOracle: the merged ranking equals the
// single-node search byte for byte, from every serving shard — including
// ones that do not own the target and must fetch its examples remotely.
func TestClusterSubstitutesEqualsOracle(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2"}, 4)
	w.seed(t)
	for _, target := range []string{"alpha", "gamma", "eps"} {
		path := "/api/modules/" + target + "/substitutes"
		status, oracleBody := fetch(t, w.oracle.ts.URL+path)
		if status != http.StatusOK {
			t.Fatalf("oracle %s status %d", path, status)
		}
		for _, name := range w.names {
			status, body := fetch(t, w.nodes[name].ts.URL+path)
			if status != http.StatusOK {
				t.Fatalf("shard %s %s status %d: %s", name, path, status, body)
			}
			if string(body) != string(oracleBody) {
				t.Fatalf("shard %s ranking for %s differs from the oracle\nshard:  %s\noracle: %s",
					name, target, body, oracleBody)
			}
		}
		// The limit parameter caps the merged ranking identically.
		statusL, oracleLimited := fetch(t, w.oracle.ts.URL+path+"?limit=1")
		_, limited := fetch(t, w.nodes[w.names[0]].ts.URL+path+"?limit=1")
		if statusL != http.StatusOK || string(limited) != string(oracleLimited) {
			t.Fatalf("limited ranking for %s differs:\nshard:  %s\noracle: %s", target, limited, oracleLimited)
		}
	}
}

// TestClusterRedirects: reads and generation for a module another shard
// owns answer 307 to the owner, and a redirect-following client lands on
// the same bytes the owner serves.
func TestClusterRedirects(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2"}, 2)
	w.seed(t)

	// Find a module s1 does not own.
	var foreign string
	for _, id := range w.reg.IDs() {
		if w.ring.Owner(id) != "s1" {
			foreign = id
			break
		}
	}
	if foreign == "" {
		t.Skip("ring placed every module on s1")
	}
	path := "/api/modules/" + foreign + "/examples"

	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Get(w.nodes["s1"].ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("non-owner examples status %d, want 307", resp.StatusCode)
	}
	wantLoc := w.cfg.ShardURL(w.ring.Owner(foreign)) + path
	if loc := resp.Header.Get("Location"); loc != wantLoc {
		t.Fatalf("Location %q, want %q", loc, wantLoc)
	}

	// A following client reads the owner's bytes through the redirect.
	_, direct := fetch(t, w.cfg.ShardURL(w.ring.Owner(foreign))+path)
	status, followed := fetch(t, w.nodes["s1"].ts.URL+path)
	if status != http.StatusOK || string(followed) != string(direct) {
		t.Fatalf("followed redirect: status %d, body differs from owner's", status)
	}

	// POST /generate redirects too (307 preserves the method) and the
	// annotation lands in the owner's store, never the local one.
	genResp, err := http.Post(w.nodes["s1"].ts.URL+"/api/modules/"+foreign+"/generate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, genResp.Body)
	genResp.Body.Close()
	if genResp.StatusCode != http.StatusOK {
		t.Fatalf("redirected generate status %d", genResp.StatusCode)
	}
	if _, ok := w.nodes["s1"].st.Hash(foreign); ok {
		t.Errorf("non-owner shard stored %s despite the redirect", foreign)
	}
	if _, ok := w.owner(foreign).st.Hash(foreign); !ok {
		t.Errorf("owner shard did not store %s", foreign)
	}
}

// TestClusterPartialDegradation: a dead shard withholds its slice — the
// answer degrades to a flagged partial result instead of failing.
func TestClusterPartialDegradation(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2", "s3"}, 2)
	w.seed(t)

	status, fullRaw := fetch(t, w.nodes["s1"].ts.URL+"/api/matches")
	if status != http.StatusOK {
		t.Fatalf("healthy /matches status %d", status)
	}
	var full struct {
		Matrix struct {
			Cells []json.RawMessage `json:"cells"`
		} `json:"matrix"`
	}
	if err := json.Unmarshal(fullRaw, &full); err != nil {
		t.Fatal(err)
	}

	w.nodes["s3"].ts.Close() // kill one shard

	status, raw := fetch(t, w.nodes["s1"].ts.URL+"/api/matches")
	if status != http.StatusOK {
		t.Fatalf("degraded /matches status %d: %s", status, raw)
	}
	var got matchesBody
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != "s3" {
		t.Fatalf("degraded answer not flagged: partial=%v failed=%v", got.Partial, got.FailedShards)
	}
	var partial struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(got.Matrix, &partial); err != nil {
		t.Fatal(err)
	}
	if len(partial.Cells) >= len(full.Matrix.Cells) {
		t.Fatalf("partial matrix has %d cells, full had %d — the dead shard's pairs should be absent",
			len(partial.Cells), len(full.Matrix.Cells))
	}

	// Substitute search degrades the same way when the dead shard owned
	// candidates. Pick a target s1 owns so its examples stay reachable.
	var local string
	for _, id := range w.reg.IDs() {
		if w.ring.Owner(id) == "s1" {
			local = id
			break
		}
	}
	if local == "" {
		t.Skip("ring placed nothing on s1")
	}
	status, raw = fetch(t, w.nodes["s1"].ts.URL+"/api/modules/"+local+"/substitutes")
	if status != http.StatusOK {
		t.Fatalf("degraded substitutes status %d: %s", status, raw)
	}
	var subs struct {
		Partial      bool     `json:"partial"`
		FailedShards []string `json:"failedShards"`
	}
	if err := json.Unmarshal(raw, &subs); err != nil {
		t.Fatal(err)
	}
	if !subs.Partial || len(subs.FailedShards) != 1 || subs.FailedShards[0] != "s3" {
		t.Fatalf("degraded substitutes not flagged: %+v", subs)
	}
}

// TestClusterFollowerServesReplicated: a follower tails a shard's WAL
// feed through the serving layer, mirrors its slice, serves it read-only
// and reports its replication position.
func TestClusterFollowerServesReplicated(t *testing.T) {
	w := newClusterWorld(t, []string{"s1"}, 2)
	leader := w.nodes["s1"]

	fn := newServeNode(t, "replica-1", w.ont, w.pool, w.reg, 2)
	fn.srv.Source = nil // followers never generate
	follower := &cluster.Follower{
		Leader: leader.ts.URL,
		Store:  fn.st,
		Wait:   50 * time.Millisecond,
	}
	fn.node = &cluster.Node{Config: w.cfg, Self: "replica-1", Role: cluster.RoleFollower, Follower: follower}
	fn.srv.Cluster = fn.node
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fn.start(t, ln)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go follower.Run(ctx)

	w.seed(t)
	deadline := time.Now().Add(5 * time.Second)
	for fn.st.Seq() != leader.st.Seq() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at seq %d, leader at %d", fn.st.Seq(), leader.st.Seq())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Replicated reads serve the leader's bytes.
	path := "/api/modules/alpha/examples"
	_, leaderBody := fetch(t, leader.ts.URL+path)
	status, followerBody := fetch(t, fn.ts.URL+path)
	if status != http.StatusOK || string(followerBody) != string(leaderBody) {
		t.Fatalf("follower examples: status %d, body differs from leader", status)
	}

	// The follower identifies itself and reports its position.
	var info cluster.Info
	if resp := getJSON(t, fn.ts.URL+"/api/cluster/info", &info); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /cluster/info status %d", resp.StatusCode)
	}
	if info.Role != cluster.RoleFollower || info.Shard != "replica-1" || info.Lag != 0 {
		t.Fatalf("follower info = %+v", info)
	}
	var stats struct {
		Cluster struct {
			Role        string `json:"role"`
			Replication *struct {
				Leader string `json:"leader"`
				Lag    uint64 `json:"lag"`
			} `json:"replication"`
		} `json:"cluster"`
	}
	if resp := getJSON(t, fn.ts.URL+"/api/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /stats status %d", resp.StatusCode)
	}
	if stats.Cluster.Role != cluster.RoleFollower || stats.Cluster.Replication == nil ||
		stats.Cluster.Replication.Leader != leader.ts.URL {
		t.Fatalf("follower stats cluster block = %+v", stats.Cluster)
	}

	// Writes are refused: the follower must not diverge from its leader.
	resp, err := http.Post(fn.ts.URL+"/api/modules/alpha/generate", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower generate status %d, want 403", resp.StatusCode)
	}

	// Local substitute search runs over the replicated slice.
	status, body := fetch(t, fn.ts.URL+"/api/modules/alpha/substitutes")
	if status != http.StatusOK || !strings.Contains(string(body), `"beta"`) {
		t.Fatalf("follower substitutes: status %d body %.200s", status, body)
	}
}

// TestClusterStatsShardBlock: a shard's /stats names its role, itself
// and every member's health verdict.
func TestClusterStatsShardBlock(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2"}, 2)
	var stats struct {
		Cluster struct {
			Role   string `json:"role"`
			Self   string `json:"self"`
			Shards []struct {
				Shard   string `json:"shard"`
				Healthy bool   `json:"healthy"`
			} `json:"shards"`
		} `json:"cluster"`
	}
	if resp := getJSON(t, w.nodes["s2"].ts.URL+"/api/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	c := stats.Cluster
	if c.Role != cluster.RoleShard || c.Self != "s2" || len(c.Shards) != 2 {
		t.Fatalf("stats cluster block = %+v", c)
	}
	for _, sh := range c.Shards {
		if !sh.Healthy {
			t.Errorf("shard %s reported unhealthy without any probe failing", sh.Shard)
		}
	}
}

// TestWatchDrainReleasesWaiters is the graceful-drain satellite: a
// parked /watch long-poll answers immediately once BeginDrain fires, and
// new waiters never park.
func TestWatchDrainReleasesWaiters(t *testing.T) {
	f := newLifecycleFixture(t)
	start := time.Now()
	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(f.lts.URL + "/watch?cursor=0&wait=20s")
		if err != nil {
			done <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park
	f.srv.BeginDrain()
	select {
	case code := <-done:
		if code != http.StatusNotModified {
			t.Fatalf("drained watch answered %d, want 304", code)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("drain did not release the parked /watch waiter")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("drained waiter held for %v", elapsed)
	}
	// New waiters answer immediately during the drain window.
	before := time.Now()
	resp, err := http.Get(f.lts.URL + "/watch?cursor=0&wait=20s")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified || time.Since(before) > 2*time.Second {
		t.Fatalf("post-drain watch: status %d after %v", resp.StatusCode, time.Since(before))
	}
}
