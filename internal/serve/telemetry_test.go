package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dexa/internal/core"
	"dexa/internal/instances"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/registry"
	"dexa/internal/resilient"
	"dexa/internal/store"
	"dexa/internal/telemetry"
	"dexa/internal/typesys"
)

// telemetryFixture is a fully instrumented server: durable store with
// aggressive compaction, metrics registry, tracer, resilient-wrapped
// module, ops endpoints — the deployment shape dexa-serve assembles.
type telemetryFixture struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	source *store.Source
	ts     *httptest.Server
}

func newTelemetryFixture(t *testing.T) *telemetryFixture {
	t.Helper()
	o := ontology.New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Seq", "", "Data")
	o.MustAddConcept("DNA", "", "Seq")
	o.MustAddConcept("Acc", "", "Data")
	p := instances.NewPool(o)
	p.MustAdd("DNA", typesys.Str("ACGT"), "")
	p.MustAdd("Acc", typesys.Str("P12345"), "")

	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(32)

	mods := registry.New()
	for _, id := range []string{"alpha", "beta", "slowpoke"} {
		m := seqModule(id, func(s string) string { return id + ":" + s })
		if id == "slowpoke" {
			// Slow enough that concurrent generate requests overlap and
			// collapse onto one singleflight run.
			inner := m.Executor()
			m.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
				time.Sleep(100 * time.Millisecond)
				return inner.Invoke(in)
			}))
		}
		mods.MustRegister(m)
	}
	// alpha goes through the full resilient stack, so breaker metrics are
	// exported for it.
	if e, ok := mods.Get("alpha"); ok {
		e.Module.Bind(resilient.Wrap("alpha", e.Module.Executor(), resilient.Options{Metrics: reg}))
	}

	st, err := store.Open(t.TempDir(), store.Options{CompactEvery: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	source := store.NewSource(st, core.NewGenerator(o, p))
	InstrumentOntology(reg, o)
	InstrumentSource(reg, source)

	srv := &Server{
		Registry:  mods,
		Store:     st,
		Source:    source,
		Telemetry: reg,
		Tracer:    tracer,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
	mux := http.NewServeMux()
	mux.Handle("/api/", http.StripPrefix("/api", srv.Handler()))
	mux.Handle("/", Ops(OpsOptions{Registry: reg, Tracer: tracer}))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &telemetryFixture{reg: reg, tracer: tracer, source: source, ts: ts}
}

func (f *telemetryFixture) post(t *testing.T, path string) {
	t.Helper()
	resp, err := http.Post(f.ts.URL+path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
}

// metricValue finds a sample line in Prometheus text exposition and
// returns its value. The name argument is the full series name including
// any label set, e.g. `dexa_breaker_state{module="alpha"}`.
func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(exposition))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("exposition has no sample %q:\n%s", name, exposition)
	return 0
}

// TestMetricsEndToEnd is the tentpole acceptance test: exercise the API
// through a real HTTP server, then scrape /metrics and /debug/traces and
// verify every instrumented subsystem shows up.
func TestMetricsEndToEnd(t *testing.T) {
	f := newTelemetryFixture(t)

	// Two generations → two WAL appends → one compaction (CompactEvery: 2).
	f.post(t, "/api/modules/alpha/generate")
	f.post(t, "/api/modules/beta/generate")
	getJSON(t, f.ts.URL+"/api/catalog", nil)
	getJSON(t, f.ts.URL+"/api/modules/alpha/examples", nil)

	// A herd of concurrent generates for the slow module: singleflight
	// collapses them onto one run, the rest count as dedup hits.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.post(t, "/api/modules/slowpoke/generate")
		}()
	}
	wg.Wait()
	if f.source.SharedHits() == 0 {
		t.Error("concurrent generates produced no singleflight dedup hits")
	}

	resp, err := http.Get(f.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	out := string(body)

	// HTTP layer: route-labelled counters and latency histograms.
	if got := metricValue(t, out, `dexa_http_requests_total{route="/modules/{id}/generate",method="POST",code="200"}`); got != 6 {
		t.Errorf("generate route count = %v, want 6", got)
	}
	if got := metricValue(t, out, `dexa_http_request_duration_seconds_count{route="/modules/{id}/generate"}`); got != 6 {
		t.Errorf("generate route histogram count = %v, want 6", got)
	}
	if !strings.Contains(out, `dexa_http_request_duration_seconds_bucket{route="/catalog",le="+Inf"}`) {
		t.Error("catalog latency histogram missing +Inf bucket")
	}

	// Store: WAL appends and compactions from the durable store.
	if got := metricValue(t, out, "dexa_store_wal_appends_total"); got < 2 {
		t.Errorf("wal appends = %v, want >= 2", got)
	}
	if got := metricValue(t, out, "dexa_store_compactions_total"); got < 1 {
		t.Errorf("compactions = %v, want >= 1", got)
	}
	if got := metricValue(t, out, "dexa_store_puts_total"); got != 3 {
		t.Errorf("store puts = %v, want 3", got)
	}

	// Resilience: alpha's breaker is closed and its attempts counted.
	if got := metricValue(t, out, `dexa_breaker_state{module="alpha"}`); got != 0 {
		t.Errorf("breaker state = %v, want 0 (closed)", got)
	}
	if got := metricValue(t, out, `dexa_resilient_attempts_total{module="alpha"}`); got < 1 {
		t.Errorf("resilient attempts = %v, want >= 1", got)
	}

	// Caches: ontology reasoning cache and the generation singleflight.
	if got := metricValue(t, out, "dexa_ontology_cache_hits_total"); got < 1 {
		t.Errorf("ontology cache hits = %v, want >= 1", got)
	}
	if got := metricValue(t, out, "dexa_ontology_cache_builds_total"); got < 1 {
		t.Errorf("ontology cache builds = %v, want >= 1", got)
	}
	if got := metricValue(t, out, "dexa_singleflight_dedup_hits_total"); got < 1 {
		t.Errorf("dedup hits = %v, want >= 1", got)
	}
	if got := metricValue(t, out, "dexa_generator_runs_total"); got != 3 {
		t.Errorf("generator runs = %v, want 3", got)
	}

	// Traces: the request spans carry the generation pipeline beneath them.
	var traces struct {
		Count  int `json:"count"`
		Traces []telemetry.SpanRecord
	}
	if resp := getJSON(t, f.ts.URL+"/debug/traces", &traces); resp.StatusCode != http.StatusOK {
		t.Fatalf("traces status %d", resp.StatusCode)
	}
	if traces.Count == 0 {
		t.Fatal("no traces recorded")
	}
	names := map[string]bool{}
	var walk func(spans []telemetry.SpanRecord)
	walk = func(spans []telemetry.SpanRecord) {
		for _, sp := range spans {
			names[sp.Name] = true
			walk(sp.Children)
		}
	}
	walk(traces.Traces)
	for _, want := range []string{
		"http POST /modules/{id}/generate",
		"store.generate",
		"core.generate",
		"resilient.invoke",
	} {
		if !names[want] {
			t.Errorf("trace tree missing span %q (saw %v)", want, names)
		}
	}
}

// TestMethodNotAllowed pins the wrong-method contract: 405, an Allow
// header naming the supported method, and a JSON body with the standard
// error shape — not the mux's plain-text default.
func TestMethodNotAllowed(t *testing.T) {
	f := newFixture(t, "")
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/catalog", "GET"},
		{http.MethodDelete, "/modules/alpha", "GET"},
		{http.MethodPut, "/modules/alpha/examples", "GET"},
		{http.MethodGet, "/modules/alpha/generate", "POST"},
		{http.MethodPost, "/stats", "GET"},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, f.ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type = %q, want application/json", c.method, c.path, ct)
		}
		if err != nil || body.Error == "" {
			t.Errorf("%s %s: error body missing (decode err %v)", c.method, c.path, err)
		}
	}
}

// TestNotFoundIsJSON pins the unknown-path contract.
func TestNotFoundIsJSON(t *testing.T) {
	f := newFixture(t, "")
	resp, err := http.Get(f.ts.URL + "/no/such/endpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Errorf("404 body not the JSON error shape: %v %+v", err, body)
	}
}

// TestRequestIDOnAPI: client-supplied IDs are echoed, absent ones are
// generated — on success and error paths alike.
func TestRequestIDOnAPI(t *testing.T) {
	f := newFixture(t, "")
	req, _ := http.NewRequest(http.MethodGet, f.ts.URL+"/catalog", nil)
	req.Header.Set(telemetry.RequestIDHeader, "my-req-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.RequestIDHeader); got != "my-req-1" {
		t.Errorf("echoed request ID = %q, want my-req-1", got)
	}

	resp2, err := http.Get(f.ts.URL + "/modules/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.Header.Get(telemetry.RequestIDHeader) == "" {
		t.Error("404 response carries no generated request ID")
	}
}

// TestStatsTelemetrySnapshot pins the shape of the embedded registry
// snapshot: families carry name/type/series, series carry labels and a
// value — the JSON twin of the exposition format.
func TestStatsTelemetrySnapshot(t *testing.T) {
	f := newTelemetryFixture(t)
	f.post(t, "/api/modules/alpha/generate")

	var stats struct {
		GeneratorRuns uint64 `json:"generatorRuns"`
		Telemetry     *struct {
			Families []struct {
				Name   string `json:"name"`
				Type   string `json:"type"`
				Series []struct {
					Labels []struct {
						Name  string `json:"name"`
						Value string `json:"value"`
					} `json:"labels"`
					Value float64 `json:"value"`
					Count uint64  `json:"count"`
				} `json:"series"`
			} `json:"families"`
		} `json:"telemetry"`
	}
	if resp := getJSON(t, f.ts.URL+"/api/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if stats.Telemetry == nil || len(stats.Telemetry.Families) == 0 {
		t.Fatal("stats response embeds no telemetry snapshot")
	}
	byName := map[string]int{}
	for i, fam := range stats.Telemetry.Families {
		byName[fam.Name] = i
	}
	idx, ok := byName["dexa_http_requests_total"]
	if !ok {
		t.Fatalf("snapshot missing dexa_http_requests_total (families %v)", byName)
	}
	fam := stats.Telemetry.Families[idx]
	if fam.Type != "counter" || len(fam.Series) == 0 {
		t.Fatalf("dexa_http_requests_total family malformed: %+v", fam)
	}
	wantLabels := map[string]bool{"route": false, "method": false, "code": false}
	for _, l := range fam.Series[0].Labels {
		if _, ok := wantLabels[l.Name]; ok {
			wantLabels[l.Name] = true
		}
	}
	for name, seen := range wantLabels {
		if !seen {
			t.Errorf("request counter series lacks label %q: %+v", name, fam.Series[0])
		}
	}
	if _, ok := byName["dexa_store_wal_appends_total"]; !ok {
		t.Error("snapshot missing store metrics")
	}
	if _, ok := byName["dexa_http_request_duration_seconds"]; !ok {
		t.Error("snapshot missing latency histogram family")
	}

	// The no-telemetry server omits the field entirely.
	plain := newFixture(t, "")
	var bare map[string]json.RawMessage
	getJSON(t, plain.ts.URL+"/stats", &bare)
	if _, present := bare["telemetry"]; present {
		t.Error("uninstrumented server leaks a telemetry field in /stats")
	}
}

// TestOpsPprofGate: the pprof suite only exists when asked for.
func TestOpsPprofGate(t *testing.T) {
	off := httptest.NewServer(Ops(OpsOptions{}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(Ops(OpsOptions{Pprof: true}))
	defer on.Close()
	resp2, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp2.StatusCode)
	}
}
