package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"dexa/internal/dataexample"
	"dexa/internal/match"
	"dexa/internal/module"
)

// matchesResponse wraps the matrix with the cache state it was computed
// under, so clients can correlate a body with its ETag.
type matchesResponse struct {
	State  string             `json:"state"`
	Matrix *match.MatchMatrix `json:"matrix"`
	// Cluster mode only: a scatter with failed shards degrades to a
	// partial matrix instead of failing. Absent on healthy answers, so
	// the healthy-cluster body matches a single node's shape.
	Partial      bool     `json:"partial,omitempty"`
	FailedShards []string `json:"failedShards,omitempty"`
}

// matrixCache memoizes the last all-pairs matrix build together with the
// catalog state it reflects and its encoded response bytes. The state
// key folds every registered module's stored-set content hash (and the
// signature index generation, when one is wired), so any annotation
// change — or an index Update/Remove after a signature change — produces
// a different key and forces a rebuild; an unchanged catalog serves the
// cached bytes verbatim (no re-serialisation per request) and lets
// If-None-Match answer 304 without recomputation. Rebuilds run through
// an IncrementalMatrix, so a changed catalog pays only for the rows and
// columns of the modules that actually changed, not a full sweep.
type matrixCache struct {
	mu     sync.Mutex
	state  string
	matrix *match.MatchMatrix
	body   []byte
	inc    *match.IncrementalMatrix
}

// subsEntry is one warmed substitute search: the full (unlimited)
// ranking plus the state key it was computed under. The limit query
// parameter is applied per request, so every limit shares one entry.
type subsEntry struct {
	state string
	hash  string
	subs  match.Substitutes
}

// subsCache memoizes substitute searches per target module.
type subsCache struct {
	mu      sync.Mutex
	entries map[string]subsEntry
}

// matrixStateKey fingerprints everything the matrix depends on: the
// mapping mode, the index generation (signature churn), and each
// registered module's stored-annotation content hash. Modules without a
// stored set contribute their absence, so annotating one later changes
// the key.
func (s *Server) matrixStateKey() string {
	h := sha256.New()
	io.WriteString(h, s.Comparer.Mode.String())
	h.Write([]byte{0})
	if s.Comparer.Index != nil {
		fmt.Fprintf(h, "g%d", s.Comparer.Index.Generation())
		h.Write([]byte{0})
	}
	for _, id := range s.Registry.IDs() {
		hash, _ := s.Store.Hash(id)
		io.WriteString(h, id)
		h.Write([]byte{0})
		io.WriteString(h, hash)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// substitutesStateKey fingerprints a substitute search for one target:
// the mode, the target's stored-set hash, and the availability of the
// candidate set (candidates are invoked live, so their availability —
// not their stored annotations — is what the result depends on).
//
// With an index wired (and kept in sync with availability via SyncIndex
// and the lifecycle manager), the generation counter subsumes the
// candidate set: every availability flip and signature change bumps it,
// so the key is O(1) per request. Without an index the key falls back to
// folding the sorted available-module IDs — correct, but O(catalog).
func (s *Server) substitutesStateKey(targetID, targetHash string) string {
	h := sha256.New()
	io.WriteString(h, s.Comparer.Mode.String())
	h.Write([]byte{0})
	io.WriteString(h, targetID)
	h.Write([]byte{0})
	io.WriteString(h, targetHash)
	h.Write([]byte{0})
	if s.Comparer.Index != nil {
		fmt.Fprintf(h, "g%d", s.Comparer.Index.Generation())
		h.Write([]byte{0})
	} else {
		avail := s.Registry.Available()
		ids := make([]string, len(avail))
		for i, m := range avail {
			ids[i] = m.ID
		}
		sort.Strings(ids)
		for _, id := range ids {
			io.WriteString(h, id)
			h.Write([]byte{0})
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// handleMatches serves the catalog-wide verdict matrix over the stored
// annotations. The ETag is the catalog state key: If-None-Match answers
// 304 before any work, a matching cached build answers without
// recomputation, and only a genuinely changed catalog pays for a sweep.
func (s *Server) handleMatches(w http.ResponseWriter, r *http.Request) {
	if s.Comparer == nil {
		writeError(w, http.StatusNotImplemented, "matching is not enabled on this server")
		return
	}
	if s.clusterMode() {
		s.scatterMatches(w, r)
		return
	}
	state := s.matrixStateKey()
	etag := `"` + state + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}

	s.matrix.mu.Lock()
	defer s.matrix.mu.Unlock()
	if s.matrix.matrix == nil || s.matrix.state != state {
		if s.matrix.inc == nil {
			s.matrix.inc = match.NewIncrementalMatrix(s.Comparer)
		}
		keyedSet := func(id string) (*dataexample.KeyedSet, bool) {
			set, _, ok := s.Store.GetKeyed(id)
			return set, ok
		}
		mm, err := s.matrix.inc.Matrix(r.Context(), s.Registry.Modules(), keyedSet)
		if err != nil {
			writeError(w, http.StatusBadGateway, "building match matrix: %v", err)
			return
		}
		body, err := encodeJSONBody(matchesResponse{State: state, Matrix: mm})
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding match matrix: %v", err)
			return
		}
		s.matrix.state = state
		s.matrix.matrix = mm
		s.matrix.body = body
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(s.matrix.body)
}

// encodeJSONBody renders v exactly as writeJSON does (two-space indent,
// trailing newline, HTML-escaped), so cached bytes are indistinguishable
// from a per-request encode.
func encodeJSONBody(v any) ([]byte, error) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// warmedSubstitutes returns the cached substitute search for the target
// when the catalog state still matches, running and caching the search
// otherwise. Concurrent requests serialise on the cache lock, so
// identical searches arriving together collapse onto one run (the
// second request hits the entry the first one just warmed).
func (s *Server) warmedSubstitutes(r *http.Request, target *module.Module, targetHash, state string) (match.Substitutes, error) {
	s.subs.mu.Lock()
	defer s.subs.mu.Unlock()
	if e, ok := s.subs.entries[target.ID]; ok && e.state == state {
		return e.subs, nil
	}
	subs, err := s.Comparer.FindSubstitutesStoredContext(r.Context(), s.Store, target, s.Registry.Available())
	if err != nil {
		return match.Substitutes{}, err
	}
	if s.subs.entries == nil {
		s.subs.entries = map[string]subsEntry{}
	}
	s.subs.entries[target.ID] = subsEntry{state: state, hash: targetHash, subs: subs}
	return subs, nil
}
