package serve

import (
	"dexa/internal/match"
	"dexa/internal/registry"
)

// SyncIndex wires registry availability changes into the catalog index:
// a module going unavailable (manual retirement, RetireProvider, or the
// health tracker's auto-retire) is removed from the index, and a module
// coming back is re-indexed — each flip bumps the index generation.
//
// That generation is what keys the serving layer's /matches and
// /substitutes caches, so wiring this is what makes availability changes
// invalidate them: without it, an auto-retired module would keep ranking
// in cached substitute responses until some other catalog change happened
// to bump the state key. Call it once at startup, after the index is
// built; it is also the seam the lifecycle manager's quarantine and
// re-admission flow through when the manager is not given the index
// directly.
func SyncIndex(reg *registry.Registry, ix *match.CatalogIndex) {
	reg.OnAvailabilityChange(func(id string, available bool) {
		if !available {
			ix.Remove(id)
			return
		}
		if e, ok := reg.Get(id); ok {
			ix.Update(e.Module)
		}
	})
}
