package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"dexa/internal/compose"
	"dexa/internal/dataexample"
	"dexa/internal/telemetry"
)

// GET /compose — constraint-guided workflow synthesis over the
// annotated catalog:
//
//	?in=      workflow-level input concept (required)
//	?out=     workflow-level output concept (required)
//	?use=     concept that must flow through the plan (repeatable)
//	?avoid=   concept no step parameter may touch (repeatable)
//	?like=    module ID whose stored examples bias the ranking
//	?depth=   maximum chain length in steps (default 4)
//	?limit=   maximum ranked plans returned (default 5)
//
// Each plan chains signature-compatible modules from the input concept
// to the output concept; slots whose candidates are task-identical by
// signature are split into behavior classes by comparing their stored
// data examples, the representative of each class anchors one plan
// variant, and every emitted plan is verified by enacting it on a seed
// example. Plans are ranked verified-first and are deterministic for a
// fixed catalog. In cluster mode, example sets for modules owned by
// other shards are fetched from their owners; fetch failures degrade
// the synthesis to a partial one over the reachable annotations.

type composePlan struct {
	Chain     string             `json:"chain"`
	Steps     []compose.PlanStep `json:"steps"`
	Verified  bool               `json:"verified"`
	Witness   map[string]string  `json:"witness,omitempty"`
	Rationale string             `json:"rationale,omitempty"`
	// Workflow is the enactable artifact in the workflow.Save wire
	// format — feed it to dexa-workflow run or POST it elsewhere.
	Workflow json.RawMessage `json:"workflow,omitempty"`
}

type composeResponse struct {
	In    string        `json:"in"`
	Out   string        `json:"out"`
	Plans []composePlan `json:"plans"`
	Count int           `json:"count"`
	// Cluster mode only: modules whose example sets could not be fetched
	// from their owner shard — their behavior classes degraded to
	// signature-only grouping.
	Partial       bool     `json:"partial,omitempty"`
	FailedModules []string `json:"failedModules,omitempty"`
}

// multiParam reads a repeatable query parameter, splitting comma lists.
func multiParam(r *http.Request, name string) []string {
	var out []string
	for _, v := range r.URL.Query()[name] {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

func (s *Server) handleCompose(w http.ResponseWriter, r *http.Request) {
	if s.Comparer == nil || s.Comparer.Ont == nil {
		writeError(w, http.StatusNotImplemented, "workflow synthesis is not enabled on this server")
		return
	}
	in := r.URL.Query().Get("in")
	out := r.URL.Query().Get("out")
	if in == "" || out == "" {
		writeError(w, http.StatusBadRequest, "compose requires both ?in= and ?out= concepts")
		return
	}
	depth := 0
	if v := r.URL.Query().Get("depth"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "invalid depth %q", v)
			return
		}
		depth = n
	}
	limit, ok := parseLimitParam(w, r)
	if !ok {
		return
	}

	_, span := telemetry.StartSpan(r.Context(), "compose.plan")
	span.Annotate("in", in)
	span.Annotate("out", out)
	defer span.End()

	examples, failed := s.exampleSource(r.Context())
	planner := &compose.Planner{
		Ont:      s.Comparer.Ont,
		Reg:      s.Registry,
		Examples: examples,
		MaxDepth: depth,
		MaxPlans: limit,
	}
	plans, err := planner.Plan(compose.Constraints{
		In: in, Out: out,
		MustUse:   multiParam(r, "use"),
		MustAvoid: multiParam(r, "avoid"),
		Like:      r.URL.Query().Get("like"),
		MaxDepth:  depth,
		MaxPlans:  limit,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := composeResponse{In: in, Out: out, Plans: []composePlan{}}
	for _, p := range plans {
		cp := composePlan{
			Chain:     p.Chain(),
			Steps:     p.Steps,
			Verified:  p.Verified,
			Witness:   p.Witness,
			Rationale: p.Rationale,
		}
		if p.Workflow != nil {
			var buf bytes.Buffer
			if err := p.Workflow.Save(&buf); err == nil {
				cp.Workflow = json.RawMessage(buf.Bytes())
			}
		}
		resp.Plans = append(resp.Plans, cp)
	}
	resp.Count = len(resp.Plans)
	if missed := failed(); len(missed) > 0 {
		resp.Partial = true
		resp.FailedModules = missed
	}
	writeJSON(w, http.StatusOK, resp)
}

// exampleSource builds the planner's example resolver: the local store,
// extended in cluster mode with owner-shard fetches for modules this
// node does not store. The second return value reports (after planning)
// which remote fetches failed — those modules planned without behavior
// information rather than failing the whole synthesis.
func (s *Server) exampleSource(ctx context.Context) (compose.ExampleFunc, func() []string) {
	var (
		mu     sync.Mutex
		memo   = map[string]*dataexample.Set{}
		failed = map[string]bool{}
	)
	fn := func(id string) (dataexample.Set, bool) {
		if set, _, ok := s.Store.Get(id); ok {
			return set, true
		}
		if !s.clusterMode() || s.Cluster.Owns(id) {
			return nil, false
		}
		mu.Lock()
		defer mu.Unlock()
		if set, ok := memo[id]; ok {
			if set == nil {
				return nil, false
			}
			return *set, true
		}
		ss, err := s.Cluster.Router.FetchExamples(ctx, id)
		if err != nil {
			memo[id] = nil
			if !strings.Contains(err.Error(), "404") {
				failed[id] = true
			}
			return nil, false
		}
		set := ss.Examples
		memo[id] = &set
		return set, true
	}
	report := func() []string {
		mu.Lock()
		defer mu.Unlock()
		out := make([]string, 0, len(failed))
		for id := range failed {
			out = append(out, id)
		}
		sort.Strings(out)
		return out
	}
	return fn, report
}
