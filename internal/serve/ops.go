package serve

import (
	"net/http"
	"net/http/pprof"

	"dexa/internal/core"
	"dexa/internal/ontology"
	"dexa/internal/store"
	"dexa/internal/telemetry"
)

// OpsOptions configures the operational endpoint handler.
type OpsOptions struct {
	// Registry backs GET /metrics (Prometheus text exposition). nil still
	// mounts the endpoint; it exposes an empty registry.
	Registry *telemetry.Registry
	// Tracer backs GET /debug/traces (recent root spans as JSON). nil
	// mounts an endpoint reporting zero traces.
	Tracer *telemetry.Tracer
	// Pprof additionally mounts net/http/pprof under /debug/pprof/.
	// Off by default: profiling endpoints expose internals and should be
	// an explicit operator decision (dexa-serve's -pprof flag).
	Pprof bool
}

// Ops returns the operational handler: GET /metrics, GET /debug/traces,
// and (opt-in) the /debug/pprof suite. Mount it on the server root, next
// to the API handler — these endpoints are for operators and scrapers,
// so they stay outside the API prefix and outside its request metrics
// (a scrape every few seconds would otherwise dominate the route
// histograms).
func Ops(opts OpsOptions) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", telemetry.MetricsHandler(opts.Registry))
	mux.Handle("GET /debug/traces", telemetry.TracesHandler(opts.Tracer))
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// InstrumentOntology exports the ontology's reasoning-cache counters as
// dexa_ontology_cache_{hits,builds}_total. The ontology keeps plain
// atomics and stays telemetry-free; the func collectors read them on
// scrape.
func InstrumentOntology(r *telemetry.Registry, ont *ontology.Ontology) {
	if r == nil || ont == nil {
		return
	}
	r.CounterFunc("dexa_ontology_cache_hits_total", "Reasoning calls served by the cached reachability index.",
		func() float64 { hits, _ := ont.CacheStats(); return float64(hits) })
	r.CounterFunc("dexa_ontology_cache_builds_total", "Reachability index rebuilds.",
		func() float64 { _, builds := ont.CacheStats(); return float64(builds) })
}

// InstrumentSource exports the store-backed source's generation counters
// as dexa_generator_runs_total and dexa_singleflight_dedup_hits_total.
func InstrumentSource(r *telemetry.Registry, src *store.Source) {
	if r == nil || src == nil {
		return
	}
	r.CounterFunc("dexa_generator_runs_total", "Underlying generator runs performed by the store-backed source.",
		func() float64 { return float64(src.Runs()) })
	r.CounterFunc("dexa_singleflight_dedup_hits_total", "Generate/Refresh calls deduplicated onto an in-flight run.",
		func() float64 { return float64(src.SharedHits()) })
}

// InstrumentExampleCache exports a CachedGenerator's memo counters as
// dexa_example_cache_{hits,misses}_total.
func InstrumentExampleCache(r *telemetry.Registry, cg *core.CachedGenerator) {
	if r == nil || cg == nil {
		return
	}
	r.CounterFunc("dexa_example_cache_hits_total", "Generate calls served from the in-process example memo.",
		func() float64 { hits, _ := cg.CacheStats(); return float64(hits) })
	r.CounterFunc("dexa_example_cache_misses_total", "Generate calls that ran the heuristic and filled the memo.",
		func() float64 { _, misses := cg.CacheStats(); return float64(misses) })
}
