package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dexa/internal/dataexample"
	"dexa/internal/lifecycle"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/resilient"
	"dexa/internal/simulation"
	"dexa/internal/store"
	"dexa/internal/workflow"
)

// TestLifecycleEndToEnd is the acceptance run for the live catalog
// lifecycle: a scripted decay schedule (the §6 decay model applied to
// live catalog modules) plays out under the fake clock while the manager
// probes. The scenario requires that
//
//   - every decayed module is detected within one probe cycle,
//   - the drifted module walks suspect → quarantined → retired and its
//     workflow-repair proposal byte-matches the offline workflow.Repair
//     oracle for the same catalog state,
//   - the dead module recovers through probation and is re-admitted,
//   - /watch serves the totally ordered event stream, and
//   - the whole scripted run is deterministic: two fresh runs produce
//     byte-identical event logs and proposal queues.
func TestLifecycleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full simulation universe twice")
	}
	events1, props1 := runLifecycleScenario(t)
	events2, props2 := runLifecycleScenario(t)
	if string(events1) != string(events2) {
		t.Errorf("scripted runs produced different event logs:\n%s\n---\n%s", events1, events2)
	}
	if string(props1) != string(props2) {
		t.Errorf("scripted runs produced different repair queues:\n%s\n---\n%s", props1, props2)
	}
}

func runLifecycleScenario(t *testing.T) (eventsJSON, proposalsJSON []byte) {
	t.Helper()
	const (
		drifter  = "getProteinFasta"
		deadOne  = "getNucleotideGenBank"
		interval = time.Minute
	)
	tracked := []string{drifter, drifter + "-mirror", deadOne, deadOne + "-mirror"}

	u := simulation.NewUniverse()
	clock := resilient.NewFakeClock()
	start := clock.Now()

	st, err := store.Open("", store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	source := store.NewSource(st, u.Gen)
	for _, id := range tracked {
		e, ok := u.Registry.Get(id)
		if !ok {
			t.Fatalf("universe has no module %s", id)
		}
		if _, _, err := source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s: %v", id, err)
		}
	}

	cmp := match.NewComparer(u.Ont, source)
	cmp.Index = match.NewCatalogIndex(u.Ont, u.Registry.Modules())
	SyncIndex(u.Registry, cmp.Index)

	stored := func(id string) (dataexample.Set, bool) {
		set, _, ok := st.Get(id)
		return set, ok
	}
	newRepairer := func() *workflow.Repairer {
		exact := match.NewComparer(u.Ont, source)
		relaxed := match.NewComparer(u.Ont, source)
		relaxed.Mode = match.ModeRelaxed
		return &workflow.Repairer{Reg: u.Registry, Exact: exact, Relaxed: relaxed, Examples: stored}
	}
	wfEntry, _ := u.Registry.Get(drifter)
	wf := simulation.ComposeWorkflow("wf-live-1", "live pipeline", []*module.Module{wfEntry.Module})

	log, err := lifecycle.OpenLog("")
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	queue, err := lifecycle.OpenQueue("")
	if err != nil {
		t.Fatal(err)
	}
	defer queue.Close()
	mgr, err := lifecycle.NewManager(lifecycle.Config{
		Interval: interval, Jitter: -1,
		QuarantineAfter: 2, RetireAfter: 2, Probation: 2,
		Policy: resilient.Policy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
	}, lifecycle.Deps{
		Registry: u.Registry,
		Examples: st,
		Index:    cmp.Index,
		Log:      log,
		Queue:    queue,
		Planner: &lifecycle.Planner{
			Comparer: cmp, Store: st, Registry: u.Registry,
			Repairer: newRepairer(), Workflows: []*workflow.Workflow{wf},
		},
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Track(tracked...)

	// The script: ninety seconds in, one provider silently changes its
	// output format and another goes dark; the dark one comes back ten
	// minutes in.
	decayAt := start.Add(90 * time.Second)
	recoverAt := start.Add(10 * time.Minute)
	sched, err := simulation.NewDecaySchedule(u, start, []simulation.DecayEvent{
		{After: 90 * time.Second, ModuleID: drifter, Mode: simulation.DecayDrift},
		{After: 90 * time.Second, ModuleID: deadOne, Mode: simulation.DecayDeath},
		{After: 10 * time.Minute, ModuleID: deadOne, Mode: simulation.DecayRecover},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the probe loop the way Manager.Run would, advancing the fake
	// clock straight to each next-due instant.
	ctx := context.Background()
	deadline := start.Add(30 * time.Minute)
	for {
		next, ok := mgr.NextDue()
		if !ok || next.After(deadline) {
			break
		}
		if next.After(clock.Now()) {
			clock.Advance(next.Sub(clock.Now()))
		}
		sched.CatchUp(clock.Now())
		if _, err := mgr.RunDue(ctx); err != nil {
			t.Fatalf("RunDue: %v", err)
		}
	}
	if sched.Remaining() != 0 {
		t.Fatalf("%d scripted decay events never fired", sched.Remaining())
	}

	// Final states: the drifter is retired, the dead-then-recovered
	// module is healthy and available again, the mirrors never moved.
	mustStateE2E(t, mgr, drifter, lifecycle.StateRetired)
	mustStateE2E(t, mgr, deadOne, lifecycle.StateHealthy)
	mustStateE2E(t, mgr, drifter+"-mirror", lifecycle.StateHealthy)
	mustStateE2E(t, mgr, deadOne+"-mirror", lifecycle.StateHealthy)
	if e, _ := u.Registry.Get(drifter); e.Available {
		t.Error("retired drifter still available")
	}
	if e, _ := u.Registry.Get(deadOne); !e.Available {
		t.Error("re-admitted module not available")
	}

	events, _ := log.Since(0, 0)
	if len(events) == 0 {
		t.Fatal("no lifecycle events recorded")
	}
	// Detection latency: the first bad-probe transition of each decayed
	// module must land within one probe cycle of the decay instant.
	firstBad := map[string]time.Time{}
	for _, ev := range events {
		if ev.To == lifecycle.StateSuspect {
			if _, seen := firstBad[ev.Module]; !seen {
				firstBad[ev.Module] = ev.At
			}
		}
	}
	for _, id := range []string{drifter, deadOne} {
		at, ok := firstBad[id]
		if !ok {
			t.Fatalf("decay of %s never detected", id)
		}
		if at.After(decayAt.Add(interval)) {
			t.Errorf("decay of %s detected at %v, more than one cycle after %v", id, at, decayAt)
		}
	}
	// The recovered module was re-admitted after probation, after the
	// scripted recovery instant.
	var readmitted bool
	for _, ev := range events {
		if ev.Module == deadOne && ev.From == lifecycle.StateProbation && ev.To == lifecycle.StateHealthy {
			readmitted = true
			if ev.At.Before(recoverAt) {
				t.Errorf("re-admission at %v precedes the recovery at %v", ev.At, recoverAt)
			}
		}
	}
	if !readmitted {
		t.Error("recovered module never finished probation")
	}

	// Repair-as-a-service: retirement enqueued a module-level substitute
	// proposal naming the mirror, plus one workflow proposal whose
	// replacements byte-match the offline repair oracle.
	props := queue.List("")
	var modProp, wfProp *lifecycle.Proposal
	for i := range props {
		p := &props[i]
		if p.Module != drifter {
			t.Errorf("unexpected proposal for %s", p.Module)
			continue
		}
		if p.WorkflowID == "" {
			modProp = p
		} else if p.WorkflowID == wf.ID {
			wfProp = p
		}
	}
	if modProp == nil || len(modProp.Substitutes) == 0 || modProp.Substitutes[0].ModuleID != drifter+"-mirror" {
		t.Fatalf("module-level proposal = %+v", modProp)
	}
	if wfProp == nil {
		t.Fatal("no workflow repair proposal enqueued")
	}
	oracle, err := newRepairer().Repair(wf)
	if err != nil {
		t.Fatalf("offline repair oracle: %v", err)
	}
	if wfProp.Status != oracle.Status.String() {
		t.Errorf("proposal status %q, oracle %q", wfProp.Status, oracle.Status)
	}
	gotRepl, _ := json.Marshal(wfProp.Replacements)
	wantRepl, _ := json.Marshal(oracle.Replacements)
	if string(gotRepl) != string(wantRepl) {
		t.Errorf("proposal replacements diverge from the offline oracle:\n%s\n---\n%s", gotRepl, wantRepl)
	}
	if oracle.Status != workflow.FullyRepaired {
		t.Errorf("oracle status = %v, want FullyRepaired via the mirror", oracle.Status)
	}

	// The change feed serves the same events, totally ordered, over HTTP.
	srv := &Server{Registry: u.Registry, Store: st, Source: source, Comparer: cmp, Lifecycle: mgr}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var feed struct {
		Events []lifecycle.Event `json:"events"`
		Cursor uint64            `json:"cursor"`
	}
	resp := getJSON(t, ts.URL+"/watch?cursor=0", &feed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}
	if len(feed.Events) != len(events) || feed.Cursor != uint64(len(events)) {
		t.Fatalf("watch served %d events (cursor %d), log has %d", len(feed.Events), feed.Cursor, len(events))
	}
	for i, ev := range feed.Events {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("watch event %d has seq %d — stream not contiguous", i, ev.Seq)
		}
	}

	eventsJSON, err = json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	proposalsJSON, err = json.Marshal(props)
	if err != nil {
		t.Fatal(err)
	}
	return eventsJSON, proposalsJSON
}

func mustStateE2E(t *testing.T, mgr *lifecycle.Manager, id string, want lifecycle.State) {
	t.Helper()
	got, ok := mgr.StateOf(id)
	if !ok || got != want {
		t.Errorf("state of %s = %v (tracked=%v), want %v", id, got, ok, want)
	}
}
