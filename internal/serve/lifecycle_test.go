package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dexa/internal/dataexample"
	"dexa/internal/lifecycle"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/resilient"
	"dexa/internal/store"
	"dexa/internal/typesys"
)

// lifecycleFixture is the serve fixture with the live catalog lifecycle
// wired: stored annotations for all three modules, a catalog index kept
// in sync with availability, and a manager on a fake clock.
type lifecycleFixture struct {
	*fixture
	clock *resilient.FakeClock
	mgr   *lifecycle.Manager
	lts   *httptest.Server
}

func newLifecycleFixture(t *testing.T) *lifecycleFixture {
	t.Helper()
	f := newFixture(t, "")
	for _, id := range []string{"alpha", "beta", "gamma"} {
		e, _ := f.reg.Get(id)
		if _, _, err := f.source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s: %v", id, err)
		}
	}
	f.srv.Comparer.Index = match.NewCatalogIndex(f.ont, f.reg.Modules())
	SyncIndex(f.reg, f.srv.Comparer.Index)

	log, err := lifecycle.OpenLog("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	queue, err := lifecycle.OpenQueue("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { queue.Close() })
	clock := resilient.NewFakeClock()
	mgr, err := lifecycle.NewManager(lifecycle.Config{
		Interval: time.Minute, Jitter: -1,
		QuarantineAfter: 2, RetireAfter: 2, Probation: 2,
		Policy: resilient.Policy{MaxAttempts: 1},
	}, lifecycle.Deps{
		Registry: f.reg,
		Examples: f.st,
		Index:    f.srv.Comparer.Index,
		Log:      log,
		Queue:    queue,
		Planner:  &lifecycle.Planner{Comparer: f.srv.Comparer, Store: f.st, Registry: f.reg},
		Clock:    clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Track("alpha", "beta", "gamma")
	f.srv.Lifecycle = mgr
	// The route table is snapshotted by Handler(), so the lifecycle routes
	// need a handler built after Lifecycle was set.
	lts := httptest.NewServer(f.srv.Handler())
	t.Cleanup(lts.Close)
	return &lifecycleFixture{fixture: f, clock: clock, mgr: mgr, lts: lts}
}

// decay rebinds a module to a format-mutating executor.
func (f *lifecycleFixture) decay(t *testing.T, id string) {
	t.Helper()
	e, ok := f.reg.Get(id)
	if !ok {
		t.Fatalf("no module %s", id)
	}
	inner := e.Module.Executor()
	e.Module.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		outs, err := inner.Invoke(in)
		if err != nil {
			return nil, err
		}
		for name, v := range outs {
			if s, ok := v.(typesys.StringValue); ok {
				outs[name] = typesys.Str("LEGACY-FORMAT\n" + string(s))
			}
		}
		return outs, nil
	}))
}

// sweep advances the fake clock and runs every due probe.
func (f *lifecycleFixture) sweep(t *testing.T, d time.Duration) {
	t.Helper()
	f.clock.Advance(d)
	if _, err := f.mgr.RunDue(context.Background()); err != nil {
		t.Fatalf("RunDue: %v", err)
	}
}

func TestLifecycleStatusAndEventsEndpoints(t *testing.T) {
	f := newLifecycleFixture(t)
	f.sweep(t, time.Minute) // all healthy
	f.decay(t, "beta")
	f.sweep(t, time.Minute) // beta -> suspect
	f.sweep(t, time.Minute) // beta -> quarantined

	var lc struct {
		Modules []struct {
			Module string `json:"module"`
			State  string `json:"state"`
		} `json:"modules"`
		Counts  map[string]int `json:"counts"`
		Events  uint64         `json:"events"`
		Pending int            `json:"pending_repairs"`
	}
	if resp := getJSON(t, f.lts.URL+"/lifecycle", &lc); resp.StatusCode != http.StatusOK {
		t.Fatalf("lifecycle status %d", resp.StatusCode)
	}
	if len(lc.Modules) != 3 || lc.Modules[1].Module != "beta" || lc.Modules[1].State != "quarantined" {
		t.Fatalf("lifecycle modules = %+v", lc.Modules)
	}
	if lc.Counts["healthy"] != 2 || lc.Counts["quarantined"] != 1 || lc.Events != 2 {
		t.Fatalf("lifecycle summary = %+v", lc)
	}

	var ev struct {
		Events []struct {
			Seq    uint64 `json:"seq"`
			Module string `json:"module"`
			From   string `json:"from"`
			To     string `json:"to"`
			Probe  string `json:"probe"`
		} `json:"events"`
		Cursor uint64 `json:"cursor"`
		Total  uint64 `json:"total"`
	}
	resp := getJSON(t, f.lts.URL+"/events", &ev)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("ETag") != `"lc-2"` {
		t.Fatalf("events status %d, ETag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}
	if len(ev.Events) != 2 || ev.Cursor != 2 || ev.Total != 2 {
		t.Fatalf("events page = %+v", ev)
	}
	if ev.Events[0].Seq != 1 || ev.Events[0].To != "suspect" || ev.Events[1].To != "quarantined" ||
		ev.Events[0].Probe != "drifted" {
		t.Fatalf("event stream = %+v", ev.Events)
	}

	// Cursor paging: resume past the first event.
	resp = getJSON(t, f.lts.URL+"/events?cursor=1", &ev)
	if len(ev.Events) != 1 || ev.Events[0].Seq != 2 || ev.Cursor != 2 {
		t.Fatalf("events?cursor=1 = %+v", ev)
	}
	// Conditional revalidation: the ETag answers 304 with no body work.
	req, _ := http.NewRequest(http.MethodGet, f.lts.URL+"/events", nil)
	req.Header.Set("If-None-Match", `"lc-2"`)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("events revalidation status %d, want 304", r2.StatusCode)
	}
	if resp := getJSON(t, f.lts.URL+"/events?cursor=oops", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad cursor status %d", resp.StatusCode)
	}
}

func TestWatchLongPoll(t *testing.T) {
	f := newLifecycleFixture(t)
	f.decay(t, "beta")
	f.sweep(t, time.Minute) // one event: beta healthy -> suspect

	// A stale cursor answers immediately with everything after it.
	var ev struct {
		Events []json.RawMessage `json:"events"`
		Cursor uint64            `json:"cursor"`
	}
	resp := getJSON(t, f.lts.URL+"/watch?cursor=0", &ev)
	if resp.StatusCode != http.StatusOK || len(ev.Events) != 1 || ev.Cursor != 1 {
		t.Fatalf("watch at stale cursor = %d, %+v", resp.StatusCode, ev)
	}
	if resp.Header.Get("ETag") != `"lc-1"` {
		t.Fatalf("watch ETag %q", resp.Header.Get("ETag"))
	}

	// At the head with a tiny window: 304, same cursor in the ETag.
	resp = getJSON(t, f.lts.URL+"/watch?cursor=1&wait=1ms", nil)
	if resp.StatusCode != http.StatusNotModified || resp.Header.Get("ETag") != `"lc-1"` {
		t.Fatalf("watch timeout = %d, ETag %q", resp.StatusCode, resp.Header.Get("ETag"))
	}

	// A blocked watcher wakes as soon as the next transition lands. The
	// cursor rides the If-None-Match header, as a re-polling client would
	// send it.
	type watchResult struct {
		status int
		events int
	}
	got := make(chan watchResult, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet, f.lts.URL+"/watch", nil)
		req.Header.Set("If-None-Match", `"lc-1"`)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			got <- watchResult{status: -1}
			return
		}
		defer resp.Body.Close()
		var ev struct {
			Events []json.RawMessage `json:"events"`
		}
		json.NewDecoder(resp.Body).Decode(&ev)
		got <- watchResult{status: resp.StatusCode, events: len(ev.Events)}
	}()
	time.Sleep(50 * time.Millisecond) // let the watcher block
	f.sweep(t, time.Minute)           // beta -> quarantined
	select {
	case res := <-got:
		if res.status != http.StatusOK || res.events != 1 {
			t.Fatalf("woken watcher = %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke after the transition")
	}
}

func TestRepairsEndpointsAndDecision(t *testing.T) {
	f := newLifecycleFixture(t)
	f.decay(t, "beta")
	for i := 0; i < 4; i++ {
		f.sweep(t, time.Minute) // suspect, quarantined, streak, retired
	}
	if st, _ := f.mgr.StateOf("beta"); st != lifecycle.StateRetired {
		t.Fatalf("beta state = %v, want retired", st)
	}

	var rl struct {
		Proposals []lifecycle.Proposal `json:"proposals"`
		Count     int                  `json:"count"`
		Pending   int                  `json:"pending"`
	}
	if resp := getJSON(t, f.lts.URL+"/repairs", &rl); resp.StatusCode != http.StatusOK {
		t.Fatalf("repairs status %d", resp.StatusCode)
	}
	if rl.Count != 1 || rl.Pending != 1 || rl.Proposals[0].Module != "beta" {
		t.Fatalf("repairs = %+v", rl)
	}
	// Retiring beta must propose alpha, its behavioural equivalent.
	p := rl.Proposals[0]
	if len(p.Substitutes) == 0 || p.Substitutes[0].ModuleID != "alpha" || p.Substitutes[0].Verdict != "equivalent" {
		t.Fatalf("substitutes for retired beta = %+v", p)
	}
	if resp := getJSON(t, f.lts.URL+"/repairs?state=bogus", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus state filter status %d", resp.StatusCode)
	}

	post := func(id, action string) *http.Response {
		t.Helper()
		body := bytes.NewBufferString(fmt.Sprintf(`{"action":%q}`, action))
		resp, err := http.Post(f.lts.URL+"/repairs/"+id, "application/json", body)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	var approved lifecycle.Proposal
	resp := post(p.ID, "approve")
	if err := json.NewDecoder(resp.Body).Decode(&approved); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || approved.State != lifecycle.ProposalApproved || approved.ResolvedAt == nil {
		t.Fatalf("approve = %d, %+v", resp.StatusCode, approved)
	}
	// The resolution timestamp comes from the manager's (fake) clock.
	if !approved.ResolvedAt.Equal(f.mgr.Now()) {
		t.Fatalf("resolved at %v, manager clock %v", approved.ResolvedAt, f.mgr.Now())
	}
	if resp := post(p.ID, "approve"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double approve status %d, want 409", resp.StatusCode)
	}
	if resp := post("rq-999999", "reject"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown proposal status %d, want 404", resp.StatusCode)
	}
	if resp := post(p.ID, "shrug"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad action status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, f.lts.URL+"/repairs?state=approved", &rl); resp.StatusCode != http.StatusOK || rl.Count != 1 || rl.Pending != 0 {
		t.Fatalf("approved filter = %+v", rl)
	}
}

// TestSubstitutesCacheInvalidatedByAvailabilityFlip is the stale-cache
// regression test: an availability flip that never touches stored
// annotations (here the health tracker auto-retiring a provider) must
// change the /substitutes cache key, so clients re-polling with the old
// ETag see the shrunken candidate set instead of a cached 304.
func TestSubstitutesCacheInvalidatedByAvailabilityFlip(t *testing.T) {
	f := newLifecycleFixture(t)
	url := f.lts.URL + "/modules/alpha/substitutes"

	type subsBody struct {
		Substitutes []struct {
			ID string `json:"id"`
		} `json:"substitutes"`
	}
	subIDs := func(body *subsBody) []string {
		var ids []string
		for _, s := range body.Substitutes {
			ids = append(ids, s.ID)
		}
		return ids
	}
	var body subsBody
	resp := getJSON(t, url, &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("substitutes status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	ids := subIDs(&body)
	if len(ids) == 0 || ids[0] != "beta" {
		t.Fatalf("substitutes for alpha = %v, want beta ranked", ids)
	}

	// The provider health tracker retires beta: no store write, no
	// signature change — only availability flips.
	f.reg.SetFailureThreshold(1)
	if retired := f.reg.RecordFailure("beta", errors.New("connection refused")); !retired {
		t.Fatal("RecordFailure did not auto-retire beta")
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode == http.StatusNotModified {
		t.Fatal("stale ETag still validates after beta went unavailable")
	}
	body.Substitutes = nil
	if err := json.NewDecoder(resp2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	for _, id := range subIDs(&body) {
		if id == "beta" {
			t.Fatal("retired module still ranked as a substitute")
		}
	}
	if resp2.Header.Get("ETag") == etag {
		t.Fatal("availability flip did not change the substitutes ETag")
	}

	// Recovery flips it back, through the same watcher.
	f.reg.RecordSuccess("beta")
	body.Substitutes = nil
	getJSON(t, url, &body)
	if ids := subIDs(&body); len(ids) == 0 || ids[0] != "beta" {
		t.Fatalf("substitutes after recovery = %v, want beta back", ids)
	}
}

// TestServePreStopBeforeStoreClose pins the shutdown order: every
// preStop hook (probe workers, lifecycle journals) runs after the HTTP
// drain but strictly before the store is flushed and closed, so a hook
// can still persist through the store and nothing it writes is lost.
func TestServePreStopBeforeStoreClose(t *testing.T) {
	dir := t.TempDir()
	f := newFixture(t, dir)

	var order []string
	probeSet := dataexample.Set{{
		Inputs:  map[string]typesys.Value{"seq": typesys.Str("ACGT")},
		Outputs: map[string]typesys.Value{"acc": typesys.Str("X:ACGT")},
	}}
	hook1 := func() error {
		order = append(order, "stop-probes")
		// The store must still be writable: Serve closes it after us.
		if _, _, err := f.st.Put("prestop-probe", probeSet); err != nil {
			return fmt.Errorf("store already closed during preStop: %w", err)
		}
		return nil
	}
	hook2 := func() error {
		order = append(order, "flush-journals")
		return nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- Serve(ctx, &http.Server{Handler: f.srv.Handler()}, ln, time.Second, f.st, hook1, hook2)
	}()
	// Make sure the server is actually up before shutting it down.
	if resp := getJSON(t, "http://"+ln.Addr().String()+"/catalog", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog status %d", resp.StatusCode)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	if len(order) != 2 || order[0] != "stop-probes" || order[1] != "flush-journals" {
		t.Fatalf("preStop order = %v", order)
	}

	// What the hook wrote reached the WAL before the store closed.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, _, ok := st2.Get("prestop-probe"); !ok {
		t.Fatal("preStop write lost: store closed before the hook ran")
	}

	// A hook error surfaces from Serve without skipping the store close.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	served2 := make(chan error, 1)
	go func() {
		served2 <- Serve(ctx2, &http.Server{Handler: http.NewServeMux()}, ln2, time.Second, st2,
			func() error { return errors.New("journal flush failed") })
	}()
	cancel2()
	if err := <-served2; err == nil || err.Error() != "journal flush failed" {
		t.Fatalf("Serve swallowed the preStop error: %v", err)
	}
}
