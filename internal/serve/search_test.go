package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"dexa/internal/search"
)

// searchFixture is the single-node fixture with every module annotated
// and a synced search index mounted.
func searchFixture(t *testing.T) *fixture {
	t.Helper()
	f := newFixture(t, "")
	for _, id := range f.reg.IDs() {
		e, _ := f.reg.Get(id)
		if _, _, err := f.source.Generate(e.Module); err != nil {
			t.Fatalf("annotating %s: %v", id, err)
		}
	}
	sync := &search.Syncer{Registry: f.reg, Store: f.st, Index: search.New(f.ont)}
	sync.IndexAll()
	sync.HookAvailability()
	f.srv.SearchIndex = sync.Index
	return f
}

type searchBody struct {
	Query        string          `json:"query"`
	Hits         json.RawMessage `json:"hits"`
	Count        int             `json:"count"`
	Total        int             `json:"total"`
	NextCursor   string          `json:"nextCursor"`
	Generation   uint64          `json:"generation"`
	Partial      bool            `json:"partial"`
	FailedShards []string        `json:"failedShards"`
}

func (b searchBody) ids(t *testing.T) []string {
	t.Helper()
	var hits []search.Hit
	if err := json.Unmarshal(b.Hits, &hits); err != nil {
		t.Fatalf("decoding hits: %v", err)
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.ID
	}
	return out
}

func TestSearchEndpoint(t *testing.T) {
	f := searchFixture(t)

	// Keyword: every module is named "module <id>".
	var body searchBody
	if resp := getJSON(t, f.ts.URL+"/search?q=module", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if body.Total != 3 || body.Count != 3 {
		t.Fatalf("keyword search total=%d count=%d, want 3/3", body.Total, body.Count)
	}

	// Concept expansion: Seq reaches every Seq-annotated module.
	if resp := getJSON(t, f.ts.URL+"/search?q=concept:Seq", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("concept search status %d", resp.StatusCode)
	}
	if body.Total != 3 {
		t.Fatalf("concept:Seq total = %d, want 3", body.Total)
	}

	// Behavior class: alpha and beta share X:-prefixed outputs.
	if resp := getJSON(t, f.ts.URL+"/search?q=behaves:alpha", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("behaves search status %d", resp.StatusCode)
	}
	if ids := body.ids(t); !reflect.DeepEqual(ids, []string{"alpha", "beta"}) {
		t.Fatalf("behaves:alpha = %v, want [alpha beta]", ids)
	}

	// Malformed queries and limits answer 400.
	for _, bad := range []string{"/search?q=", "/search", "/search?q=module&limit=-1", "/search?q=module&cursor=garbage!!"} {
		if resp := getJSON(t, f.ts.URL+bad, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s status %d, want 400", bad, resp.StatusCode)
		}
	}

	// Without an index the endpoint is explicitly not enabled.
	bare := newFixture(t, "")
	if resp := getJSON(t, bare.ts.URL+"/search?q=module", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("indexless search status %d, want 501", resp.StatusCode)
	}

	// /stats carries the index block.
	var stats struct {
		Search *search.Stats `json:"search"`
	}
	if resp := getJSON(t, f.ts.URL+"/stats", &stats); resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	if stats.Search == nil || stats.Search.Docs != 3 || stats.Search.Terms == 0 || stats.Search.Generation == 0 {
		t.Fatalf("stats search block = %+v", stats.Search)
	}
}

// TestSearchETagRevalidation: an unchanged catalog answers 304; an index
// mutation changes the tag.
func TestSearchETagRevalidation(t *testing.T) {
	f := searchFixture(t)
	url := f.ts.URL + "/search?q=module"
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("search response carries no ETag")
	}
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", resp2.StatusCode)
	}

	// Mutate the index: the old validator must stop matching.
	f.srv.SearchIndex.Remove("gamma")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-mutation revalidation status %d, want 200", resp3.StatusCode)
	}
}

// TestSearchRetiredModuleDropsOut: the incremental-maintenance
// acceptance — one availability event and the module is out of the
// served results, no rebuild, no restart.
func TestSearchRetiredModuleDropsOut(t *testing.T) {
	f := searchFixture(t)
	var body searchBody
	getJSON(t, f.ts.URL+"/search?q=gamma", &body)
	if body.Total != 1 {
		t.Fatalf("pre-retire total = %d, want 1", body.Total)
	}
	if err := f.reg.SetAvailable("gamma", false); err != nil {
		t.Fatal(err)
	}
	getJSON(t, f.ts.URL+"/search?q=gamma", &body)
	if body.Total != 0 {
		t.Fatalf("retired module still served: %s", body.Hits)
	}
	if err := f.reg.SetAvailable("gamma", true); err != nil {
		t.Fatal(err)
	}
	getJSON(t, f.ts.URL+"/search?q=gamma", &body)
	if body.Total != 1 {
		t.Fatalf("re-admitted module missing, total = %d", body.Total)
	}
}

// TestSearchPaginationRestart: a cursor from before a catalog change
// answers 410 with the restart flag instead of a silently shifted page.
func TestSearchPaginationRestart(t *testing.T) {
	f := searchFixture(t)
	var page1 searchBody
	if resp := getJSON(t, f.ts.URL+"/search?q=module&limit=1", &page1); resp.StatusCode != http.StatusOK {
		t.Fatalf("page 1 status %d", resp.StatusCode)
	}
	if page1.NextCursor == "" || page1.Count != 1 {
		t.Fatalf("page 1 = count %d cursor %q", page1.Count, page1.NextCursor)
	}

	// Walking with the cursor works while the catalog holds still.
	var page2 searchBody
	if resp := getJSON(t, f.ts.URL+"/search?q=module&limit=1&cursor="+page1.NextCursor, &page2); resp.StatusCode != http.StatusOK {
		t.Fatalf("page 2 status %d", resp.StatusCode)
	}
	if ids1, ids2 := page1.ids(t), page2.ids(t); ids1[0] == ids2[0] {
		t.Fatalf("page 2 repeated page 1's hit %s", ids1[0])
	}

	// A mutation between pages expires the walk.
	f.srv.SearchIndex.Remove("beta")
	var gone struct {
		Error   string `json:"error"`
		Restart bool   `json:"restart"`
	}
	if resp := getJSON(t, f.ts.URL+"/search?q=module&limit=1&cursor="+page1.NextCursor, &gone); resp.StatusCode != http.StatusGone {
		t.Fatalf("stale cursor status %d, want 410", resp.StatusCode)
	}
	if !gone.Restart {
		t.Fatalf("410 body carries no restart flag: %+v", gone)
	}
}

// withClusterSearch wires a synced search index into every node of a
// cluster world (and its oracle). Every index covers the full registry —
// keyword and concept statistics must be identical on every shard — but
// behavior postings come from each node's own store slice.
func withClusterSearch(t *testing.T, w *clusterWorld) {
	t.Helper()
	for _, cn := range w.nodes {
		sync := &search.Syncer{Registry: w.reg, Store: cn.st, Index: search.New(w.ont)}
		sync.IndexAll()
		cn.srv.SearchIndex = sync.Index
	}
	sync := &search.Syncer{Registry: w.reg, Store: w.oracle.st, Index: search.New(w.ont)}
	sync.IndexAll()
	w.oracle.srv.SearchIndex = sync.Index
}

// TestClusterSearchEqualsOracle: the scattered ranking — including
// behaves: anchors resolved on their owner shard — equals the
// single-node ranking hit for hit, from every serving shard.
func TestClusterSearchEqualsOracle(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2"}, 2)
	w.seed(t)
	withClusterSearch(t, w)

	for _, q := range []string{"module", "concept:Seq", "behaves:alpha", "module+behaves:gamma"} {
		path := "/api/search?q=" + q
		status, oracleRaw := fetch(t, w.oracle.ts.URL+path)
		if status != http.StatusOK {
			t.Fatalf("oracle %s status %d: %s", path, status, oracleRaw)
		}
		var oracle searchBody
		mustUnmarshal(t, oracleRaw, &oracle)
		for _, name := range w.names {
			status, raw := fetch(t, w.nodes[name].ts.URL+path)
			if status != http.StatusOK {
				t.Fatalf("shard %s %s status %d: %s", name, path, status, raw)
			}
			var got searchBody
			mustUnmarshal(t, raw, &got)
			if got.Partial || len(got.FailedShards) != 0 {
				t.Fatalf("healthy cluster answered partial from %s: %s", name, raw)
			}
			if string(got.Hits) != string(oracle.Hits) || got.Total != oracle.Total {
				t.Fatalf("shard %s ranking for %q differs from the oracle\nshard:  %s\noracle: %s",
					name, q, got.Hits, oracle.Hits)
			}
		}
	}

	// Page walk: concatenating cluster pages reproduces the oracle's full
	// ranking.
	var oracleFull searchBody
	getJSON(t, w.oracle.ts.URL+"/api/search?q=module&limit=100", &oracleFull)
	var walked []search.Hit
	cursor := ""
	for {
		url := w.nodes["s1"].ts.URL + "/api/search?q=module&limit=2"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var page searchBody
		if resp := getJSON(t, url, &page); resp.StatusCode != http.StatusOK {
			t.Fatalf("cluster page status %d", resp.StatusCode)
		}
		var hits []search.Hit
		mustUnmarshal(t, page.Hits, &hits)
		walked = append(walked, hits...)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	var oracleHits []search.Hit
	mustUnmarshal(t, oracleFull.Hits, &oracleHits)
	if !reflect.DeepEqual(walked, oracleHits) {
		t.Fatalf("cluster page walk %d hits != oracle %d hits", len(walked), len(oracleHits))
	}
}

// TestClusterSearchPartialDegradation: a dead shard withholds its owned
// hits — the ranking degrades to a flagged partial answer, never ETag'd.
func TestClusterSearchPartialDegradation(t *testing.T) {
	w := newClusterWorld(t, []string{"s1", "s2", "s3"}, 2)
	w.seed(t)
	withClusterSearch(t, w)

	w.nodes["s3"].ts.Close()
	resp, err := http.Get(w.nodes["s1"].ts.URL + "/api/search?q=module")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded search status %d: %s", resp.StatusCode, raw)
	}
	var got searchBody
	mustUnmarshal(t, raw, &got)
	if !got.Partial || !reflect.DeepEqual(got.FailedShards, []string{"s3"}) {
		t.Fatalf("degraded search not flagged: partial=%v failed=%v", got.Partial, got.FailedShards)
	}
	if resp.Header.Get("ETag") != "" {
		t.Fatal("partial search answer carries an ETag")
	}
}

// TestComposeEndpoint: synthesis over the annotated fixture — one-step
// Seq→Acc plans, the alpha/beta behavior class collapsed to one slot
// with its peer listed, the disjoint gamma class as a separate plan.
func TestComposeEndpoint(t *testing.T) {
	f := searchFixture(t)
	var body struct {
		In    string `json:"in"`
		Out   string `json:"out"`
		Count int    `json:"count"`
		Plans []struct {
			Chain string `json:"chain"`
			Steps []struct {
				Module       string   `json:"module"`
				Equivalent   []string `json:"equivalent"`
				Alternatives int      `json:"alternatives"`
			} `json:"steps"`
			Verified bool              `json:"verified"`
			Witness  map[string]string `json:"witness"`
			Workflow json.RawMessage   `json:"workflow"`
		} `json:"plans"`
	}
	if resp := getJSON(t, f.ts.URL+"/compose?in=Seq&out=Acc", &body); resp.StatusCode != http.StatusOK {
		t.Fatalf("compose status %d", resp.StatusCode)
	}
	if body.Count < 2 {
		t.Fatalf("compose produced %d plans, want >= 2 (two behavior classes)", body.Count)
	}
	sawEquivalent := false
	for _, p := range body.Plans {
		if !p.Verified {
			t.Errorf("plan %s not verified", p.Chain)
		}
		if len(p.Workflow) == 0 {
			t.Errorf("plan %s carries no workflow artifact", p.Chain)
		}
		if len(p.Witness) == 0 {
			t.Errorf("verified plan %s carries no witness", p.Chain)
		}
		for _, s := range p.Steps {
			if s.Alternatives < 2 {
				t.Errorf("step %s saw %d behavior classes, want >= 2", s.Module, s.Alternatives)
			}
			if s.Module == "alpha" && len(s.Equivalent) == 1 && s.Equivalent[0] == "beta" {
				sawEquivalent = true
			}
		}
	}
	if !sawEquivalent {
		t.Errorf("no plan listed beta as alpha's behavior-class peer: %+v", body.Plans)
	}

	// Constraint and parameter validation.
	if resp := getJSON(t, f.ts.URL+"/compose?in=Seq", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing out= status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, f.ts.URL+"/compose?in=Seq&out=Nope", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown concept status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, f.ts.URL+"/compose?in=Seq&out=Acc&depth=zero", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad depth status %d, want 400", resp.StatusCode)
	}
}
