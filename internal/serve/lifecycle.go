package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dexa/internal/lifecycle"
)

// Lifecycle endpoints, mounted only when Server.Lifecycle is set:
//
//	GET  /lifecycle         — per-module state summary and counts
//	GET  /events            — transition-event history with cursor paging;
//	                          ETag = newest sequence number
//	GET  /watch             — long-poll change feed: blocks until the log
//	                          grows past the cursor (from ?cursor= or the
//	                          If-None-Match ETag), 304 on timeout
//	GET  /repairs           — the repair-proposal queue (?state= filters)
//	POST /repairs/{id}      — approve or reject one proposal

// maxWatchWait bounds how long one /watch request may hold a connection.
const maxWatchWait = 30 * time.Second

// defaultWatchWait is the long-poll window when ?wait= is absent.
const defaultWatchWait = 25 * time.Second

func (s *Server) lifecycleRoutes() []route {
	return []route{
		{http.MethodGet, "/lifecycle", s.handleLifecycle},
		{http.MethodGet, "/events", s.handleEvents},
		{http.MethodGet, "/watch", s.handleWatch},
		{http.MethodGet, "/repairs", s.handleRepairs},
		{http.MethodPost, "/repairs/{id}", s.handleRepairDecision},
	}
}

type lifecycleResponse struct {
	Modules []lifecycle.ModuleStatus `json:"modules"`
	Counts  map[string]int           `json:"counts"`
	Events  uint64                   `json:"events"`
	Pending int                      `json:"pending_repairs"`
}

func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	resp := lifecycleResponse{
		Modules: s.Lifecycle.Status(),
		Counts:  s.Lifecycle.Counts(),
		Events:  s.Lifecycle.Log().Seq(),
	}
	if q := s.Lifecycle.Queue(); q != nil {
		resp.Pending = q.Pending()
	}
	writeJSON(w, http.StatusOK, resp)
}

// eventsResponse carries a page of the transition log. Cursor is the
// resume point after consuming the page (pass it back as ?cursor= or let
// the ETag carry it).
type eventsResponse struct {
	Events []lifecycle.Event `json:"events"`
	Cursor uint64            `json:"cursor"`
	Total  uint64            `json:"total"`
}

// lifecycleETag renders a cursor as the change-feed entity tag.
func lifecycleETag(cursor uint64) string { return fmt.Sprintf(`"lc-%d"`, cursor) }

// cursorFromETag parses an If-None-Match header produced by
// lifecycleETag; ok is false for anything else.
func cursorFromETag(header string) (uint64, bool) {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), "W/"))
		part = strings.Trim(part, `"`)
		if !strings.HasPrefix(part, "lc-") {
			continue
		}
		n, err := strconv.ParseUint(part[3:], 10, 64)
		if err == nil {
			return n, true
		}
	}
	return 0, false
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	log := s.Lifecycle.Log()
	cursor, _, err := parseCursor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "invalid limit %q", v)
			return
		}
		limit = n
	}
	total := log.Seq()
	etag := lifecycleETag(total)
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	events, next := log.Since(cursor, limit)
	writeJSON(w, http.StatusOK, eventsResponse{Events: events, Cursor: next, Total: total})
}

// parseCursor reads the resume cursor from ?cursor=, falling back to an
// lc-style If-None-Match tag.
func parseCursor(r *http.Request) (uint64, bool, error) {
	if v := r.URL.Query().Get("cursor"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, false, fmt.Errorf("invalid cursor %q", v)
		}
		return n, true, nil
	}
	if n, ok := cursorFromETag(r.Header.Get("If-None-Match")); ok {
		return n, true, nil
	}
	return 0, false, nil
}

// handleWatch is the long-poll change feed: it answers immediately with
// every event past the cursor, or blocks until one arrives or the wait
// window closes (304, same ETag — the client re-polls with it, so the
// cursor survives the round trip).
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	log := s.Lifecycle.Log()
	cursor, _, err := parseCursor(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := defaultWatchWait
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid wait %q", v)
			return
		}
		wait = d
	}
	if wait > maxWatchWait {
		wait = maxWatchWait
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-log.Changed(cursor):
	case <-timer.C:
		w.Header().Set("ETag", lifecycleETag(cursor))
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusNotModified)
		return
	case <-s.drainCh():
		// Shutting down: answer like a quiet window so the client re-polls
		// (and lands on another instance) instead of holding the drain open.
		w.Header().Set("ETag", lifecycleETag(cursor))
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusNotModified)
		return
	case <-r.Context().Done():
		return
	}
	events, next := log.Since(cursor, 0)
	w.Header().Set("ETag", lifecycleETag(next))
	w.Header().Set("Cache-Control", "no-cache")
	writeJSON(w, http.StatusOK, eventsResponse{Events: events, Cursor: next, Total: log.Seq()})
}

type repairsResponse struct {
	Proposals []lifecycle.Proposal `json:"proposals"`
	Count     int                  `json:"count"`
	Pending   int                  `json:"pending"`
}

func (s *Server) repairQueue(w http.ResponseWriter) (*lifecycle.Queue, bool) {
	q := s.Lifecycle.Queue()
	if q == nil {
		writeError(w, http.StatusNotImplemented, "the repair queue is not enabled on this server")
		return nil, false
	}
	return q, true
}

func (s *Server) handleRepairs(w http.ResponseWriter, r *http.Request) {
	q, ok := s.repairQueue(w)
	if !ok {
		return
	}
	state := lifecycle.ProposalState(r.URL.Query().Get("state"))
	switch state {
	case "", lifecycle.ProposalPending, lifecycle.ProposalApproved, lifecycle.ProposalRejected:
	default:
		writeError(w, http.StatusBadRequest, "invalid state %q", state)
		return
	}
	props := q.List(state)
	writeJSON(w, http.StatusOK, repairsResponse{Proposals: props, Count: len(props), Pending: q.Pending()})
}

// repairDecision is the POST /repairs/{id} body.
type repairDecision struct {
	Action string `json:"action"` // "approve" | "reject"
}

func (s *Server) handleRepairDecision(w http.ResponseWriter, r *http.Request) {
	q, ok := s.repairQueue(w)
	if !ok {
		return
	}
	id := r.PathValue("id")
	var dec repairDecision
	if err := json.NewDecoder(r.Body).Decode(&dec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding decision: %v", err)
		return
	}
	var approve bool
	switch dec.Action {
	case "approve":
		approve = true
	case "reject":
	default:
		writeError(w, http.StatusBadRequest, "invalid action %q (want approve or reject)", dec.Action)
		return
	}
	p, err := q.Resolve(id, approve, s.Lifecycle.Now())
	if err != nil {
		status := http.StatusNotFound
		if strings.Contains(err.Error(), "already") {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}
