package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"dexa/internal/match"
)

func rawGet(t *testing.T, url string) ([]byte, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body, resp.Header.Get("ETag")
}

// TestMatchesCachedBody pins the cached-bytes serving path: an
// unchanged catalog serves byte-identical response bodies without
// re-encoding, the bytes are exactly the writeJSON rendering of the
// cached matrix, and an annotation change swaps in a new body whose
// matrix reflects the change.
func TestMatchesCachedBody(t *testing.T) {
	f := newFixture(t, "")
	for _, id := range []string{"alpha", "beta", "gamma"} {
		post(t, f.ts.URL+"/modules/"+id+"/generate")
	}
	url := f.ts.URL + "/matches"
	b1, e1 := rawGet(t, url)
	b2, e2 := rawGet(t, url)
	if !bytes.Equal(b1, b2) || e1 != e2 {
		t.Fatal("unchanged catalog served different bodies or ETags")
	}
	// The cached bytes are indistinguishable from a per-request encode:
	// decode, re-encode the way writeJSON does, compare bytes.
	type response struct {
		State  string             `json:"state"`
		Matrix *match.MatchMatrix `json:"matrix"`
	}
	var decoded response
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatal(err)
	}
	reenc, err := json.MarshalIndent(decoded, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	reenc = append(reenc, '\n')
	if !bytes.Equal(b1, reenc) {
		t.Error("cached body is not the canonical writeJSON rendering")
	}
	if decoded.Matrix.Stats.Equivalent != 2 {
		t.Fatalf("stats = %+v", decoded.Matrix.Stats)
	}

	// Deleting one module's annotation changes the catalog state: the
	// body must change and the matrix must lose alpha's cells.
	if err := f.st.Delete("alpha"); err != nil {
		t.Fatal(err)
	}
	b3, e3 := rawGet(t, url)
	if bytes.Equal(b3, b1) || e3 == e1 {
		t.Fatal("annotation change did not produce a new body and ETag")
	}
	decoded = response{}
	if err := json.Unmarshal(b3, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Matrix.Missing) != 1 || decoded.Matrix.Missing[0] != "alpha" {
		t.Fatalf("missing = %v", decoded.Matrix.Missing)
	}
	if decoded.Matrix.Stats.Equivalent != 0 {
		t.Fatalf("stats after delete = %+v", decoded.Matrix.Stats)
	}

	// Restoring the annotation restores an equivalent matrix through the
	// incremental rebuild — only alpha's row and column are recomputed,
	// and the served body must again equal a canonical encode.
	post(t, f.ts.URL+"/modules/alpha/generate")
	b4, e4 := rawGet(t, url)
	if bytes.Equal(b4, b3) || e4 == e3 {
		t.Fatal("restored annotation did not produce a new body")
	}
	decoded = response{}
	if err := json.Unmarshal(b4, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Matrix.Stats.Equivalent != 2 || len(decoded.Matrix.Missing) != 0 {
		t.Fatalf("restored matrix = %+v", decoded.Matrix.Stats)
	}
}
