package transport

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"dexa/internal/module"
	"dexa/internal/registry"
	"dexa/internal/telemetry"
	"dexa/internal/typesys"
)

// REST wire format:
//
//	POST {base}/modules/{id}/invoke
//	  request:  {"inputs": {"seq": <tagged value>}}
//	  response: {"outputs": {"acc": <tagged value>}}
//	  errors:   {"error": "...", "kind": "execution"|"validation"|"not-found"}
//	GET {base}/modules            -> ["id1", "id2", ...]
//	GET {base}/modules/{id}       -> signature JSON

type restInvokeRequest struct {
	Inputs map[string]json.RawMessage `json:"inputs"`
}

type restInvokeResponse struct {
	Outputs map[string]json.RawMessage `json:"outputs,omitempty"`
	Error   string                     `json:"error,omitempty"`
	Kind    string                     `json:"kind,omitempty"`
}

type restParam struct {
	Name     string `json:"name"`
	Struct   string `json:"struct"`
	Semantic string `json:"semantic,omitempty"`
	Optional bool   `json:"optional,omitempty"`
}

type restSignature struct {
	ID      string      `json:"id"`
	Name    string      `json:"name"`
	Inputs  []restParam `json:"inputs"`
	Outputs []restParam `json:"outputs"`
}

// RESTHandler serves the modules of a registry over the REST wire format.
// Unavailable modules answer 404, which models provider decay faithfully:
// a retired service endpoint simply disappears.
func RESTHandler(reg *registry.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/modules", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var ids []string
		for _, m := range reg.Available() {
			ids = append(ids, m.ID)
		}
		sort.Strings(ids)
		writeJSON(w, http.StatusOK, ids)
	})
	mux.HandleFunc("/modules/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/modules/")
		if id, ok := strings.CutSuffix(rest, "/invoke"); ok {
			if r.Method != http.MethodPost {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			handleRESTInvoke(reg, id, w, r)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		e, ok := reg.Get(rest)
		if !ok || !e.Available {
			writeJSON(w, http.StatusNotFound, restInvokeResponse{Error: "unknown module", Kind: "not-found"})
			return
		}
		writeJSON(w, http.StatusOK, signatureOf(e.Module))
	})
	return mux
}

func signatureOf(m *module.Module) restSignature {
	sig := restSignature{ID: m.ID, Name: m.Name}
	for _, p := range m.Inputs {
		sig.Inputs = append(sig.Inputs, restParam{Name: p.Name, Struct: p.Struct.String(), Semantic: p.Semantic, Optional: p.Optional})
	}
	for _, p := range m.Outputs {
		sig.Outputs = append(sig.Outputs, restParam{Name: p.Name, Struct: p.Struct.String(), Semantic: p.Semantic})
	}
	return sig
}

func handleRESTInvoke(reg *registry.Registry, id string, w http.ResponseWriter, r *http.Request) {
	e, ok := reg.Get(id)
	if !ok || !e.Available {
		writeJSON(w, http.StatusNotFound, restInvokeResponse{Error: "unknown module", Kind: "not-found"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, restInvokeResponse{Error: err.Error(), Kind: "validation"})
		return
	}
	var req restInvokeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, restInvokeResponse{Error: err.Error(), Kind: "validation"})
		return
	}
	inputs := make(map[string]typesys.Value, len(req.Inputs))
	for name, raw := range req.Inputs {
		v, err := typesys.UnmarshalValue(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, restInvokeResponse{Error: fmt.Sprintf("input %s: %v", name, err), Kind: "validation"})
			return
		}
		inputs[name] = v
	}
	outs, err := e.Module.Invoke(inputs)
	if err != nil {
		if module.IsExecutionError(err) {
			writeJSON(w, http.StatusUnprocessableEntity, restInvokeResponse{Error: err.Error(), Kind: "execution"})
		} else {
			writeJSON(w, http.StatusBadRequest, restInvokeResponse{Error: err.Error(), Kind: "validation"})
		}
		return
	}
	resp := restInvokeResponse{Outputs: map[string]json.RawMessage{}}
	for name, v := range outs {
		data, err := typesys.MarshalValue(v)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, restInvokeResponse{Error: err.Error(), Kind: "validation"})
			return
		}
		resp.Outputs[name] = data
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// RESTExecutor invokes a remote module over the REST wire format. It
// implements module.Executor and module.ContextExecutor, so a local
// module.Module proxy can be bound to it. Errors are classified: network
// faults, timeouts, throttling, 5xx answers, and garbled 200 bodies
// surface as *module.TransientError (retryable); wire-format error
// answers remain plain errors, which the module layer wraps as abnormal
// terminations.
type RESTExecutor struct {
	// BaseURL is the server root, e.g. "http://host:port".
	BaseURL string
	// ModuleID is the remote module identifier.
	ModuleID string
	// Client is the HTTP client to use; a shared client with
	// DefaultTimeout when nil. A client without a Timeout should only be
	// supplied together with per-call context deadlines.
	Client *http.Client
}

// Invoke performs the remote call with no caller-supplied deadline (the
// client timeout still applies).
func (e *RESTExecutor) Invoke(inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	return e.InvokeContext(context.Background(), inputs)
}

// InvokeContext performs the remote call, honouring ctx. When a
// telemetry tracer rides in ctx the round-trip is recorded as a
// "transport.rest" span; transient transport faults mark it failed.
func (e *RESTExecutor) InvokeContext(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	ctx, span := telemetry.StartSpan(ctx, "transport.rest")
	span.Annotate("module", e.ModuleID)
	outs, err := e.invokeContext(ctx, inputs)
	if module.IsTransient(err) {
		span.Fail(err)
	}
	span.End()
	return outs, err
}

func (e *RESTExecutor) invokeContext(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	req := restInvokeRequest{Inputs: map[string]json.RawMessage{}}
	for name, v := range inputs {
		data, err := typesys.MarshalValue(v)
		if err != nil {
			return nil, fmt.Errorf("transport: encoding input %s: %w", name, err)
		}
		req.Inputs[name] = data
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(e.BaseURL, "/") + "/modules/" + e.ModuleID + "/invoke"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := clientOrDefault(e.Client).Do(httpReq)
	if err != nil {
		return nil, classifyDialErr(e.ModuleID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody+1))
	if err != nil {
		return nil, module.Transient(e.ModuleID, module.FaultConnection, fmt.Errorf("reading response: %w", err))
	}
	if len(body) > maxResponseBody {
		return nil, module.Transient(e.ModuleID, module.FaultMalformed, fmt.Errorf("response exceeds %d-byte limit", maxResponseBody))
	}
	// Status first: a proxy's 502 HTML page or a load balancer's plain-text
	// 429 must classify by status, not die in the JSON decoder.
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return nil, classifyStatus(e.ModuleID, resp.StatusCode, body)
		}
		var out restInvokeResponse
		if looksLikeWireFormat(body, "{") && json.Unmarshal(body, &out) == nil && out.Error != "" {
			return nil, fmt.Errorf("transport: remote %s: %s", out.Kind, out.Error)
		}
		return nil, classifyStatus(e.ModuleID, resp.StatusCode, body)
	}
	var out restInvokeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		// A 200 that does not decode is wire corruption (truncated or
		// garbled in flight) — transient, retryable.
		return nil, module.Transient(e.ModuleID, module.FaultMalformed,
			fmt.Errorf("decoding response: %w (body %s)", err, bodySnippet(body)))
	}
	if out.Error != "" {
		return nil, fmt.Errorf("transport: remote %s: %s", out.Kind, out.Error)
	}
	values := make(map[string]typesys.Value, len(out.Outputs))
	for name, raw := range out.Outputs {
		v, err := typesys.UnmarshalValue(raw)
		if err != nil {
			return nil, module.Transient(e.ModuleID, module.FaultMalformed,
				fmt.Errorf("decoding output %s: %w", name, err))
		}
		values[name] = v
	}
	return values, nil
}

// ListRemoteModules fetches the IDs of the modules available at a REST
// endpoint. A nil client falls back to the shared client with
// DefaultTimeout — never a deadline-free http.DefaultClient.
func ListRemoteModules(baseURL string, client *http.Client) ([]string, error) {
	resp, err := clientOrDefault(client).Get(strings.TrimSuffix(baseURL, "/") + "/modules")
	if err != nil {
		return nil, classifyDialErr("", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody+1))
	if err != nil {
		return nil, module.Transient("", module.FaultConnection, fmt.Errorf("reading module list: %w", err))
	}
	if resp.StatusCode != http.StatusOK {
		return nil, classifyStatus("", resp.StatusCode, body)
	}
	var ids []string
	if err := json.Unmarshal(body, &ids); err != nil {
		return nil, module.Transient("", module.FaultMalformed, fmt.Errorf("decoding module list: %w", err))
	}
	return ids, nil
}
