package transport

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"

	"dexa/internal/module"
	"dexa/internal/registry"
	"dexa/internal/typesys"
)

// newServerFixture registers two modules — a well-behaved reverser and a
// picky one that rejects short inputs — and serves them over both forms.
func newServerFixture(t *testing.T) (*registry.Registry, *httptest.Server, *httptest.Server) {
	t.Helper()
	reg := registry.New()

	rev := &module.Module{
		ID: "reverse", Name: "Reverse", Form: module.FormREST,
		Inputs:  []module.Parameter{{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"}},
		Outputs: []module.Parameter{{Name: "out", Struct: typesys.StringType, Semantic: "Seq"}},
	}
	rev.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		s := []rune(string(in["seq"].(typesys.StringValue)))
		for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
			s[i], s[j] = s[j], s[i]
		}
		return map[string]typesys.Value{"out": typesys.Str(string(s))}, nil
	}))
	reg.MustRegister(rev)

	picky := &module.Module{
		ID: "picky", Name: "Picky", Form: module.FormSOAP,
		Inputs: []module.Parameter{
			{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"},
			{Name: "n", Struct: typesys.IntType, Semantic: "Limit", Optional: true, Default: typesys.Intv(3)},
		},
		Outputs: []module.Parameter{{Name: "hits", Struct: typesys.ListOf(typesys.StringType), Semantic: "Acc"}},
	}
	picky.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		s := string(in["seq"].(typesys.StringValue))
		if len(s) < 2 {
			return nil, module.ErrRejectedInput
		}
		n := int(in["n"].(typesys.IntValue))
		items := make([]typesys.Value, 0, n)
		for i := 0; i < n; i++ {
			items = append(items, typesys.Str(s))
		}
		return map[string]typesys.Value{"hits": typesys.MustList(typesys.StringType, items...)}, nil
	}))
	reg.MustRegister(picky)

	restSrv := httptest.NewServer(RESTHandler(reg))
	soapSrv := httptest.NewServer(SOAPHandler(reg))
	t.Cleanup(restSrv.Close)
	t.Cleanup(soapSrv.Close)
	return reg, restSrv, soapSrv
}

func TestRESTInvoke(t *testing.T) {
	_, restSrv, _ := newServerFixture(t)
	exec := &RESTExecutor{BaseURL: restSrv.URL, ModuleID: "reverse"}
	out, err := exec.Invoke(map[string]typesys.Value{"seq": typesys.Str("ACGT")})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !out["out"].Equal(typesys.Str("TGCA")) {
		t.Errorf("out = %v", out["out"])
	}
}

func TestRESTProxyModule(t *testing.T) {
	_, restSrv, _ := newServerFixture(t)
	// A client-side proxy module bound to the remote executor behaves like
	// the local one, including error classification.
	proxy := &module.Module{
		ID: "reverse-proxy", Name: "Reverse", Form: module.FormREST,
		Inputs:  []module.Parameter{{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"}},
		Outputs: []module.Parameter{{Name: "out", Struct: typesys.StringType, Semantic: "Seq"}},
	}
	proxy.Bind(&RESTExecutor{BaseURL: restSrv.URL, ModuleID: "reverse"})
	out, err := proxy.Invoke(map[string]typesys.Value{"seq": typesys.Str("AAC")})
	if err != nil {
		t.Fatal(err)
	}
	if !out["out"].Equal(typesys.Str("CAA")) {
		t.Errorf("proxy out = %v", out["out"])
	}
}

func TestRESTErrors(t *testing.T) {
	reg, restSrv, _ := newServerFixture(t)

	// Unknown module.
	exec := &RESTExecutor{BaseURL: restSrv.URL, ModuleID: "ghost"}
	if _, err := exec.Invoke(map[string]typesys.Value{}); err == nil || !strings.Contains(err.Error(), "not-found") {
		t.Errorf("unknown module: %v", err)
	}

	// Remote validation error (wrong input name).
	exec = &RESTExecutor{BaseURL: restSrv.URL, ModuleID: "reverse"}
	if _, err := exec.Invoke(map[string]typesys.Value{"bogus": typesys.Str("x")}); err == nil || !strings.Contains(err.Error(), "validation") {
		t.Errorf("validation: %v", err)
	}

	// Retired module answers 404.
	if err := reg.SetAvailable("reverse", false); err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Invoke(map[string]typesys.Value{"seq": typesys.Str("x")}); err == nil {
		t.Error("retired module should fail")
	}
	if err := reg.SetAvailable("reverse", true); err != nil {
		t.Fatal(err)
	}

	// Unreachable endpoint.
	dead := &RESTExecutor{BaseURL: "http://127.0.0.1:1", ModuleID: "reverse"}
	if _, err := dead.Invoke(map[string]typesys.Value{"seq": typesys.Str("x")}); err == nil {
		t.Error("unreachable endpoint should fail")
	}
}

func TestRESTListAndSignature(t *testing.T) {
	reg, restSrv, _ := newServerFixture(t)
	ids, err := ListRemoteModules(restSrv.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "picky" || ids[1] != "reverse" {
		t.Errorf("ids = %v", ids)
	}
	reg.SetAvailable("picky", false)
	ids, _ = ListRemoteModules(restSrv.URL, nil)
	if len(ids) != 1 {
		t.Errorf("after retire ids = %v", ids)
	}

	resp, err := http.Get(restSrv.URL + "/modules/reverse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("signature status = %d", resp.StatusCode)
	}

	resp2, err := http.Get(restSrv.URL + "/modules/ghost")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("ghost status = %d", resp2.StatusCode)
	}
}

func TestSOAPInvoke(t *testing.T) {
	_, _, soapSrv := newServerFixture(t)
	exec := &SOAPExecutor{Endpoint: soapSrv.URL, ModuleID: "picky"}
	out, err := exec.Invoke(map[string]typesys.Value{"seq": typesys.Str("ACGT"), "n": typesys.Intv(2)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	want := typesys.MustList(typesys.StringType, typesys.Str("ACGT"), typesys.Str("ACGT"))
	if !out["hits"].Equal(want) {
		t.Errorf("hits = %v", out["hits"])
	}
}

func TestSOAPExecutionFault(t *testing.T) {
	_, _, soapSrv := newServerFixture(t)
	exec := &SOAPExecutor{Endpoint: soapSrv.URL, ModuleID: "picky"}
	_, err := exec.Invoke(map[string]typesys.Value{"seq": typesys.Str("x")})
	if err == nil || !strings.Contains(err.Error(), "Execution") {
		t.Errorf("execution fault: %v", err)
	}

	// Wrapped in a proxy module, the remote execution fault becomes an
	// ExecutionError — exactly what the generator needs to drop the combo.
	proxy := &module.Module{
		ID: "p", Name: "p", Form: module.FormSOAP,
		Inputs: []module.Parameter{
			{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"},
			{Name: "n", Struct: typesys.IntType, Semantic: "Limit", Optional: true, Default: typesys.Intv(1)},
		},
		Outputs: []module.Parameter{{Name: "hits", Struct: typesys.ListOf(typesys.StringType), Semantic: "Acc"}},
	}
	proxy.Bind(exec)
	_, err = proxy.Invoke(map[string]typesys.Value{"seq": typesys.Str("x")})
	if !module.IsExecutionError(err) {
		t.Errorf("expected ExecutionError, got %v", err)
	}
}

func TestSOAPFaults(t *testing.T) {
	_, _, soapSrv := newServerFixture(t)
	exec := &SOAPExecutor{Endpoint: soapSrv.URL, ModuleID: "ghost"}
	if _, err := exec.Invoke(nil); err == nil || !strings.Contains(err.Error(), "NotFound") {
		t.Errorf("NotFound fault: %v", err)
	}

	// Malformed envelope.
	resp, err := http.Post(soapSrv.URL, "text/xml", strings.NewReader("<not-xml"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed status = %d", resp.StatusCode)
	}

	// GET not allowed.
	resp2, err := http.Get(soapSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp2.StatusCode)
	}
}

func TestBindRemote(t *testing.T) {
	_, restSrv, soapSrv := newServerFixture(t)
	restM := &module.Module{ID: "reverse", Name: "r", Form: module.FormREST,
		Inputs:  []module.Parameter{{Name: "seq", Struct: typesys.StringType}},
		Outputs: []module.Parameter{{Name: "out", Struct: typesys.StringType}}}
	soapM := &module.Module{ID: "picky", Name: "p", Form: module.FormSOAP,
		Inputs: []module.Parameter{
			{Name: "seq", Struct: typesys.StringType},
			{Name: "n", Struct: typesys.IntType, Optional: true, Default: typesys.Intv(1)}},
		Outputs: []module.Parameter{{Name: "hits", Struct: typesys.ListOf(typesys.StringType)}}}
	localM := &module.Module{ID: "l", Name: "l", Form: module.FormLocal,
		Inputs:  []module.Parameter{{Name: "x", Struct: typesys.StringType}},
		Outputs: []module.Parameter{{Name: "y", Struct: typesys.StringType}}}

	BindRemote(restM, restSrv.URL, soapSrv.URL, nil)
	BindRemote(soapM, restSrv.URL, soapSrv.URL, nil)
	BindRemote(localM, restSrv.URL, soapSrv.URL, nil)

	if !restM.Bound() || !soapM.Bound() {
		t.Fatal("remote modules should be bound")
	}
	if localM.Bound() {
		t.Error("local module should stay unbound")
	}
	out, err := restM.Invoke(map[string]typesys.Value{"seq": typesys.Str("AB")})
	if err != nil || !out["out"].Equal(typesys.Str("BA")) {
		t.Errorf("rest invoke = %v, %v", out, err)
	}
	out, err = soapM.Invoke(map[string]typesys.Value{"seq": typesys.Str("AB")})
	if err != nil {
		t.Fatalf("soap invoke: %v", err)
	}
	if out["hits"].(typesys.ListValue).Items[0].String() != "AB" {
		t.Errorf("soap hits = %v", out["hits"])
	}
}

func genXMLValue(r *rand.Rand, depth int) typesys.Value {
	max := 6
	if depth <= 0 {
		max = 4
	}
	switch r.Intn(max) {
	case 0:
		return typesys.Str("s" + string(rune('a'+r.Intn(26))) + "<&>\"'")
	case 1:
		return typesys.Intv(int64(r.Intn(4000) - 2000))
	case 2:
		return typesys.Floatv(float64(r.Intn(1000)) / 16)
	case 3:
		return typesys.Boolv(r.Intn(2) == 0)
	case 4:
		n := r.Intn(3)
		items := make([]typesys.Value, n)
		for i := range items {
			items[i] = typesys.Str(string(rune('a' + r.Intn(26))))
		}
		return typesys.MustList(typesys.StringType, items...)
	default:
		n := 1 + r.Intn(3)
		entries := make([]typesys.RecordEntry, n)
		for i := range entries {
			entries[i] = typesys.RecordEntry{Name: string(rune('a' + i)), Val: genXMLValue(r, depth-1)}
		}
		return typesys.MustRecord(entries...)
	}
}

func TestXMLValueRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	f := func() bool {
		v := genXMLValue(r, 2)
		x, err := valueToXML(v)
		if err != nil {
			return false
		}
		got, err := valueFromXML(x)
		if err != nil {
			return false
		}
		return got.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestXMLValueErrors(t *testing.T) {
	bad := []xmlValue{
		{Kind: "mystery"},
		{Kind: "int", Text: "NaN"},
		{Kind: "float", Text: "x"},
		{Kind: "bool", Text: "maybe"},
		{Kind: "list", Elem: "wat"},
		{Kind: "record", Fields: []xmlField{{Name: "a", Value: nil}}},
	}
	for _, x := range bad {
		if _, err := valueFromXML(x); err == nil {
			t.Errorf("valueFromXML(%+v): expected error", x)
		}
	}
	if _, err := valueToXML(nil); err == nil {
		t.Error("nil value should fail")
	}
}

func TestRESTMethodNotAllowed(t *testing.T) {
	_, restSrv, _ := newServerFixture(t)
	resp, err := http.Post(restSrv.URL+"/modules", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /modules status = %d", resp.StatusCode)
	}
	resp2, err := http.Get(restSrv.URL + "/modules/reverse/invoke")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET invoke status = %d", resp2.StatusCode)
	}
}
