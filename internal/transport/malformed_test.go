package transport

import (
	"bytes"
	"encoding/json"
	"encoding/xml"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

// postREST posts a raw body at the reverse module's invoke endpoint and
// decodes the wire-format answer.
func postREST(t *testing.T, srv *httptest.Server, body io.Reader) (int, restInvokeResponse) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/modules/reverse/invoke", "application/json", body)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var out restInvokeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func TestRESTHandlerTruncatedJSONIsValidation(t *testing.T) {
	_, restSrv, _ := newServerFixture(t)
	status, out := postREST(t, restSrv, strings.NewReader(`{"inputs":{"seq":{"kind":"str`))
	if status != http.StatusBadRequest || out.Kind != "validation" {
		t.Fatalf("status %d kind %q, want 400 validation", status, out.Kind)
	}
}

func TestRESTHandlerOversizedBodyIsValidation(t *testing.T) {
	_, restSrv, _ := newServerFixture(t)
	// A >16 MiB body must be cut off by the handler's MaxBytesReader and
	// answered as a validation error, not crash or hang.
	huge := bytes.Repeat([]byte("x"), (16<<20)+64)
	status, out := postREST(t, restSrv, bytes.NewReader(huge))
	if status != http.StatusBadRequest || out.Kind != "validation" {
		t.Fatalf("status %d kind %q, want 400 validation", status, out.Kind)
	}
}

func TestRESTHandlerUnknownValueTagIsValidation(t *testing.T) {
	_, restSrv, _ := newServerFixture(t)
	status, out := postREST(t, restSrv,
		strings.NewReader(`{"inputs":{"seq":{"kind":"frobnicate","str":"ACGT"}}}`))
	if status != http.StatusBadRequest || out.Kind != "validation" {
		t.Fatalf("status %d kind %q, want 400 validation", status, out.Kind)
	}
	if !strings.Contains(out.Error, "seq") {
		t.Fatalf("error %q does not name the offending input", out.Error)
	}
}

func TestSOAPHandlerMismatchedXMLIsValidationFault(t *testing.T) {
	_, _, soapSrv := newServerFixture(t)
	for _, body := range []string{
		"<Envelope><Body><InvokeRequest></Body></Envelope>", // mismatched tags
		"<Envelope><Body>",                                  // truncated
		"not xml at all",
	} {
		resp, err := http.Post(soapSrv.URL, "text/xml", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var env soapEnvelope
		if err := xml.Unmarshal(data, &env); err != nil {
			t.Fatalf("body %q: undecodable fault answer: %v", body, err)
		}
		if resp.StatusCode != http.StatusBadRequest || env.Body.Fault == nil || env.Body.Fault.Code != "Validation" {
			t.Fatalf("body %q: status %d fault %+v, want 400 Validation", body, resp.StatusCode, env.Body.Fault)
		}
	}
}

// faultyServer answers every request with a fixed status and body —
// playing the part of a proxy or load balancer that does not speak the
// wire format.
func faultyServer(t *testing.T, status int, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html")
		w.WriteHeader(status)
		_, _ = io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func seqInput() map[string]typesys.Value {
	return map[string]typesys.Value{"seq": typesys.Str("ACGT")}
}

func TestRESTExecutorChecksStatusBeforeDecoding(t *testing.T) {
	srv := faultyServer(t, http.StatusBadGateway, "<html><body><h1>502 Bad Gateway</h1></body></html>")
	ex := &RESTExecutor{BaseURL: srv.URL, ModuleID: "reverse"}
	_, err := ex.Invoke(seqInput())
	if err == nil {
		t.Fatal("expected an error")
	}
	// The old bug: the JSON decoder saw the HTML first and reported a
	// useless "decoding response" error. Now the status comes first and
	// the message carries status + snippet.
	if strings.Contains(err.Error(), "decoding response") {
		t.Fatalf("err %q still reports a decoding failure for a non-200 answer", err)
	}
	if !module.IsTransient(err) {
		t.Fatalf("502 not classified transient: %v", err)
	}
	if kind, _ := module.FaultKindOf(err); kind != module.FaultUnavailable {
		t.Fatalf("kind = %v, want unavailable", kind)
	}
	if !strings.Contains(err.Error(), "502") || !strings.Contains(err.Error(), "Bad Gateway") {
		t.Fatalf("err %q lacks status and body snippet", err)
	}
}

func TestRESTExecutorClassifies429AsThrottled(t *testing.T) {
	srv := faultyServer(t, http.StatusTooManyRequests, "rate limit exceeded")
	ex := &RESTExecutor{BaseURL: srv.URL, ModuleID: "reverse"}
	_, err := ex.Invoke(seqInput())
	if kind, ok := module.FaultKindOf(err); !ok || kind != module.FaultThrottled {
		t.Fatalf("err = %v, want throttled transient", err)
	}
}

func TestRESTExecutorPlain4xxIsHardErrorWithSnippet(t *testing.T) {
	srv := faultyServer(t, http.StatusForbidden, "access denied by gateway policy")
	ex := &RESTExecutor{BaseURL: srv.URL, ModuleID: "reverse"}
	_, err := ex.Invoke(seqInput())
	if err == nil || module.IsTransient(err) {
		t.Fatalf("err = %v, want non-transient hard error", err)
	}
	if !strings.Contains(err.Error(), "403") || !strings.Contains(err.Error(), "access denied") {
		t.Fatalf("err %q lacks status and snippet", err)
	}
}

func TestRESTExecutorGarbled200IsMalformedTransient(t *testing.T) {
	srv := faultyServer(t, http.StatusOK, `{"outputs":{"out":{"kind":"str`)
	ex := &RESTExecutor{BaseURL: srv.URL, ModuleID: "reverse"}
	_, err := ex.Invoke(seqInput())
	if kind, ok := module.FaultKindOf(err); !ok || kind != module.FaultMalformed {
		t.Fatalf("err = %v, want malformed transient", err)
	}
}

func TestRESTExecutorConnectionRefusedIsTransient(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens here any more
	ex := &RESTExecutor{BaseURL: url, ModuleID: "reverse"}
	_, err := ex.Invoke(seqInput())
	if kind, ok := module.FaultKindOf(err); !ok || kind != module.FaultConnection {
		t.Fatalf("err = %v, want connection transient", err)
	}
}

func TestRESTExecutorTimeoutIsTransient(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer func() { close(block); srv.Close() }()
	ex := &RESTExecutor{BaseURL: srv.URL, ModuleID: "reverse",
		Client: &http.Client{Timeout: 20 * time.Millisecond}}
	_, err := ex.Invoke(seqInput())
	if kind, ok := module.FaultKindOf(err); !ok || kind != module.FaultTimeout {
		t.Fatalf("err = %v, want timeout transient", err)
	}
}

func TestSOAPExecutorStatusAndGarbleClassification(t *testing.T) {
	srv := faultyServer(t, http.StatusServiceUnavailable, "<html>maintenance window</html>")
	ex := &SOAPExecutor{Endpoint: srv.URL, ModuleID: "picky"}
	_, err := ex.Invoke(seqInput())
	if kind, ok := module.FaultKindOf(err); !ok || kind != module.FaultUnavailable {
		t.Fatalf("503: err = %v, want unavailable transient", err)
	}

	srv2 := faultyServer(t, http.StatusOK, "<Envelope><Body><InvokeResp") // truncated envelope
	ex2 := &SOAPExecutor{Endpoint: srv2.URL, ModuleID: "picky"}
	_, err = ex2.Invoke(seqInput())
	if kind, ok := module.FaultKindOf(err); !ok || kind != module.FaultMalformed {
		t.Fatalf("garbled 200: err = %v, want malformed transient", err)
	}
}

func TestSOAPExecutorFaultStaysHardError(t *testing.T) {
	_, _, soapSrv := newServerFixture(t)
	ex := &SOAPExecutor{Endpoint: soapSrv.URL, ModuleID: "picky"}
	// "x" is shorter than picky's minimum: the module rejects it — an
	// execution fault, which must stay non-transient so the generation
	// heuristic counts it as an abnormal termination.
	_, err := ex.Invoke(map[string]typesys.Value{"seq": typesys.Str("x")})
	if err == nil || module.IsTransient(err) {
		t.Fatalf("err = %v, want non-transient remote execution fault", err)
	}
	if !strings.Contains(err.Error(), "Execution") {
		t.Fatalf("err %q does not carry the Execution fault code", err)
	}
}

func TestListRemoteModulesClassifiesFailures(t *testing.T) {
	srv := faultyServer(t, http.StatusBadGateway, "<html>502</html>")
	if _, err := ListRemoteModules(srv.URL, nil); !module.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	srv2 := faultyServer(t, http.StatusOK, "[truncated")
	if _, err := ListRemoteModules(srv2.URL, nil); !module.IsTransient(err) {
		t.Fatalf("err = %v, want malformed transient", err)
	}
}
