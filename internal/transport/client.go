package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"dexa/internal/module"
)

// DefaultTimeout bounds every outbound HTTP call made by the transport
// executors when the caller supplies no client of their own. A scientific
// provider that stops answering must surface as a classified timeout
// fault — never as a goroutine hung forever on http.DefaultClient.
const DefaultTimeout = 30 * time.Second

// DefaultClient is the shared outbound client with DefaultTimeout.
var DefaultClient = &http.Client{Timeout: DefaultTimeout}

// clientOrDefault never returns a deadline-free client.
func clientOrDefault(c *http.Client) *http.Client {
	if c == nil {
		return DefaultClient
	}
	return c
}

// maxResponseBody caps how much of a response the executors will read —
// mirrors the 16 MiB request limit the handlers enforce.
const maxResponseBody = 16 << 20

// snippetLen bounds how much of an unexpected body is quoted in errors.
const snippetLen = 160

// bodySnippet renders the head of a response body for error messages,
// keeping it single-line and printable.
func bodySnippet(body []byte) string {
	s := body
	if len(s) > snippetLen {
		s = s[:snippetLen]
	}
	out := make([]rune, 0, len(s))
	for _, r := range string(s) {
		if r == '\n' || r == '\r' || r == '\t' {
			out = append(out, ' ')
		} else if r < 32 || r == 0xFFFD {
			out = append(out, '.')
		} else {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return "(empty body)"
	}
	suffix := ""
	if len(body) > snippetLen {
		suffix = "…"
	}
	return fmt.Sprintf("%q%s", string(out), suffix)
}

// classifyDialErr converts an http.Client round-trip error into the
// transient-fault taxonomy: deadline and timeout failures become timeout
// faults, everything else (resets, refused connections, aborted
// responses) a connection fault. Both are retryable — they are the
// network speaking, not the module.
func classifyDialErr(moduleID string, err error) error {
	kind := module.FaultConnection
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
		(errors.As(err, &ne) && ne.Timeout()) {
		kind = module.FaultTimeout
	}
	return module.Transient(moduleID, kind, err)
}

// classifyStatus maps a non-200 HTTP status with an unparseable (non
// wire-format) body onto the taxonomy. Throttling and gateway-style
// statuses are transient; anything else is a hard error carrying the
// status and a body snippet, so a proxy's HTML 502 page never surfaces as
// a bare "decoding response" mystery.
func classifyStatus(moduleID string, status int, body []byte) error {
	switch {
	case status == http.StatusTooManyRequests:
		return &module.TransientError{ModuleID: moduleID, Kind: module.FaultThrottled, Status: status,
			Err: fmt.Errorf("throttled: %s", bodySnippet(body))}
	case status >= 500:
		return &module.TransientError{ModuleID: moduleID, Kind: module.FaultUnavailable, Status: status,
			Err: fmt.Errorf("unavailable: %s", bodySnippet(body))}
	default:
		return fmt.Errorf("transport: unexpected status %d: %s", status, bodySnippet(body))
	}
}

// looksLikeWireFormat reports whether a body plausibly carries the given
// wire format (JSON object / XML document) rather than a proxy error page.
func looksLikeWireFormat(body []byte, prefix string) bool {
	return strings.HasPrefix(strings.TrimLeft(string(body), " \t\r\n"), prefix)
}
