// Package transport supplies the three module forms of the paper's
// evaluation (§4.1): locally hosted programs, REST services, and SOAP web
// services. The server side exposes registered modules over HTTP in both
// web forms; the client side wraps a remote endpoint as a module.Executor,
// so the generation heuristic invokes remote and local modules through the
// identical black-box interface.
package transport

import (
	"encoding/xml"
	"fmt"
	"strconv"

	"dexa/internal/typesys"
)

// xmlValue is the SOAP-side XML encoding of a typesys.Value:
//
//	<Value kind="string">ACGT</Value>
//	<Value kind="list" elem="string"><Value kind="string">a</Value>...</Value>
//	<Value kind="record"><Field name="id"><Value kind="string">x</Value></Field>...</Value>
type xmlValue struct {
	XMLName xml.Name   `xml:"Value"`
	Kind    string     `xml:"kind,attr"`
	Elem    string     `xml:"elem,attr,omitempty"`
	Text    string     `xml:",chardata"`
	Items   []xmlValue `xml:"Value"`
	Fields  []xmlField `xml:"Field"`
}

type xmlField struct {
	XMLName xml.Name  `xml:"Field"`
	Name    string    `xml:"name,attr"`
	Value   *xmlValue `xml:"Value"`
}

func valueToXML(v typesys.Value) (xmlValue, error) {
	switch w := v.(type) {
	case typesys.StringValue:
		return xmlValue{Kind: "string", Text: string(w)}, nil
	case typesys.IntValue:
		return xmlValue{Kind: "int", Text: strconv.FormatInt(int64(w), 10)}, nil
	case typesys.FloatValue:
		return xmlValue{Kind: "float", Text: strconv.FormatFloat(float64(w), 'g', -1, 64)}, nil
	case typesys.BoolValue:
		return xmlValue{Kind: "bool", Text: strconv.FormatBool(bool(w))}, nil
	case typesys.NullValue:
		return xmlValue{Kind: "null"}, nil
	case typesys.ListValue:
		out := xmlValue{Kind: "list", Elem: w.Elem.String()}
		for _, it := range w.Items {
			x, err := valueToXML(it)
			if err != nil {
				return xmlValue{}, err
			}
			out.Items = append(out.Items, x)
		}
		return out, nil
	case typesys.RecordValue:
		out := xmlValue{Kind: "record"}
		for _, name := range w.Names() {
			fv, _ := w.Get(name)
			x, err := valueToXML(fv)
			if err != nil {
				return xmlValue{}, err
			}
			xc := x
			out.Fields = append(out.Fields, xmlField{Name: name, Value: &xc})
		}
		return out, nil
	default:
		return xmlValue{}, fmt.Errorf("transport: cannot encode value of type %T", v)
	}
}

func valueFromXML(x xmlValue) (typesys.Value, error) {
	switch x.Kind {
	case "string":
		return typesys.Str(x.Text), nil
	case "int":
		i, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("transport: bad int %q: %w", x.Text, err)
		}
		return typesys.Intv(i), nil
	case "float":
		f, err := strconv.ParseFloat(x.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("transport: bad float %q: %w", x.Text, err)
		}
		return typesys.Floatv(f), nil
	case "bool":
		b, err := strconv.ParseBool(x.Text)
		if err != nil {
			return nil, fmt.Errorf("transport: bad bool %q: %w", x.Text, err)
		}
		return typesys.Boolv(b), nil
	case "null":
		return typesys.Null, nil
	case "list":
		elem, err := typesys.Parse(x.Elem)
		if err != nil {
			return nil, fmt.Errorf("transport: bad list element type %q: %w", x.Elem, err)
		}
		items := make([]typesys.Value, 0, len(x.Items))
		for _, xi := range x.Items {
			v, err := valueFromXML(xi)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		return typesys.NewList(elem, items...)
	case "record":
		entries := make([]typesys.RecordEntry, 0, len(x.Fields))
		for _, f := range x.Fields {
			if f.Value == nil {
				return nil, fmt.Errorf("transport: record field %q missing value", f.Name)
			}
			v, err := valueFromXML(*f.Value)
			if err != nil {
				return nil, err
			}
			entries = append(entries, typesys.RecordEntry{Name: f.Name, Val: v})
		}
		return typesys.NewRecord(entries...)
	default:
		return nil, fmt.Errorf("transport: unknown XML value kind %q", x.Kind)
	}
}
