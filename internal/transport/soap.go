package transport

import (
	"bytes"
	"context"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"

	"dexa/internal/module"
	"dexa/internal/registry"
	"dexa/internal/telemetry"
	"dexa/internal/typesys"
)

// SOAP wire format: a single POST endpoint receiving an Envelope whose
// Body carries an InvokeRequest naming the module:
//
//	<Envelope><Body>
//	  <InvokeRequest module="getRecord">
//	    <Input name="acc"><Value kind="string">P12345</Value></Input>
//	  </InvokeRequest>
//	</Body></Envelope>
//
// Responses carry either an InvokeResponse with Output elements or a
// Fault with a Code ("Execution", "Validation", "NotFound") and Message.

type soapEnvelope struct {
	XMLName xml.Name `xml:"Envelope"`
	Body    soapBody `xml:"Body"`
}

type soapBody struct {
	Request  *soapInvokeRequest  `xml:"InvokeRequest,omitempty"`
	Response *soapInvokeResponse `xml:"InvokeResponse,omitempty"`
	Fault    *soapFault          `xml:"Fault,omitempty"`
}

type soapInvokeRequest struct {
	Module string     `xml:"module,attr"`
	Inputs []soapPort `xml:"Input"`
}

type soapInvokeResponse struct {
	Module  string     `xml:"module,attr"`
	Outputs []soapPort `xml:"Output"`
}

type soapPort struct {
	Name  string    `xml:"name,attr"`
	Value *xmlValue `xml:"Value"`
}

type soapFault struct {
	Code    string `xml:"Code"`
	Message string `xml:"Message"`
}

// SOAPHandler serves the modules of a registry over the SOAP wire format
// at a single endpoint. Unavailable modules produce a NotFound fault.
func SOAPHandler(reg *registry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
		if err != nil {
			writeSOAPFault(w, http.StatusBadRequest, "Validation", err.Error())
			return
		}
		var env soapEnvelope
		if err := xml.Unmarshal(body, &env); err != nil {
			writeSOAPFault(w, http.StatusBadRequest, "Validation", err.Error())
			return
		}
		if env.Body.Request == nil {
			writeSOAPFault(w, http.StatusBadRequest, "Validation", "missing InvokeRequest")
			return
		}
		req := env.Body.Request
		e, ok := reg.Get(req.Module)
		if !ok || !e.Available {
			writeSOAPFault(w, http.StatusNotFound, "NotFound", "unknown module "+req.Module)
			return
		}
		inputs := make(map[string]typesys.Value, len(req.Inputs))
		for _, in := range req.Inputs {
			if in.Value == nil {
				writeSOAPFault(w, http.StatusBadRequest, "Validation", "input "+in.Name+" missing value")
				return
			}
			v, err := valueFromXML(*in.Value)
			if err != nil {
				writeSOAPFault(w, http.StatusBadRequest, "Validation", err.Error())
				return
			}
			inputs[in.Name] = v
		}
		outs, err := e.Module.Invoke(inputs)
		if err != nil {
			if module.IsExecutionError(err) {
				writeSOAPFault(w, http.StatusUnprocessableEntity, "Execution", err.Error())
			} else {
				writeSOAPFault(w, http.StatusBadRequest, "Validation", err.Error())
			}
			return
		}
		resp := soapInvokeResponse{Module: req.Module}
		for _, p := range e.Module.Outputs {
			x, err := valueToXML(outs[p.Name])
			if err != nil {
				writeSOAPFault(w, http.StatusInternalServerError, "Validation", err.Error())
				return
			}
			xc := x
			resp.Outputs = append(resp.Outputs, soapPort{Name: p.Name, Value: &xc})
		}
		writeSOAP(w, http.StatusOK, soapEnvelope{Body: soapBody{Response: &resp}})
	})
}

func writeSOAPFault(w http.ResponseWriter, status int, code, msg string) {
	writeSOAP(w, status, soapEnvelope{Body: soapBody{Fault: &soapFault{Code: code, Message: msg}}})
}

func writeSOAP(w http.ResponseWriter, status int, env soapEnvelope) {
	w.Header().Set("Content-Type", "text/xml")
	w.WriteHeader(status)
	data, err := xml.MarshalIndent(env, "", "  ")
	if err != nil {
		return
	}
	_, _ = w.Write([]byte(xml.Header))
	_, _ = w.Write(data)
}

// SOAPExecutor invokes a remote module over the SOAP wire format. It
// implements module.Executor and module.ContextExecutor. Errors are
// classified like the REST executor's: network faults, timeouts,
// throttling, 5xx answers, and garbled 200 envelopes are retryable
// *module.TransientError values; proper SOAP faults stay plain errors.
type SOAPExecutor struct {
	// Endpoint is the full SOAP endpoint URL.
	Endpoint string
	// ModuleID is the remote module identifier.
	ModuleID string
	// Client is the HTTP client to use; a shared client with
	// DefaultTimeout when nil.
	Client *http.Client
}

// Invoke performs the remote call with no caller-supplied deadline (the
// client timeout still applies).
func (e *SOAPExecutor) Invoke(inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	return e.InvokeContext(context.Background(), inputs)
}

// InvokeContext performs the remote call, honouring ctx. When a
// telemetry tracer rides in ctx the round-trip is recorded as a
// "transport.soap" span; transient transport faults mark it failed.
func (e *SOAPExecutor) InvokeContext(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	ctx, span := telemetry.StartSpan(ctx, "transport.soap")
	span.Annotate("module", e.ModuleID)
	outs, err := e.invokeContext(ctx, inputs)
	if module.IsTransient(err) {
		span.Fail(err)
	}
	span.End()
	return outs, err
}

func (e *SOAPExecutor) invokeContext(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	req := soapInvokeRequest{Module: e.ModuleID}
	// Deterministic input order for stable wire traffic.
	names := make([]string, 0, len(inputs))
	for n := range inputs {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		x, err := valueToXML(inputs[n])
		if err != nil {
			return nil, fmt.Errorf("transport: encoding input %s: %w", n, err)
		}
		xc := x
		req.Inputs = append(req.Inputs, soapPort{Name: n, Value: &xc})
	}
	payload, err := xml.Marshal(soapEnvelope{Body: soapBody{Request: &req}})
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, e.Endpoint, bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	httpReq.Header.Set("Content-Type", "text/xml")
	resp, err := clientOrDefault(e.Client).Do(httpReq)
	if err != nil {
		return nil, classifyDialErr(e.ModuleID, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody+1))
	if err != nil {
		return nil, module.Transient(e.ModuleID, module.FaultConnection, fmt.Errorf("reading response: %w", err))
	}
	if len(data) > maxResponseBody {
		return nil, module.Transient(e.ModuleID, module.FaultMalformed, fmt.Errorf("response exceeds %d-byte limit", maxResponseBody))
	}
	// Status first: throttling and gateway errors classify by status; only
	// wire-format answers are handed to the XML decoder.
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500 {
			return nil, classifyStatus(e.ModuleID, resp.StatusCode, data)
		}
		var env soapEnvelope
		if looksLikeWireFormat(data, "<") && xml.Unmarshal(data, &env) == nil && env.Body.Fault != nil {
			return nil, fmt.Errorf("transport: remote fault %s: %s", env.Body.Fault.Code, env.Body.Fault.Message)
		}
		return nil, classifyStatus(e.ModuleID, resp.StatusCode, data)
	}
	var env soapEnvelope
	if err := xml.Unmarshal(data, &env); err != nil {
		return nil, module.Transient(e.ModuleID, module.FaultMalformed,
			fmt.Errorf("decoding envelope: %w (body %s)", err, bodySnippet(data)))
	}
	if env.Body.Fault != nil {
		return nil, fmt.Errorf("transport: remote fault %s: %s", env.Body.Fault.Code, env.Body.Fault.Message)
	}
	if env.Body.Response == nil {
		return nil, module.Transient(e.ModuleID, module.FaultMalformed,
			fmt.Errorf("envelope carries no response (body %s)", bodySnippet(data)))
	}
	values := make(map[string]typesys.Value, len(env.Body.Response.Outputs))
	for _, out := range env.Body.Response.Outputs {
		if out.Value == nil {
			return nil, module.Transient(e.ModuleID, module.FaultMalformed, fmt.Errorf("output %s missing value", out.Name))
		}
		v, err := valueFromXML(*out.Value)
		if err != nil {
			return nil, module.Transient(e.ModuleID, module.FaultMalformed, fmt.Errorf("decoding output %s: %w", out.Name, err))
		}
		values[out.Name] = v
	}
	return values, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// BindRemote rebinds a module signature to a remote endpoint according to
// its declared form: REST modules get a RESTExecutor, SOAP modules a
// SOAPExecutor. Local modules are left untouched (they need an in-process
// executor). baseURL is the server root for REST; soapEndpoint the SOAP
// POST URL.
func BindRemote(m *module.Module, baseURL, soapEndpoint string, client *http.Client) {
	switch m.Form {
	case module.FormREST:
		m.Bind(&RESTExecutor{BaseURL: baseURL, ModuleID: m.ID, Client: client})
	case module.FormSOAP:
		m.Bind(&SOAPExecutor{Endpoint: soapEndpoint, ModuleID: m.ID, Client: client})
	}
}
