package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// This file renders a registry in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers per family, one line per series,
// histograms as cumulative _bucket/_sum/_count series. Output order is
// deterministic — families by name, series by label values — so the
// format is pinned by a golden test.

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trippable representation, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// writeLabels renders {a="x",b="y"} (empty for no labels), with extra
// appended last (used for histogram le).
func writeLabels(b *strings.Builder, labels []Label, extra ...Label) {
	if len(labels)+len(extra) == 0 {
		return
	}
	b.WriteByte('{')
	first := true
	for _, l := range append(labels, extra...) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// WritePrometheus writes the registry's current state to w in the text
// exposition format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder
	for _, f := range snap.Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, s := range f.Series {
			switch f.Type {
			case "histogram":
				for _, bk := range s.Buckets {
					b.WriteString(f.Name)
					b.WriteString("_bucket")
					writeLabels(&b, s.Labels, Label{Name: "le", Value: bk.LE})
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(bk.Count, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.Name)
				b.WriteString("_sum")
				writeLabels(&b, s.Labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(s.Sum))
				b.WriteByte('\n')
				b.WriteString(f.Name)
				b.WriteString("_count")
				writeLabels(&b, s.Labels)
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(s.Count, 10))
				b.WriteByte('\n')
			default:
				b.WriteString(f.Name)
				writeLabels(&b, s.Labels)
				b.WriteByte(' ')
				b.WriteString(formatFloat(s.Value))
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsHandler serves the registry in the Prometheus text format —
// mount it at GET /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
