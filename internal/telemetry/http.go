package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTPOptions configures server-side HTTP instrumentation. Every field is
// optional; the zero value yields a middleware that only manages request
// IDs (cheap, and always useful for correlating error reports).
type HTTPOptions struct {
	// Registry receives the request metrics; nil disables them.
	Registry *Registry
	// Tracer starts a root span per request; nil disables tracing.
	Tracer *Tracer
	// Logger writes one structured line per completed request; nil
	// disables request logging.
	Logger *slog.Logger
}

// HTTPInstrument wraps route handlers with request-ID management,
// per-route metrics (request count by method/status, latency histogram,
// in-flight gauge, response bytes), an optional root trace span, and an
// optional structured access log. Build one per server and wrap each
// route with Route — the route string becomes the metric label, keeping
// label cardinality bounded no matter what paths clients probe.
type HTTPInstrument struct {
	opts     HTTPOptions
	requests *CounterVec   // route, method, code
	latency  *HistogramVec // route
	inflight *Gauge
	bytes    *CounterVec // route

	ridPrefix string
	ridSeq    atomic.Uint64
}

// NewHTTPInstrument builds the instrument and registers its metric
// families (when a registry is configured).
func NewHTTPInstrument(opts HTTPOptions) *HTTPInstrument {
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err != nil {
		binary.BigEndian.PutUint32(buf[:], uint32(time.Now().UnixNano()))
	}
	h := &HTTPInstrument{
		opts:      opts,
		ridPrefix: fmt.Sprintf("%08x", binary.BigEndian.Uint32(buf[:])),
	}
	if reg := opts.Registry; reg != nil {
		h.requests = reg.CounterVec("dexa_http_requests_total",
			"HTTP requests served, by route pattern, method and status code.",
			"route", "method", "code")
		h.latency = reg.HistogramVec("dexa_http_request_duration_seconds",
			"HTTP request latency in seconds, by route pattern.",
			nil, "route")
		h.inflight = reg.Gauge("dexa_http_in_flight_requests",
			"HTTP requests currently being served.")
		h.bytes = reg.CounterVec("dexa_http_response_bytes_total",
			"Response body bytes written, by route pattern.",
			"route")
	}
	return h
}

type requestIDKey struct{}

// RequestIDHeader is the header request IDs are read from and echoed on.
const RequestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds accepted client-supplied request IDs; longer
// values are replaced, not truncated, so IDs stay opaque.
const maxRequestIDLen = 128

// RequestIDFrom returns the request ID assigned by the middleware, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID mints a process-unique request ID.
func (h *HTTPInstrument) newRequestID() string {
	return h.ridPrefix + "-" + strconv.FormatUint(h.ridSeq.Add(1), 16)
}

// usableRequestID reports whether a client-supplied ID is safe to echo
// and log: bounded length, printable ASCII, no header/log injection.
func usableRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] >= 0x7f {
			return false
		}
	}
	return true
}

// statusWriter captures the response status and body size.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards http.Flusher so streaming handlers keep working when
// wrapped.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Route wraps next with the full per-request instrumentation under the
// given route label (the registered pattern, e.g. "/modules/{id}").
func (h *HTTPInstrument) Route(route string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()

		rid := r.Header.Get(RequestIDHeader)
		if !usableRequestID(rid) {
			rid = h.newRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)
		ctx := context.WithValue(r.Context(), requestIDKey{}, rid)

		var sp *Span
		if h.opts.Tracer != nil {
			ctx, sp = StartSpan(WithTracer(ctx, h.opts.Tracer), "http "+r.Method+" "+route)
			sp.Annotate("path", r.URL.Path)
			sp.Annotate("requestId", rid)
		}

		h.inflight.Inc()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r.WithContext(ctx))
		h.inflight.Dec()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)

		if h.requests != nil {
			h.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
			h.latency.With(route).Observe(elapsed.Seconds())
			h.bytes.With(route).Add(uint64(sw.bytes))
		}
		if sp != nil {
			sp.Annotate("status", strconv.Itoa(sw.status))
			if sw.status >= 500 {
				sp.Fail(fmt.Errorf("status %d", sw.status))
			}
			sp.End()
		}
		if h.opts.Logger != nil {
			h.opts.Logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("route", route),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", elapsed),
				slog.String("requestId", rid),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// writeJSON is the compact JSON response helper shared by the telemetry
// handlers.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
