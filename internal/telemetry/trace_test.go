package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := NewTracer(8)
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := StartSpan(ctx, "request")
	if root == nil {
		t.Fatal("no root span with tracer in context")
	}
	root.Annotate("path", "/x")
	ctx2, child := StartSpan(ctx1, "generate")
	_, grand := StartSpan(ctx2, "invoke")
	grand.Fail(errors.New("boom"))
	grand.End()
	child.End()
	root.End()

	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("recent traces = %d, want 1", len(recent))
	}
	rec := recent[0]
	if rec.Name != "request" || len(rec.Children) != 1 {
		t.Fatalf("root = %+v", rec)
	}
	if rec.Attrs[0] != (Attr{Key: "path", Value: "/x"}) {
		t.Errorf("root attrs = %v", rec.Attrs)
	}
	gen := rec.Children[0]
	if gen.Name != "generate" || len(gen.Children) != 1 {
		t.Fatalf("child = %+v", gen)
	}
	inv := gen.Children[0]
	if inv.Name != "invoke" || inv.Error != "boom" {
		t.Errorf("grandchild = %+v", inv)
	}
	if inv.Trace != rec.Trace || gen.Trace != rec.Trace {
		t.Error("trace IDs differ within one trace")
	}
	if tr.Started() != 3 || tr.Finished() != 3 {
		t.Errorf("started/finished = %d/%d, want 3/3", tr.Started(), tr.Finished())
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(3)
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		_, sp := StartSpan(ctx, fmt.Sprintf("op-%d", i))
		sp.End()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(recent))
	}
	// Newest first.
	for i, want := range []string{"op-9", "op-8", "op-7"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].Name, want)
		}
	}
}

func TestSpanChildCap(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "root")
	for i := 0; i < maxSpanChildren+10; i++ {
		_, c := StartSpan(ctx, "child")
		c.End()
	}
	root.End()
	rec := tr.Recent()[0]
	if len(rec.Children) != maxSpanChildren {
		t.Errorf("children = %d, want cap %d", len(rec.Children), maxSpanChildren)
	}
	if rec.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", rec.Dropped)
	}
}

func TestNilSpanSafety(t *testing.T) {
	ctx, sp := StartSpan(context.Background(), "nothing")
	if sp != nil {
		t.Fatal("span without tracer should be nil")
	}
	sp.Annotate("k", "v")
	sp.Fail(errors.New("x"))
	sp.End() // all no-ops, must not panic
	if SpanFrom(ctx) != nil {
		t.Error("nil span leaked into context")
	}
	var tr *Tracer
	if tr.Recent() != nil || tr.Started() != 0 || tr.Finished() != 0 {
		t.Error("nil tracer not inert")
	}
}

func TestEndIdempotent(t *testing.T) {
	tr := NewTracer(4)
	_, sp := StartSpan(WithTracer(context.Background(), tr), "once")
	sp.End()
	sp.End()
	if got := len(tr.Recent()); got != 1 {
		t.Errorf("double End published %d traces, want 1", got)
	}
	if tr.Finished() != 1 {
		t.Errorf("finished = %d, want 1", tr.Finished())
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(2)
	ctx := WithTracer(context.Background(), tr)
	ctx, root := StartSpan(ctx, "fanout")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(ctx, "worker")
			sp.Annotate("k", "v")
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := len(tr.Recent()[0].Children); got != 32 {
		t.Errorf("children = %d, want 32", got)
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewTracer(4)
	_, sp := StartSpan(WithTracer(context.Background(), tr), "served")
	sp.End()
	rec := httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Count  int          `json:"count"`
		Traces []SpanRecord `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Count != 1 || len(body.Traces) != 1 || body.Traces[0].Name != "served" {
		t.Errorf("traces body = %+v", body)
	}
}
