package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte for byte: family
// ordering (by name), series ordering (by label values), HELP/TYPE
// headers, histogram bucket/sum/count rendering, and value formatting.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("dexa_requests_total", "Requests served.", "route", "code").With("/catalog", "200").Add(3)
	reg.CounterVec("dexa_requests_total", "Requests served.", "route", "code").With("/catalog", "404").Inc()
	reg.CounterVec("dexa_requests_total", "Requests served.", "route", "code").With("/stats", "200").Add(2)
	reg.Gauge("dexa_in_flight", "In-flight requests.").Set(1.5)
	h := reg.Histogram("dexa_latency_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	// Binary-exact observations keep the rendered _sum stable.
	h.Observe(0.0078125)
	h.Observe(0.0625)
	h.Observe(0.0625)
	h.Observe(7)
	reg.GaugeFunc("dexa_store_modules", "Stored modules.", func() float64 { return 42 })

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dexa_in_flight In-flight requests.
# TYPE dexa_in_flight gauge
dexa_in_flight 1.5
# HELP dexa_latency_seconds Request latency.
# TYPE dexa_latency_seconds histogram
dexa_latency_seconds_bucket{le="0.01"} 1
dexa_latency_seconds_bucket{le="0.1"} 3
dexa_latency_seconds_bucket{le="1"} 3
dexa_latency_seconds_bucket{le="+Inf"} 4
dexa_latency_seconds_sum 7.1328125
dexa_latency_seconds_count 4
# HELP dexa_requests_total Requests served.
# TYPE dexa_requests_total counter
dexa_requests_total{route="/catalog",code="200"} 3
dexa_requests_total{route="/catalog",code="404"} 1
dexa_requests_total{route="/stats",code="200"} 2
# HELP dexa_store_modules Stored modules.
# TYPE dexa_store_modules gauge
dexa_store_modules 42
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("esc_total", "line1\nline2 with \\ backslash", "v").
		With("quo\"te\\slash\nnewline").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esc_total line1\nline2 with \\ backslash
# TYPE esc_total counter
esc_total{v="quo\"te\\slash\nnewline"} 1
`
	if got := b.String(); got != want {
		t.Errorf("escaping mismatch:\n got %q\nwant %q", b.String(), want)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("handler_total", "").Inc()
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1:       "1",
		1.5:     "1.5",
		0.00025: "0.00025",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
