// Package telemetry is the zero-dependency observability layer of the
// repository: a metrics registry cheap enough for hot paths, trace spans
// propagated through context.Context, and HTTP exposition (Prometheus
// text format, recent-trace dumps, request middleware).
//
// Design constraints, in order:
//
//   - Recording must be allocation-free on held handles. A *Counter,
//     *Gauge or *Histogram obtained once (at construction, per route, per
//     module) records with a single atomic operation; labelled lookups
//     through a Vec pay one map read and one small key allocation and are
//     meant for per-request, not per-iteration, call sites.
//   - Everything is nil-safe. A nil *Registry hands out nil handles, and
//     every method on a nil handle is a no-op — so instrumented code never
//     branches on "is telemetry enabled" and the disabled configuration
//     costs one predictable nil check. The no-op recorder the overhead
//     benchmarks compare against is literally `var reg *Registry`.
//   - Exposition is deterministic: families sort by name, series by label
//     values, so the text format can be golden-tested byte for byte.
//
// The registry intentionally supports only the three Prometheus core
// types (counter, gauge, histogram with fixed buckets) plus func-backed
// collectors for counters another subsystem already maintains as atomics.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-global registry the cmd binaries expose. Library
// code should accept a *Registry instead of reaching for it, so tests can
// isolate their metric state.
var Default = NewRegistry()

// metricKind discriminates the supported metric types.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Registry holds metric families and hands out recording handles.
// All methods are safe for concurrent use. A nil *Registry is the no-op
// recorder: every constructor returns a nil handle whose methods do
// nothing.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric family: a fixed kind, label names, and the
// live series keyed by joined label values.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histogram bucket upper bounds, ascending

	mu     sync.RWMutex
	series map[string]*series

	// fn, when non-nil, makes this a func-backed single-series family
	// evaluated at snapshot time (no live series).
	fn func() float64
}

// series is one labelled time series within a family. Exactly one of the
// handle fields is non-nil, matching the family kind.
type series struct {
	values []string // label values, aligned with family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// seriesSep joins label values into map keys; label values containing it
// are rejected at lookup.
const seriesSep = "\x1f"

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (labels additionally may not contain
// colons, which we do not enforce — we never generate them).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z', ch >= 'A' && ch <= 'Z', ch == '_', ch == ':':
		case ch >= '0' && ch <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lookup returns the family for name, creating it on first registration.
// Re-registering with a different kind, label set or bucket layout is a
// programming error and panics, mirroring the Prometheus client.
func (r *Registry) lookup(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		f, ok = r.families[name]
		if !ok {
			f = &family{
				name:   name,
				help:   help,
				kind:   kind,
				labels: append([]string(nil), labels...),
				bounds: append([]float64(nil), bounds...),
				series: make(map[string]*series),
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	if len(f.labels) != len(labels) || (len(labels) > 0 && !equalStrings(f.labels, labels)) {
		panic(fmt.Sprintf("telemetry: metric %s re-registered with labels %v, was %v", name, labels, f.labels))
	}
	if kind == kindHistogram && !equalFloats(f.bounds, bounds) {
		panic(fmt.Sprintf("telemetry: histogram %s re-registered with buckets %v, was %v", name, bounds, f.bounds))
	}
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// get returns the series for the joined key, creating it on first use.
func (f *family) get(key string, values []string) *series {
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = &series{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	f.series[key] = s
	return s
}

func (f *family) with(values ...string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s: got %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	for _, v := range values {
		if strings.Contains(v, seriesSep) {
			panic(fmt.Sprintf("telemetry: metric %s: label value %q contains reserved separator", f.name, v))
		}
	}
	return f.get(strings.Join(values, seriesSep), values)
}

// ---- Counter ----

// Counter is a monotonically increasing count. The zero value is ready to
// use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Counter registers (or finds) an unlabelled counter family and returns
// its single series handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, nil).get("", nil).c
}

// CounterVec is a counter family with labels.
type CounterVec struct {
	f *family
}

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookup(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating the
// series on first use. Hold the handle when recording in a loop.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.with(values...).c
}

// CounterFunc registers a func-backed counter family: fn is evaluated at
// snapshot/exposition time. Use it to export a count another subsystem
// already maintains. Registering the same name again replaces the
// function (last wins), so re-built fixtures can re-wire collectors.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindCounter, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// ---- Gauge ----

// Gauge is a value that can go up and down, stored as float64 bits. The
// zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (negative to subtract) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Gauge registers (or finds) an unlabelled gauge family and returns its
// single series handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, nil).get("", nil).g
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct {
	f *family
}

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.with(values...).g
}

// GaugeFunc registers a func-backed gauge family evaluated at snapshot
// time. Registering the same name again replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookup(name, help, kindGauge, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// ---- Histogram ----

// DefBuckets are the default latency buckets, in seconds: 0.5ms to 10s.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Histogram counts observations in fixed buckets. Observe is two atomic
// operations (bucket increment + sum CAS) and allocates nothing. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	buckets []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// checkBounds panics on unsorted or duplicate bucket bounds.
func checkBounds(name string, bounds []float64) {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s: buckets not strictly ascending: %v", name, bounds))
		}
	}
}

// Histogram registers (or finds) an unlabelled histogram family with the
// given bucket upper bounds (nil selects DefBuckets) and returns its
// single series handle.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	checkBounds(name, bounds)
	return r.lookup(name, help, kindHistogram, nil, bounds).get("", nil).h
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct {
	f *family
}

// HistogramVec registers (or finds) a labelled histogram family. nil
// bounds selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	checkBounds(name, bounds)
	return &HistogramVec{f: r.lookup(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.with(values...).h
}

// ---- Snapshot ----

// Label is one name/value pair of a series.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	LE    string `json:"le"` // upper bound as rendered in exposition; "+Inf" last
	Count uint64 `json:"count"`
}

// SeriesSnapshot is the frozen state of one series.
type SeriesSnapshot struct {
	Labels []Label `json:"labels,omitempty"`
	// Value is the counter count or gauge level; unused for histograms.
	Value float64 `json:"value"`
	// Histogram fields.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// FamilySnapshot is the frozen state of one metric family.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot is the frozen state of a whole registry: families sorted by
// name, series sorted by label values — the JSON twin of the Prometheus
// exposition, embedded by the serving layer's /stats.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// Snapshot freezes the registry. Safe to call concurrently with
// recording; each atomic is read once, so a snapshot is internally
// consistent per value, not across values.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Families: []FamilySnapshot{}}
	}
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		snap.Families = append(snap.Families, f.snapshot())
	}
	return snap
}

func (f *family) snapshot() FamilySnapshot {
	fs := FamilySnapshot{Name: f.name, Help: f.help, Type: f.kind.String()}
	f.mu.RLock()
	if f.fn != nil {
		fn := f.fn
		f.mu.RUnlock()
		fs.Series = []SeriesSnapshot{{Value: fn()}}
		return fs
	}
	type keyed struct {
		key string
		s   *series
	}
	rows := make([]keyed, 0, len(f.series))
	for k, s := range f.series {
		rows = append(rows, keyed{k, s})
	}
	f.mu.RUnlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })

	fs.Series = make([]SeriesSnapshot, 0, len(rows))
	for _, row := range rows {
		ss := SeriesSnapshot{}
		for i, name := range f.labels {
			ss.Labels = append(ss.Labels, Label{Name: name, Value: row.s.values[i]})
		}
		switch f.kind {
		case kindCounter:
			ss.Value = float64(row.s.c.Value())
		case kindGauge:
			ss.Value = row.s.g.Value()
		case kindHistogram:
			h := row.s.h
			ss.Count = h.Count()
			ss.Sum = h.Sum()
			cum := uint64(0)
			for i := range h.buckets {
				cum += h.buckets[i].Load()
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatFloat(h.bounds[i])
				}
				ss.Buckets = append(ss.Buckets, Bucket{LE: le, Count: cum})
			}
		}
		fs.Series = append(fs.Series, ss)
	}
	return fs
}
