package telemetry

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"
)

// TestRegistryHammer drives recorders, series creation, snapshots and
// exposition concurrently. Run under -race (the repo's `make race` does),
// it is the registry's concurrency contract: recording never races with
// scraping, and totals add up afterwards.
func TestRegistryHammer(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	const (
		workers = 8
		iters   = 2000
	)
	c := reg.Counter("hammer_total", "")
	g := reg.Gauge("hammer_gauge", "")
	h := reg.Histogram("hammer_seconds", "", []float64{0.1, 1})
	vec := reg.CounterVec("hammer_vec_total", "", "worker")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := vec.With(fmt.Sprintf("w%d", w))
			ctx := WithTracer(context.Background(), tr)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%3) / 2)
				mine.Inc()
				vec.With("shared").Inc()
				if i%64 == 0 {
					_, sp := StartSpan(ctx, "hammer")
					_, child := StartSpan(WithTracer(context.Background(), tr), "solo")
					child.End()
					sp.End()
				}
			}
		}(w)
	}
	// Concurrent scrapers.
	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					reg.Snapshot()
					reg.WritePrometheus(io.Discard)
					tr.Recent()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := vec.With("shared").Value(); got != workers*iters {
		t.Errorf("shared series = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := vec.With(fmt.Sprintf("w%d", w)).Value(); got != iters {
			t.Errorf("worker %d series = %d, want %d", w, got, iters)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}

func BenchmarkNoopCounterInc(b *testing.B) {
	var reg *Registry
	c := reg.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkVecWithInc(b *testing.B) {
	v := NewRegistry().CounterVec("bench_vec_total", "", "route", "code")
	v.With("/x", "200").Inc()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("/x", "200").Inc()
	}
}

func BenchmarkStartSpanEnd(b *testing.B) {
	ctx := WithTracer(context.Background(), NewTracer(16))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench")
		sp.End()
	}
}
