package telemetry

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRouteMetricsAndRequestID(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(8)
	ins := NewHTTPInstrument(HTTPOptions{Registry: reg, Tracer: tr})

	var sawID string
	h := ins.Route("/things/{id}", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawID = RequestIDFrom(r.Context())
		if SpanFrom(r.Context()) == nil {
			t.Error("no span in handler context")
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte("made"))
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/things/42", nil))
	if rec.Code != http.StatusCreated {
		t.Fatalf("status = %d", rec.Code)
	}
	rid := rec.Header().Get(RequestIDHeader)
	if rid == "" || rid != sawID {
		t.Errorf("request ID header %q, handler saw %q", rid, sawID)
	}

	// Client-supplied IDs are echoed and threaded through.
	rec2 := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/things/43", nil)
	req.Header.Set(RequestIDHeader, "client-supplied-7")
	h.ServeHTTP(rec2, req)
	if got := rec2.Header().Get(RequestIDHeader); got != "client-supplied-7" {
		t.Errorf("echoed ID = %q", got)
	}
	if sawID != "client-supplied-7" {
		t.Errorf("handler saw %q", sawID)
	}

	// Hostile IDs (injection, oversize) are replaced.
	rec3 := httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/things/44", nil)
	req.Header.Set(RequestIDHeader, "bad\x7fid")
	h.ServeHTTP(rec3, req)
	if got := rec3.Header().Get(RequestIDHeader); got == "bad\x7fid" || got == "" {
		t.Errorf("hostile ID echoed: %q", got)
	}

	// Metrics landed under the route label.
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`dexa_http_requests_total{route="/things/{id}",method="POST",code="201"} 3`,
		`dexa_http_request_duration_seconds_count{route="/things/{id}"} 3`,
		`dexa_http_response_bytes_total{route="/things/{id}"} 12`,
		`dexa_http_in_flight_requests 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Each request produced one root trace named after the route.
	recent := tr.Recent()
	if len(recent) != 3 || recent[0].Name != "http POST /things/{id}" {
		t.Errorf("traces = %+v", recent)
	}
}

func TestRouteAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ins := NewHTTPInstrument(HTTPOptions{Logger: logger})
	h := ins.Route("/ping", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("pong"))
	}))
	req := httptest.NewRequest("GET", "/ping", nil)
	req.Header.Set(RequestIDHeader, "rid-1")
	h.ServeHTTP(httptest.NewRecorder(), req)
	line := buf.String()
	for _, want := range []string{"method=GET", "route=/ping", "status=200", "requestId=rid-1", "bytes=4"} {
		if !strings.Contains(line, want) {
			t.Errorf("access log missing %q: %s", want, line)
		}
	}
}

func TestRouteWithoutTelemetryStillWorks(t *testing.T) {
	ins := NewHTTPInstrument(HTTPOptions{})
	h := ins.Route("/bare", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/bare", nil))
	if rec.Code != 200 || rec.Body.String() != "ok" {
		t.Fatalf("bare route broken: %d %q", rec.Code, rec.Body.String())
	}
	if rec.Header().Get(RequestIDHeader) == "" {
		t.Error("request ID missing without telemetry")
	}
}

func TestRequestIDsUnique(t *testing.T) {
	ins := NewHTTPInstrument(HTTPOptions{})
	seen := map[string]bool{}
	h := ins.Route("/u", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	for i := 0; i < 100; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/u", nil))
		id := rec.Header().Get(RequestIDHeader)
		if seen[id] {
			t.Fatalf("duplicate request ID %q", id)
		}
		seen[id] = true
	}
}

func TestUsableRequestID(t *testing.T) {
	cases := map[string]bool{
		"":                            false,
		"ok-123":                      true,
		"with space":                  false,
		"tab\there":                   false,
		"newline\n":                   false,
		strings.Repeat("x", 128):      true,
		strings.Repeat("x", 129):      false,
		"non-ascii-\xc3\xa9":          false,
		"control-\x01":                false,
		"UUID-550e8400-e29b-41d4-a71": true,
	}
	for id, want := range cases {
		if got := usableRequestID(id); got != want {
			t.Errorf("usableRequestID(%q) = %v, want %v", id, got, want)
		}
	}
}

func TestRequestIDFromEmptyContext(t *testing.T) {
	if got := RequestIDFrom(context.Background()); got != "" {
		t.Errorf("RequestIDFrom(empty) = %q", got)
	}
}
