package telemetry

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Trace spans record the shape and timing of one logical operation as it
// descends through the stack: HTTP request → store-backed source →
// generation heuristic → resilient executor → transport round-trip. A
// span is created from a context (StartSpan), timed until End, and may
// carry string attributes and an error status. Completed *root* spans are
// pushed into the tracer's bounded ring, so /debug/traces always shows
// the most recent operations without unbounded memory.
//
// Everything is nil-safe: StartSpan on a context with no tracer returns a
// nil span, and every method on a nil *Span is a no-op. Instrumented code
// therefore never asks "is tracing on".

// DefaultTraceCapacity bounds the recent-trace ring when NewTracer is
// given a non-positive capacity.
const DefaultTraceCapacity = 64

// maxSpanChildren bounds the children recorded per span; a generation
// sweep over thousands of input combinations must not turn one trace into
// an unbounded tree. Further children are counted, not stored.
const maxSpanChildren = 64

// Tracer collects completed root spans in a bounded ring.
type Tracer struct {
	capacity int
	seq      atomic.Uint64
	started  atomic.Uint64
	finished atomic.Uint64

	mu   sync.Mutex
	ring []*Span // completed roots, oldest first
}

// NewTracer creates a tracer retaining the last capacity root traces
// (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity}
}

// Started returns how many spans have been started through this tracer.
func (t *Tracer) Started() uint64 {
	if t == nil {
		return 0
	}
	return t.started.Load()
}

// Finished returns how many spans have ended.
func (t *Tracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	return t.finished.Load()
}

func (t *Tracer) push(root *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = append(t.ring, root)
	if len(t.ring) > t.capacity {
		// Drop the oldest; shift in place to keep one backing array.
		copy(t.ring, t.ring[1:])
		t.ring = t.ring[:t.capacity]
	}
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed operation. Create with StartSpan, finish with End.
// A span is safe for concurrent child creation (fan-out under one parent)
// but End and attribute mutation belong to the goroutine that created it.
type Span struct {
	tracer  *Tracer
	parent  *Span
	traceID uint64
	name    string
	start   time.Time

	mu       sync.Mutex
	end      time.Time
	err      string
	attrs    []Attr
	children []*Span
	dropped  int
}

type tracerKey struct{}
type spanKey struct{}

// WithTracer returns a context that starts root spans on t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer attached to ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// SpanFrom returns the active span of ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// StartSpan starts a span named name: a child of the context's active
// span when one exists, otherwise a root span on the context's tracer.
// With neither in the context it returns (ctx, nil) — and a nil span is
// free to use. The returned context carries the new span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFrom(ctx)
	var tracer *Tracer
	var traceID uint64
	if parent != nil {
		tracer = parent.tracer
		traceID = parent.traceID
	} else {
		tracer = TracerFrom(ctx)
		if tracer == nil {
			return ctx, nil
		}
		traceID = tracer.seq.Add(1)
	}
	sp := &Span{tracer: tracer, parent: parent, traceID: traceID, name: name, start: time.Now()}
	tracer.started.Add(1)
	if parent != nil {
		parent.mu.Lock()
		if len(parent.children) < maxSpanChildren {
			parent.children = append(parent.children, sp)
		} else {
			parent.dropped++
		}
		parent.mu.Unlock()
	}
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Annotate attaches a key/value attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Fail marks the span as errored. A nil error is ignored, so callers can
// write `sp.Fail(err)` unconditionally on the way out.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// End finishes the span. Ending a root span publishes the whole trace to
// the tracer's ring. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.end.IsZero() {
		s.mu.Unlock()
		return
	}
	s.end = time.Now()
	s.mu.Unlock()
	s.tracer.finished.Add(1)
	if s.parent == nil {
		s.tracer.push(s)
	}
}

// SpanRecord is the JSON form of a completed (or in-flight) span.
type SpanRecord struct {
	Trace      uint64       `json:"trace"`
	Name       string       `json:"name"`
	Start      time.Time    `json:"start"`
	DurationMS float64      `json:"durationMs"`
	InFlight   bool         `json:"inFlight,omitempty"`
	Error      string       `json:"error,omitempty"`
	Attrs      []Attr       `json:"attrs,omitempty"`
	Dropped    int          `json:"droppedChildren,omitempty"`
	Children   []SpanRecord `json:"children,omitempty"`
}

// record freezes the span subtree.
func (s *Span) record() SpanRecord {
	s.mu.Lock()
	rec := SpanRecord{
		Trace:   s.traceID,
		Name:    s.name,
		Start:   s.start,
		Error:   s.err,
		Attrs:   append([]Attr(nil), s.attrs...),
		Dropped: s.dropped,
	}
	end := s.end
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if end.IsZero() {
		rec.InFlight = true
		end = time.Now()
	}
	rec.DurationMS = float64(end.Sub(s.start)) / float64(time.Millisecond)
	for _, c := range children {
		rec.Children = append(rec.Children, c.record())
	}
	return rec
}

// Recent returns the retained root traces, newest first.
func (t *Tracer) Recent() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	roots := append([]*Span(nil), t.ring...)
	t.mu.Unlock()
	out := make([]SpanRecord, 0, len(roots))
	for i := len(roots) - 1; i >= 0; i-- {
		out = append(out, roots[i].record())
	}
	return out
}

// TracesHandler serves the tracer's recent root traces as JSON — mount it
// at GET /debug/traces.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		traces := t.Recent()
		writeJSON(w, http.StatusOK, map[string]any{
			"count":    len(traces),
			"started":  t.Started(),
			"finished": t.Finished(),
			"traces":   traces,
		})
	})
}
