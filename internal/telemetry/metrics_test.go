package telemetry

import (
	"encoding/json"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same series.
	if again := reg.Counter("test_total", "help"); again != c {
		t.Error("re-registration returned a different handle")
	}

	v := reg.CounterVec("test_labeled_total", "help", "kind")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Errorf("vec values = %d/%d, want 2/1", v.With("a").Value(), v.With("b").Value())
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(1.5)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 56.05 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	snap := reg.Snapshot()
	buckets := snap.Families[0].Series[0].Buckets
	wantCum := []uint64{1, 3, 4, 5} // le=0.1, 1, 10, +Inf cumulative
	if len(buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(buckets), len(wantCum))
	}
	for i, b := range buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %s = %d, want %d", b.LE, b.Count, wantCum[i])
		}
	}
	if buckets[3].LE != "+Inf" {
		t.Errorf("last bucket le = %q, want +Inf", buckets[3].LE)
	}
}

func TestFuncCollectors(t *testing.T) {
	reg := NewRegistry()
	n := 0.0
	reg.CounterFunc("test_fn_total", "help", func() float64 { return n })
	n = 7
	if got := reg.Snapshot().Families[0].Series[0].Value; got != 7 {
		t.Fatalf("func counter = %v, want 7", got)
	}
	// Last registration wins, so rebuilt fixtures can re-wire.
	reg.CounterFunc("test_fn_total", "help", func() float64 { return 11 })
	if got := reg.Snapshot().Families[0].Series[0].Value; got != 11 {
		t.Fatalf("replaced func counter = %v, want 11", got)
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x_total", "")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Error("nil counter recorded")
	}
	g := reg.Gauge("x", "")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge recorded")
	}
	h := reg.Histogram("x_seconds", "", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded")
	}
	reg.CounterVec("v_total", "", "l").With("a").Inc()
	reg.GaugeVec("vg", "", "l").With("a").Set(1)
	reg.HistogramVec("vh_seconds", "", nil, "l").With("a").Observe(1)
	reg.CounterFunc("f_total", "", func() float64 { return 1 })
	reg.GaugeFunc("fg", "", func() float64 { return 1 })
	if got := len(reg.Snapshot().Families); got != 0 {
		t.Errorf("nil registry snapshot has %d families", got)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(reg *Registry)
	}{
		{"kind", func(reg *Registry) { reg.Counter("m", ""); reg.Gauge("m", "") }},
		{"labels", func(reg *Registry) { reg.CounterVec("m", "", "a"); reg.CounterVec("m", "", "b") }},
		{"buckets", func(reg *Registry) {
			reg.Histogram("m", "", []float64{1})
			reg.Histogram("m", "", []float64{2})
		}},
		{"bad name", func(reg *Registry) { reg.Counter("9bad", "") }},
		{"bad label", func(reg *Registry) { reg.CounterVec("m", "", "bad-label") }},
		{"arity", func(reg *Registry) { reg.CounterVec("m", "", "a").With("x", "y") }},
		{"unsorted buckets", func(reg *Registry) { reg.Histogram("m", "", []float64{2, 1}) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn(NewRegistry())
		})
	}
}

// TestStatsSnapshotShape pins the JSON form of the registry embedded by
// the serving layer's /stats endpoint.
func TestStatsSnapshotShape(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "second").Add(2)
	reg.CounterVec("a_total", "first", "kind").With("x").Inc()
	reg.Histogram("c_seconds", "third", []float64{1}).Observe(0.5)

	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `{"families":[` +
		`{"name":"a_total","help":"first","type":"counter","series":[{"labels":[{"name":"kind","value":"x"}],"value":1}]},` +
		`{"name":"b_total","help":"second","type":"counter","series":[{"value":2}]},` +
		`{"name":"c_seconds","help":"third","type":"histogram","series":[{"value":0,"count":1,"sum":0.5,"buckets":[{"le":"1","count":1},{"le":"+Inf","count":1}]}]}` +
		`]}`
	if string(data) != want {
		t.Errorf("snapshot JSON:\n got %s\nwant %s", data, want)
	}
}

// TestRecordAllocations is the hot-path acceptance criterion: recording
// on a held handle must not allocate.
func TestRecordAllocations(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("alloc_total", "")
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op, want 0", n)
	}
	g := reg.Gauge("alloc_gauge", "")
	if n := testing.AllocsPerRun(1000, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %v/op, want 0", n)
	}
	h := reg.Histogram("alloc_seconds", "", nil)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
	v := reg.CounterVec("alloc_vec_total", "", "a", "b")
	v.With("x", "y").Inc() // create the series outside the measurement
	if n := testing.AllocsPerRun(1000, func() { v.With("x", "y").Inc() }); n > 1 {
		t.Errorf("CounterVec.With(...).Inc allocates %v/op, want <= 1", n)
	}
}
