// Package module defines the scientific-module model of the paper (§2):
// a module m = ⟨id, name⟩ with ordered input and output parameters, each
// parameter carrying a structural type str(p) and a semantic type sem(p).
//
// Modules are black boxes: the only way to learn anything about their
// behaviour is to invoke them. The Executor interface captures that
// boundary; implementations range from in-process functions to REST and
// SOAP clients (package transport). Invoke validates inputs and outputs
// against the declared parameter types, fills optional parameters with
// their defaults, and reports abnormal termination as an *ExecutionError —
// the signal the generation heuristic uses to discard invalid input
// combinations (§3.2).
package module

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"dexa/internal/typesys"
)

// Form records how a module is supplied (paper §4.1: Java/Python programs,
// REST services, SOAP web services).
type Form int

// The supported module forms.
const (
	FormLocal Form = iota // locally hosted program
	FormREST              // REST service
	FormSOAP              // SOAP web service
)

// String returns the lexical form name.
func (f Form) String() string {
	switch f {
	case FormLocal:
		return "local"
	case FormREST:
		return "rest"
	case FormSOAP:
		return "soap"
	default:
		return fmt.Sprintf("form(%d)", int(f))
	}
}

// Kind is the kind of data manipulation a module carries out (paper
// Table 3). It is ground-truth metadata used by the evaluation; the
// generation heuristic never reads it.
type Kind int

// The module kinds of Table 3.
const (
	KindUnknown Kind = iota
	KindTransformation
	KindRetrieval
	KindMapping
	KindFiltering
	KindAnalysis
)

// String returns the Table-3 label for the kind.
func (k Kind) String() string {
	switch k {
	case KindTransformation:
		return "format transformation"
	case KindRetrieval:
		return "data retrieval"
	case KindMapping:
		return "mapping identifiers"
	case KindFiltering:
		return "filtering"
	case KindAnalysis:
		return "data analysis"
	default:
		return "unknown"
	}
}

// Parameter describes one input or output of a module.
type Parameter struct {
	// Name is unique among the parameters on the same side of the module.
	Name string
	// Struct is the structural type str(p).
	Struct typesys.Type
	// Semantic is the ontology concept ID sem(p); empty when the parameter
	// has not been annotated yet.
	Semantic string
	// Optional marks an input that may be omitted; Default (or null) is
	// substituted. Only meaningful on inputs.
	Optional bool
	// Default is the value used for an omitted optional input; nil means
	// typesys.Null is used.
	Default typesys.Value
}

// Executor is the invocation boundary of a black-box module. Inputs map
// parameter names to values; the returned map must contain a value for
// every declared output. An error return models abnormal termination.
type Executor interface {
	Invoke(inputs map[string]typesys.Value) (map[string]typesys.Value, error)
}

// ExecFunc adapts a function to the Executor interface.
type ExecFunc func(inputs map[string]typesys.Value) (map[string]typesys.Value, error)

// Invoke calls f.
func (f ExecFunc) Invoke(inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	return f(inputs)
}

// ExecutionError reports that a module invocation terminated abnormally
// (the module rejected the input combination or failed internally). The
// generation heuristic treats these as "combinations that do not yield
// normal termination" and constructs no data example for them.
type ExecutionError struct {
	ModuleID string
	Err      error
}

// Error implements error.
func (e *ExecutionError) Error() string {
	return fmt.Sprintf("module %s: execution failed: %v", e.ModuleID, e.Err)
}

// Unwrap returns the underlying cause.
func (e *ExecutionError) Unwrap() error { return e.Err }

// IsExecutionError reports whether err is (or wraps) an ExecutionError.
func IsExecutionError(err error) bool {
	var ee *ExecutionError
	return errors.As(err, &ee)
}

// ErrRejectedInput is the conventional cause modules return for input
// combinations outside their domain of definition.
var ErrRejectedInput = errors.New("input combination rejected")

// Module is a scientific module: identity, parameter signature, and the
// executor that implements it. The ground-truth Kind and the Provider are
// evaluation metadata.
type Module struct {
	ID          string
	Name        string
	Description string
	Form        Form
	Kind        Kind
	// Provider identifies the hosting organisation; the workflow decay model
	// retires whole providers at a time.
	Provider string

	Inputs  []Parameter
	Outputs []Parameter

	exec Executor
}

// Bind attaches the executor implementing the module.
func (m *Module) Bind(exec Executor) { m.exec = exec }

// Bound reports whether an executor is attached.
func (m *Module) Bound() bool { return m.exec != nil }

// Executor returns the attached executor (nil when unbound), so callers
// can interpose wrappers — fault injection, resilience — around it.
func (m *Module) Executor() Executor { return m.exec }

// Input returns the named input parameter.
func (m *Module) Input(name string) (Parameter, bool) { return findParam(m.Inputs, name) }

// Output returns the named output parameter.
func (m *Module) Output(name string) (Parameter, bool) { return findParam(m.Outputs, name) }

func findParam(ps []Parameter, name string) (Parameter, bool) {
	for _, p := range ps {
		if p.Name == name {
			return p, true
		}
	}
	return Parameter{}, false
}

// InputNames returns the input parameter names in declaration order.
func (m *Module) InputNames() []string { return paramNames(m.Inputs) }

// OutputNames returns the output parameter names in declaration order.
func (m *Module) OutputNames() []string { return paramNames(m.Outputs) }

func paramNames(ps []Parameter) []string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Validate checks the module declaration: non-empty ID and name, at least
// one input and one output, unique parameter names per side, valid
// structural types, and defaults conforming to their parameter types.
func (m *Module) Validate() error {
	if m.ID == "" {
		return fmt.Errorf("module: empty ID")
	}
	if m.Name == "" {
		return fmt.Errorf("module %s: empty name", m.ID)
	}
	if len(m.Inputs) == 0 {
		return fmt.Errorf("module %s: no input parameters", m.ID)
	}
	if len(m.Outputs) == 0 {
		return fmt.Errorf("module %s: no output parameters", m.ID)
	}
	for side, ps := range map[string][]Parameter{"input": m.Inputs, "output": m.Outputs} {
		seen := map[string]bool{}
		for _, p := range ps {
			if p.Name == "" {
				return fmt.Errorf("module %s: empty %s parameter name", m.ID, side)
			}
			if seen[p.Name] {
				return fmt.Errorf("module %s: duplicate %s parameter %q", m.ID, side, p.Name)
			}
			seen[p.Name] = true
			if !p.Struct.IsValid() {
				return fmt.Errorf("module %s: %s parameter %q has invalid structural type", m.ID, side, p.Name)
			}
			if p.Default != nil {
				if _, isNull := p.Default.(typesys.NullValue); !isNull && !typesys.Conforms(p.Default, p.Struct) {
					return fmt.Errorf("module %s: %s parameter %q default does not conform to %s", m.ID, side, p.Name, p.Struct)
				}
			}
			if p.Optional && side == "output" {
				return fmt.Errorf("module %s: output parameter %q cannot be optional", m.ID, p.Name)
			}
		}
	}
	return nil
}

// Invoke runs the module on the given inputs.
//
// Validation before execution: every declared required input must be
// present and conform to its structural type; optional inputs that are
// absent (or explicitly null) are replaced by their default value (or null
// when no default is declared); unknown input names are rejected.
// Validation after execution: the executor must return a conforming value
// for every declared output.
//
// Errors from the executor are wrapped in *ExecutionError, except
// *TransientError transport faults, which pass through unwrapped (they are
// retryable, not abnormal terminations); declaration and conformance
// problems are returned as plain errors so callers can tell "the module
// rejected this combination" from "the caller misused the API".
func (m *Module) Invoke(inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	return m.InvokeContext(context.Background(), inputs)
}

// InvokeContext is Invoke with a context: when the bound executor honours
// contexts (ContextExecutor — remote transports, the resilient stack) the
// context's deadline, cancellation and telemetry travel with the call;
// plain executors are invoked as before. Validation is identical to
// Invoke.
func (m *Module) InvokeContext(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	if m.exec == nil {
		return nil, fmt.Errorf("module %s: no executor bound", m.ID)
	}
	for name := range inputs {
		if _, ok := m.Input(name); !ok {
			return nil, fmt.Errorf("module %s: unknown input %q", m.ID, name)
		}
	}
	eff := make(map[string]typesys.Value, len(m.Inputs))
	for _, p := range m.Inputs {
		v, present := inputs[p.Name]
		if present {
			if _, isNull := v.(typesys.NullValue); isNull {
				present = false
			}
		}
		if !present {
			if !p.Optional {
				return nil, fmt.Errorf("module %s: missing required input %q", m.ID, p.Name)
			}
			if p.Default != nil {
				eff[p.Name] = p.Default
			} else {
				eff[p.Name] = typesys.Null
			}
			continue
		}
		if !typesys.Conforms(v, p.Struct) {
			return nil, fmt.Errorf("module %s: input %q = %s does not conform to %s", m.ID, p.Name, v, p.Struct)
		}
		eff[p.Name] = v
	}
	outs, err := InvokeWithContext(ctx, m.exec, eff)
	if err != nil {
		// Transient transport faults are not the module speaking — they must
		// not become abnormal terminations, or the generation heuristic would
		// misreport a dropped connection as a semantically invalid input
		// combination. Stamp the module ID and pass them through.
		var te *TransientError
		if errors.As(err, &te) {
			if te.ModuleID == "" {
				te.ModuleID = m.ID
			}
			return nil, err
		}
		return nil, &ExecutionError{ModuleID: m.ID, Err: err}
	}
	for _, p := range m.Outputs {
		v, ok := outs[p.Name]
		if !ok {
			return nil, fmt.Errorf("module %s: executor returned no value for output %q", m.ID, p.Name)
		}
		if !typesys.Conforms(v, p.Struct) {
			return nil, fmt.Errorf("module %s: output %q = %s does not conform to %s", m.ID, p.Name, v, p.Struct)
		}
	}
	if len(outs) != len(m.Outputs) {
		extra := make([]string, 0, 1)
		for name := range outs {
			if _, ok := m.Output(name); !ok {
				extra = append(extra, name)
			}
		}
		sort.Strings(extra)
		return nil, fmt.Errorf("module %s: executor returned undeclared outputs %v", m.ID, extra)
	}
	return outs, nil
}
