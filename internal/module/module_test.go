package module

import (
	"errors"
	"strings"
	"testing"

	"dexa/internal/typesys"
)

// echoModule builds a simple valid module for tests: one required string
// input "in", one optional int "limit" (default 10), one string output.
func echoModule() *Module {
	m := &Module{
		ID:   "m1",
		Name: "Echo",
		Form: FormLocal,
		Kind: KindTransformation,
		Inputs: []Parameter{
			{Name: "in", Struct: typesys.StringType, Semantic: "BioSequence"},
			{Name: "limit", Struct: typesys.IntType, Semantic: "Limit", Optional: true, Default: typesys.Intv(10)},
		},
		Outputs: []Parameter{
			{Name: "out", Struct: typesys.StringType, Semantic: "BioSequence"},
		},
	}
	m.Bind(ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		s := in["in"].(typesys.StringValue)
		n := in["limit"].(typesys.IntValue)
		if int64(len(s)) > int64(n) {
			s = s[:n]
		}
		return map[string]typesys.Value{"out": s}, nil
	}))
	return m
}

func TestFormAndKindStrings(t *testing.T) {
	if FormLocal.String() != "local" || FormREST.String() != "rest" || FormSOAP.String() != "soap" {
		t.Error("form strings wrong")
	}
	if !strings.Contains(Form(9).String(), "9") {
		t.Error("unknown form string")
	}
	kinds := map[Kind]string{
		KindTransformation: "format transformation",
		KindRetrieval:      "data retrieval",
		KindMapping:        "mapping identifiers",
		KindFiltering:      "filtering",
		KindAnalysis:       "data analysis",
		KindUnknown:        "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestValidateOK(t *testing.T) {
	if err := echoModule().Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := echoModule()
	cases := []struct {
		name   string
		mutate func(m *Module)
	}{
		{"empty id", func(m *Module) { m.ID = "" }},
		{"empty name", func(m *Module) { m.Name = "" }},
		{"no inputs", func(m *Module) { m.Inputs = nil }},
		{"no outputs", func(m *Module) { m.Outputs = nil }},
		{"dup input", func(m *Module) { m.Inputs = append(m.Inputs, m.Inputs[0]) }},
		{"empty param name", func(m *Module) { m.Inputs[0].Name = "" }},
		{"invalid type", func(m *Module) { m.Inputs[0].Struct = typesys.Type{} }},
		{"bad default", func(m *Module) { m.Inputs[1].Default = typesys.Str("x") }},
		{"optional output", func(m *Module) { m.Outputs[0].Optional = true }},
	}
	for _, c := range cases {
		m := echoModule()
		c.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	_ = base
}

func TestInvokeHappyPath(t *testing.T) {
	m := echoModule()
	out, err := m.Invoke(map[string]typesys.Value{"in": typesys.Str("ACGT"), "limit": typesys.Intv(2)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !out["out"].Equal(typesys.Str("AC")) {
		t.Errorf("out = %v", out["out"])
	}
}

func TestInvokeOptionalDefault(t *testing.T) {
	m := echoModule()
	long := strings.Repeat("A", 25)
	out, err := m.Invoke(map[string]typesys.Value{"in": typesys.Str(long)})
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if !out["out"].Equal(typesys.Str(strings.Repeat("A", 10))) {
		t.Errorf("default limit not applied: %v", out["out"])
	}
	// Explicit null behaves like absent.
	out, err = m.Invoke(map[string]typesys.Value{"in": typesys.Str(long), "limit": typesys.Null})
	if err != nil {
		t.Fatalf("Invoke with null: %v", err)
	}
	if !out["out"].Equal(typesys.Str(strings.Repeat("A", 10))) {
		t.Errorf("null should trigger default: %v", out["out"])
	}
}

func TestInvokeOptionalWithoutDefaultGetsNull(t *testing.T) {
	m := echoModule()
	m.Inputs[1].Default = nil
	var sawNull bool
	m.Bind(ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		_, sawNull = in["limit"].(typesys.NullValue)
		return map[string]typesys.Value{"out": in["in"]}, nil
	}))
	if _, err := m.Invoke(map[string]typesys.Value{"in": typesys.Str("x")}); err != nil {
		t.Fatal(err)
	}
	if !sawNull {
		t.Error("executor should receive typesys.Null for absent optional without default")
	}
}

func TestInvokeValidationErrors(t *testing.T) {
	m := echoModule()
	cases := []struct {
		name   string
		inputs map[string]typesys.Value
	}{
		{"missing required", map[string]typesys.Value{"limit": typesys.Intv(1)}},
		{"unknown input", map[string]typesys.Value{"in": typesys.Str("x"), "bogus": typesys.Intv(1)}},
		{"wrong type", map[string]typesys.Value{"in": typesys.Intv(3)}},
		{"null required", map[string]typesys.Value{"in": typesys.Null}},
	}
	for _, c := range cases {
		if _, err := m.Invoke(c.inputs); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if IsExecutionError(err) {
			t.Errorf("%s: validation problems must not be ExecutionErrors: %v", c.name, err)
		}
	}
}

func TestInvokeUnbound(t *testing.T) {
	m := echoModule()
	m.exec = nil
	if m.Bound() {
		t.Error("Bound should be false")
	}
	if _, err := m.Invoke(map[string]typesys.Value{"in": typesys.Str("x")}); err == nil {
		t.Error("expected error for unbound module")
	}
}

func TestInvokeExecutionError(t *testing.T) {
	m := echoModule()
	m.Bind(ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return nil, ErrRejectedInput
	}))
	_, err := m.Invoke(map[string]typesys.Value{"in": typesys.Str("x")})
	if err == nil || !IsExecutionError(err) {
		t.Fatalf("expected ExecutionError, got %v", err)
	}
	if !errors.Is(err, ErrRejectedInput) {
		t.Errorf("cause lost: %v", err)
	}
	var ee *ExecutionError
	if !errors.As(err, &ee) || ee.ModuleID != "m1" {
		t.Errorf("module ID lost: %v", err)
	}
}

func TestInvokeOutputValidation(t *testing.T) {
	missing := echoModule()
	missing.Bind(ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{}, nil
	}))
	if _, err := missing.Invoke(map[string]typesys.Value{"in": typesys.Str("x")}); err == nil {
		t.Error("missing output should error")
	}

	wrongType := echoModule()
	wrongType.Bind(ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{"out": typesys.Intv(1)}, nil
	}))
	if _, err := wrongType.Invoke(map[string]typesys.Value{"in": typesys.Str("x")}); err == nil {
		t.Error("wrong output type should error")
	}

	extra := echoModule()
	extra.Bind(ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{"out": typesys.Str("y"), "spurious": typesys.Intv(1)}, nil
	}))
	if _, err := extra.Invoke(map[string]typesys.Value{"in": typesys.Str("x")}); err == nil {
		t.Error("undeclared output should error")
	}
}

func TestParamAccessors(t *testing.T) {
	m := echoModule()
	if p, ok := m.Input("limit"); !ok || !p.Optional {
		t.Errorf("Input(limit) = %+v, %v", p, ok)
	}
	if _, ok := m.Input("out"); ok {
		t.Error("outputs are not inputs")
	}
	if p, ok := m.Output("out"); !ok || p.Semantic != "BioSequence" {
		t.Errorf("Output(out) = %+v, %v", p, ok)
	}
	if got := m.InputNames(); len(got) != 2 || got[0] != "in" || got[1] != "limit" {
		t.Errorf("InputNames = %v", got)
	}
	if got := m.OutputNames(); len(got) != 1 || got[0] != "out" {
		t.Errorf("OutputNames = %v", got)
	}
}
