package module

import (
	"context"
	"errors"
	"fmt"

	"dexa/internal/typesys"
)

// FaultKind classifies a transient transport fault. The taxonomy exists to
// keep two very different failures apart: an *execution error* is the
// module speaking ("this input combination is outside my domain" — the
// paper's abnormal-termination signal, §3.2), while a *transient fault* is
// the network or the provider's infrastructure speaking (timeouts,
// throttling, flapping availability — the service-decay reality of §6).
// Conflating them corrupts generated data examples: a dropped connection
// would masquerade as a semantically invalid partition.
type FaultKind int

// The transient fault kinds.
const (
	// FaultUnknown is an unclassified transient fault.
	FaultUnknown FaultKind = iota
	// FaultTimeout: the call exceeded its deadline.
	FaultTimeout
	// FaultConnection: the connection failed, reset, or dropped mid-flight.
	FaultConnection
	// FaultThrottled: the provider rejected the call due to rate limiting
	// (HTTP 429).
	FaultThrottled
	// FaultUnavailable: the provider is temporarily down (HTTP 5xx, open
	// circuit breaker, flapping service window).
	FaultUnavailable
	// FaultMalformed: the provider answered 200 but the body was truncated
	// or garbage — common when chaos (or a broken proxy) garbles a reply.
	FaultMalformed
)

// String returns the lexical fault-kind name.
func (k FaultKind) String() string {
	switch k {
	case FaultTimeout:
		return "timeout"
	case FaultConnection:
		return "connection"
	case FaultThrottled:
		return "throttled"
	case FaultUnavailable:
		return "unavailable"
	case FaultMalformed:
		return "malformed"
	default:
		return "unknown"
	}
}

// TransientError reports a transport-level fault during a module
// invocation. It is retryable and is never an abnormal termination:
// Module.Invoke passes it through unwrapped (rather than converting it to
// an *ExecutionError), so the generation heuristic can retry the
// combination instead of discarding its partition class.
type TransientError struct {
	// ModuleID names the module whose invocation faulted; may be empty when
	// the fault happened below the module layer.
	ModuleID string
	// Kind classifies the fault.
	Kind FaultKind
	// Status is the HTTP status that triggered the fault, when applicable.
	Status int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TransientError) Error() string {
	id := e.ModuleID
	if id == "" {
		id = "?"
	}
	if e.Status != 0 {
		return fmt.Sprintf("module %s: transient %s fault (status %d): %v", id, e.Kind, e.Status, e.Err)
	}
	return fmt.Sprintf("module %s: transient %s fault: %v", id, e.Kind, e.Err)
}

// Unwrap returns the underlying cause.
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is (or wraps) a TransientError — a
// retryable transport fault rather than a module-level abnormal
// termination.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// FaultKindOf returns the fault kind of a transient error, or FaultUnknown
// and false when err is not transient.
func FaultKindOf(err error) (FaultKind, bool) {
	var te *TransientError
	if errors.As(err, &te) {
		return te.Kind, true
	}
	return FaultUnknown, false
}

// Transient wraps err as a TransientError of the given kind. A nil err
// yields a TransientError with a generic cause so callers can always
// return the result directly.
func Transient(moduleID string, kind FaultKind, err error) *TransientError {
	if err == nil {
		err = errors.New(kind.String() + " fault")
	}
	return &TransientError{ModuleID: moduleID, Kind: kind, Err: err}
}

// ContextExecutor is an Executor whose invocations honour a context
// deadline or cancellation. Remote executors (REST, SOAP) implement it;
// the resilient wrapper uses it to enforce per-attempt timeouts.
type ContextExecutor interface {
	Executor
	InvokeContext(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error)
}

// InvokeWithContext invokes exec with ctx when it supports contexts, and
// plainly otherwise.
func InvokeWithContext(ctx context.Context, exec Executor, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	if ce, ok := exec.(ContextExecutor); ok {
		return ce.InvokeContext(ctx, inputs)
	}
	return exec.Invoke(inputs)
}
