package buildinfo

import (
	"strings"
	"testing"
)

func TestStringCarriesVersionAndGo(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "dexa "+Version) {
		t.Errorf("String() = %q, want prefix %q", s, "dexa "+Version)
	}
	if !strings.Contains(s, "go") {
		t.Errorf("String() = %q carries no go version", s)
	}
}

func TestGetDefaults(t *testing.T) {
	info := Get()
	if info.Version != Version {
		t.Errorf("Version = %q, want %q", info.Version, Version)
	}
	if info.GoVersion == "" {
		t.Error("GoVersion empty")
	}
}
