// Package buildinfo identifies a dexa binary: the release version (set
// at link time) plus whatever the Go toolchain embedded about the build
// — VCS revision, dirty flag, go version. Every command's -version flag
// prints String().
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// Version is the release identifier, overridden at link time:
//
//	go build -ldflags "-X dexa/internal/buildinfo.Version=v1.2.3"
var Version = "dev"

// Info is the resolved build identity.
type Info struct {
	Version   string `json:"version"`
	GoVersion string `json:"goVersion"`
	Revision  string `json:"revision,omitempty"`
	Time      string `json:"time,omitempty"`
	Dirty     bool   `json:"dirty,omitempty"`
}

// Get resolves the build identity from the linker-set version and the
// embedded VCS metadata (absent in test binaries and plain `go run`).
func Get() Info {
	info := Info{Version: Version, GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, e.g.
// "dexa dev (go1.24.2, rev 1a2b3c4d, dirty)".
func String() string {
	info := Get()
	var b strings.Builder
	fmt.Fprintf(&b, "dexa %s (%s", info.Version, info.GoVersion)
	if info.Revision != "" {
		rev := info.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, ", rev %s", rev)
	}
	if info.Dirty {
		b.WriteString(", dirty")
	}
	b.WriteString(")")
	return b.String()
}
