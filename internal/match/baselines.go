package match

import (
	"sort"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/ontology"
)

// SignatureMatch implements the Paolucci-style baseline: a candidate
// matches a target purely when a parameter mapping exists — the task the
// modules fulfil is never checked. The paper's Example 4 shows why this is
// too weak: several homology-search services share the GetHomologous
// signature yet use different alignment algorithms and deliver different
// results.
func SignatureMatch(ont *ontology.Ontology, target, candidate *module.Module, mode Mode) bool {
	_, ok := MapParameters(ont, target, candidate, mode)
	return ok
}

// SignatureCandidates returns, in ID order, every candidate whose
// signature maps onto the target's.
func SignatureCandidates(ont *ontology.Ontology, target *module.Module, candidates []*module.Module, mode Mode) []*module.Module {
	var out []*module.Module
	for _, c := range candidates {
		if c.ID == target.ID {
			continue
		}
		if SignatureMatch(ont, target, c, mode) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TraceSimilarity implements the unprincipled provenance-trace baseline of
// the authors' earlier work ([4] in the paper): given raw recorded
// input/output pairs for two modules (no partition guidance, no aligned
// value selection), it measures how similar the modules look — the
// fraction of shared inputs that produced identical outputs, weighted by
// how many inputs are shared at all. Traces rarely share inputs, which is
// exactly the weakness the §6 method fixes by construction.
type TraceSimilarity struct {
	// SharedInputs is how many distinct input assignments occur in both
	// trace sets.
	SharedInputs int
	// Agreeing is how many of the shared inputs produced equal outputs.
	Agreeing int
	// TargetInputs is the number of distinct inputs in the target's traces.
	TargetInputs int
}

// Score is Agreeing over TargetInputs: the evidence the traces provide
// that the candidate behaves like the target everywhere the target was
// observed. Unshared inputs provide no evidence and drag the score down.
func (s TraceSimilarity) Score() float64 {
	if s.TargetInputs == 0 {
		return 0
	}
	return float64(s.Agreeing) / float64(s.TargetInputs)
}

// CompareTraces computes trace similarity between two raw example sets
// with identical parameter naming (the baseline has no mapping machinery;
// the paper's earlier work compared same-schema provenance only).
func CompareTraces(target, candidate dataexample.Set) TraceSimilarity {
	tIdx := target.ByInputKey()
	cIdx := candidate.ByInputKey()
	sim := TraceSimilarity{TargetInputs: len(tIdx)}
	for k, te := range tIdx {
		ce, ok := cIdx[k]
		if !ok {
			continue
		}
		sim.SharedInputs++
		if te.SameOutputs(ce) {
			sim.Agreeing++
		}
	}
	return sim
}
