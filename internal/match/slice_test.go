package match

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"testing"

	"dexa/internal/dataexample"
)

// keyedSource wraps a plain set map with a shared symbol table, the way
// MatchMatrixFromSets does internally.
func keyedSource(sets map[string]dataexample.Set) KeyedSource {
	tab := dataexample.NewSymbolTable()
	keyed := map[string]*dataexample.KeyedSet{}
	return func(id string) (*dataexample.KeyedSet, bool) {
		set, ok := sets[id]
		if !ok {
			return nil, false
		}
		ks, ok := keyed[id]
		if !ok {
			ks = set.KeyedInterned(tab)
			keyed[id] = ks
		}
		return ks, true
	}
}

// TestMatrixSliceMergeEqualsOracle: splitting the sweep into per-shard
// slices and merging must reproduce the single-node matrix byte for byte
// — at every shard count, worker width, mode, and with and without the
// index.
func TestMatrixSliceMergeEqualsOracle(t *testing.T) {
	f, mods, sets := matrixWorld(t)
	for _, mode := range []Mode{ModeExact, ModeRelaxed} {
		for _, indexed := range []bool{false, true} {
			f.cmp.Mode = mode
			f.cmp.Index = nil
			if indexed {
				f.cmp.Index = NewCatalogIndex(f.ont, mods)
			}
			f.cmp.Workers = 1
			oracle, err := f.cmp.MatchMatrixFromSets(context.Background(), mods, setSource(sets))
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(oracle)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 3, 5} {
				for _, workers := range []int{1, 4} {
					f.cmp.Workers = workers
					source := keyedSource(sets)
					slices := make([]*MatchMatrix, shards)
					for sh := 0; sh < shards; sh++ {
						owner := func(id string) bool {
							h := fnv.New32a()
							h.Write([]byte(id))
							return int(h.Sum32())%shards == sh
						}
						sl, err := f.cmp.MatchMatrixSlice(context.Background(), mods, source, owner)
						if err != nil {
							t.Fatal(err)
						}
						slices[sh] = sl
					}
					got, err := json.Marshal(MergeMatrixSlices(slices))
					if err != nil {
						t.Fatal(err)
					}
					if string(got) != string(want) {
						t.Errorf("%s/indexed=%v/shards=%d/workers=%d: merged slices diverged from oracle\n got %s\nwant %s",
							mode, indexed, shards, workers, got, want)
					}
				}
			}
		}
	}
}

// TestMatrixSliceStatsPartition: each unordered pair is owned by exactly
// one slice, so no cell appears twice and empty assignments yield empty
// slices, not errors.
func TestMatrixSliceStatsPartition(t *testing.T) {
	f, mods, sets := matrixWorld(t)
	f.cmp.Index = NewCatalogIndex(f.ont, mods)
	f.cmp.Workers = 2

	none, err := f.cmp.MatchMatrixSlice(context.Background(), mods, keyedSource(sets), func(string) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Cells) != 0 || none.Stats.Pairs != 0 || none.Stats.Compared != 0 {
		t.Errorf("empty assignment produced work: %+v", none.Stats)
	}
	if none.Stats.Modules == 0 {
		t.Error("slice lost the universe size")
	}

	all, err := f.cmp.MatchMatrixSlice(context.Background(), mods, keyedSource(sets), func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if n := all.Stats.Modules; all.Stats.Pairs != n*(n-1) {
		t.Errorf("full assignment covers %d pairs, want %d", all.Stats.Pairs, n*(n-1))
	}
	seen := map[[2]string]bool{}
	for _, c := range all.Cells {
		k := [2]string{c.Target, c.Candidate}
		if seen[k] {
			t.Fatalf("cell %v emitted twice", k)
		}
		seen[k] = true
	}
}
