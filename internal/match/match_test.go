package match

import (
	"strings"
	"testing"

	"dexa/internal/core"
	"dexa/internal/dataexample"
	"dexa/internal/instances"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/typesys"
)

type fixture struct {
	ont  *ontology.Ontology
	pool *instances.Pool
	gen  *core.Generator
	cmp  *Comparer
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	o := ontology.New("t")
	o.MustAddConcept("Data", "")
	o.MustAddConcept("Seq", "", "Data")
	o.MustAddConcept("DNA", "", "Seq")
	o.MustAddConcept("RNA", "", "Seq")
	o.MustAddConcept("Prot", "", "Seq")
	o.MustAddConcept("Acc", "", "Data")

	p := instances.NewPool(o)
	p.MustAdd("Seq", typesys.Str("XXXX"), "")
	p.MustAdd("DNA", typesys.Str("ACGT"), "")
	p.MustAdd("RNA", typesys.Str("ACGU"), "")
	p.MustAdd("Prot", typesys.Str("MKTW"), "")
	p.MustAdd("Acc", typesys.Str("P12345"), "")

	g := core.NewGenerator(o, p)
	return &fixture{ont: o, pool: p, gen: g, cmp: NewComparer(o, g)}
}

// seqModule builds a Seq->Acc module computing fn.
func seqModule(id string, fn func(s string) (string, error)) *module.Module {
	m := &module.Module{
		ID: id, Name: id,
		Inputs:  []module.Parameter{{Name: "seq", Struct: typesys.StringType, Semantic: "Seq"}},
		Outputs: []module.Parameter{{Name: "acc", Struct: typesys.StringType, Semantic: "Acc"}},
	}
	m.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		out, err := fn(string(in["seq"].(typesys.StringValue)))
		if err != nil {
			return nil, err
		}
		return map[string]typesys.Value{"acc": typesys.Str(out)}, nil
	}))
	return m
}

func prefixer(prefix string) func(string) (string, error) {
	return func(s string) (string, error) { return prefix + s, nil }
}

func TestMapParametersExact(t *testing.T) {
	f := newFixture(t)
	a := seqModule("a", prefixer("X:"))
	b := seqModule("b", prefixer("X:"))
	b.Inputs[0].Name = "sequence" // names differ; semantics align
	m, ok := MapParameters(f.ont, a, b, ModeExact)
	if !ok {
		t.Fatal("mapping should exist")
	}
	if m.Inputs["seq"] != "sequence" || m.Outputs["acc"] != "acc" {
		t.Errorf("mapping = %+v", m)
	}
	// Different concept: no exact mapping.
	c := seqModule("c", prefixer("X:"))
	c.Inputs[0].Semantic = "DNA"
	if _, ok := MapParameters(f.ont, a, c, ModeExact); ok {
		t.Error("exact mapping should reject subconcept input")
	}
	// Different structural type: no mapping in any mode.
	d := seqModule("d", prefixer("X:"))
	d.Inputs[0].Struct = typesys.IntType
	if _, ok := MapParameters(f.ont, a, d, ModeRelaxed); ok {
		t.Error("structural mismatch must fail")
	}
}

func TestMapParametersRelaxed(t *testing.T) {
	f := newFixture(t)
	target := seqModule("target", prefixer("X:"))
	target.Inputs[0].Semantic = "Prot"
	target.Outputs[0].Semantic = "Prot"
	cand := seqModule("cand", prefixer("X:"))
	cand.Inputs[0].Semantic = "Seq" // superconcept: accepts more
	cand.Outputs[0].Semantic = "Seq"
	if _, ok := MapParameters(f.ont, target, cand, ModeExact); ok {
		t.Error("exact should fail")
	}
	if _, ok := MapParameters(f.ont, target, cand, ModeRelaxed); !ok {
		t.Error("relaxed should succeed (Figure 7 case)")
	}
	// The reverse direction (candidate narrower than target) must fail:
	// the candidate would reject inputs the target accepted.
	if _, ok := MapParameters(f.ont, cand, target, ModeRelaxed); ok {
		t.Error("narrower candidate input must not map")
	}
}

func TestBijectionBacktracking(t *testing.T) {
	f := newFixture(t)
	// Two same-typed inputs with different concepts force the search to
	// try orders.
	target := &module.Module{
		ID: "t", Name: "t",
		Inputs: []module.Parameter{
			{Name: "a", Struct: typesys.StringType, Semantic: "DNA"},
			{Name: "b", Struct: typesys.StringType, Semantic: "Seq"},
		},
		Outputs: []module.Parameter{{Name: "o", Struct: typesys.StringType, Semantic: "Acc"}},
	}
	cand := &module.Module{
		ID: "c", Name: "c",
		Inputs: []module.Parameter{
			{Name: "x", Struct: typesys.StringType, Semantic: "Seq"},
			{Name: "y", Struct: typesys.StringType, Semantic: "DNA"},
		},
		Outputs: []module.Parameter{{Name: "o2", Struct: typesys.StringType, Semantic: "Acc"}},
	}
	m, ok := MapParameters(f.ont, target, cand, ModeExact)
	if !ok || m.Inputs["a"] != "y" || m.Inputs["b"] != "x" {
		t.Errorf("mapping = %+v, ok=%v", m, ok)
	}
	// Relaxed mode has two possibilities for "a" (both Seq and DNA subsume
	// or equal DNA? Seq subsumes DNA, DNA equals DNA): still must cover "b".
	m, ok = MapParameters(f.ont, target, cand, ModeRelaxed)
	if !ok || m.Inputs["b"] != "x" {
		t.Errorf("relaxed mapping = %+v, ok=%v", m, ok)
	}
}

func TestMappingOptionalCandidateInput(t *testing.T) {
	f := newFixture(t)
	target := seqModule("t", prefixer("X:"))
	cand := seqModule("c", prefixer("X:"))
	cand.Inputs = append(cand.Inputs, module.Parameter{
		Name: "limit", Struct: typesys.FloatType, Semantic: "Data", Optional: true, Default: typesys.Floatv(1),
	})
	if _, ok := MapParameters(f.ont, target, cand, ModeExact); !ok {
		t.Error("unmapped optional candidate input should be skippable")
	}
	// A required extra candidate input blocks the mapping.
	cand.Inputs[1].Optional = false
	if _, ok := MapParameters(f.ont, target, cand, ModeExact); ok {
		t.Error("unmapped required candidate input must fail")
	}
	// Extra candidate output blocks the mapping (outputs must be 1-to-1).
	cand2 := seqModule("c2", prefixer("X:"))
	cand2.Outputs = append(cand2.Outputs, module.Parameter{Name: "extra", Struct: typesys.StringType, Semantic: "Acc"})
	if _, ok := MapParameters(f.ont, target, cand2, ModeExact); ok {
		t.Error("extra candidate output must fail")
	}
}

func TestCompareVerdicts(t *testing.T) {
	f := newFixture(t)
	target := seqModule("target", prefixer("X:"))

	equiv := seqModule("equiv", prefixer("X:"))
	res, err := f.cmp.Compare(target, equiv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent || res.Compared != 4 || res.Agreeing != 4 {
		t.Errorf("equiv: %+v", res)
	}

	overlap := seqModule("overlap", func(s string) (string, error) {
		if strings.Contains(s, "U") {
			return "Y:" + s, nil
		}
		return "X:" + s, nil
	})
	res, err = f.cmp.Compare(target, overlap)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Overlapping || res.Agreeing != 3 || res.Compared != 4 {
		t.Errorf("overlap: %+v", res)
	}
	if res.Score() != 0.75 {
		t.Errorf("score = %v", res.Score())
	}

	disj := seqModule("disj", prefixer("Z:"))
	res, err = f.cmp.Compare(target, disj)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Disjoint || res.Agreeing != 0 {
		t.Errorf("disjoint: %+v", res)
	}

	// Incomparable signature.
	inc := seqModule("inc", prefixer("X:"))
	inc.Inputs[0].Semantic = "Acc"
	res, err = f.cmp.Compare(target, inc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Incomparable {
		t.Errorf("incomparable: %+v", res)
	}
	if Incomparable.String() != "incomparable" || Equivalent.String() != "equivalent" ||
		Overlapping.String() != "overlapping" || Disjoint.String() != "disjoint" {
		t.Error("verdict names")
	}
}

func TestCompareAgainstExamples(t *testing.T) {
	f := newFixture(t)
	target := seqModule("gone", prefixer("X:"))
	set, _, err := f.gen.Generate(target)
	if err != nil {
		t.Fatal(err)
	}
	// The target module disappears; only signature+examples remain.
	sig := seqModule("gone", nil)
	sig.Bind(nil)

	cand := seqModule("cand", prefixer("X:"))
	res, err := f.cmp.CompareAgainstExamples(sig, set, cand)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent || res.Compared != len(set) {
		t.Errorf("equiv against examples: %+v", res)
	}

	// Candidate erroring on some inputs counts those as disagreement.
	flaky := seqModule("flaky", func(s string) (string, error) {
		if strings.Contains(s, "U") {
			return "", module.ErrRejectedInput
		}
		return "X:" + s, nil
	})
	res, err = f.cmp.CompareAgainstExamples(sig, set, flaky)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Overlapping || res.Agreeing != 3 || res.Compared != 4 {
		t.Errorf("flaky: %+v", res)
	}
}

func TestRestrictToContext(t *testing.T) {
	f := newFixture(t)
	target := seqModule("t", prefixer("X:"))
	set, _, err := f.gen.Generate(target)
	if err != nil {
		t.Fatal(err)
	}
	// Context: only protein sequences flow into this step.
	got := RestrictToContext(f.ont, set, map[string]string{"seq": "Prot"})
	if len(got) != 1 || got[0].InputPartitions["seq"] != "Prot" {
		t.Errorf("context restriction = %v", got)
	}
	// Context at Seq keeps everything.
	got = RestrictToContext(f.ont, set, map[string]string{"seq": "Seq"})
	if len(got) != 4 {
		t.Errorf("broad context = %d", len(got))
	}
	// Unknown context parameter removes all.
	got = RestrictToContext(f.ont, set, map[string]string{"nope": "Seq"})
	if len(got) != 0 {
		t.Errorf("unknown param context = %d", len(got))
	}
}

// TestFigure7Scenario: the substitute has semantically broader parameters;
// relaxed comparison against the context-restricted examples certifies it.
func TestFigure7Scenario(t *testing.T) {
	f := newFixture(t)
	// GetProteinSequence: Prot accession-like values -> Prot sequence.
	target := seqModule("GetProteinSequence", prefixer("SEQ:"))
	target.Inputs[0].Semantic = "Prot"
	target.Outputs[0].Semantic = "Prot"
	set, _, err := f.gen.Generate(target)
	if err != nil {
		t.Fatal(err)
	}
	// GetBiologicalSequence agrees with the target on proteins but treats
	// nucleotide input differently.
	cand := seqModule("GetBiologicalSequence", func(s string) (string, error) {
		if strings.Trim(s, "ACGTUN") == "" {
			return "NUC:" + s, nil
		}
		return "SEQ:" + s, nil
	})
	cand.Inputs[0].Semantic = "Seq"
	cand.Outputs[0].Semantic = "Seq"

	f.cmp.Mode = ModeRelaxed
	ctx := RestrictToContext(f.ont, set, map[string]string{"seq": "Prot"})
	res, err := f.cmp.CompareAgainstExamples(target, ctx, cand)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent {
		t.Errorf("contextual verdict = %+v", res)
	}
}

// TestCompareLiveRelaxed exercises the live (generate-both-sides) path
// under relaxed mapping: the candidate's broader domain generates more
// examples, and the verdict is computed over the aligned pairs only.
func TestCompareLiveRelaxed(t *testing.T) {
	f := newFixture(t)
	target := seqModule("narrow", prefixer("X:"))
	target.Inputs[0].Semantic = "Prot"
	target.Outputs[0].Semantic = "Prot"
	cand := seqModule("broad", prefixer("X:"))
	cand.Inputs[0].Semantic = "Seq"
	cand.Outputs[0].Semantic = "Seq"

	// Exact mode: incomparable.
	res, err := f.cmp.Compare(target, cand)
	if err != nil || res.Verdict != Incomparable {
		t.Fatalf("exact: %+v, %v", res, err)
	}
	// Relaxed mode: aligned on the single shared (protein) input value.
	f.cmp.Mode = ModeRelaxed
	defer func() { f.cmp.Mode = ModeExact }()
	res, err = f.cmp.Compare(target, cand)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Equivalent || res.Compared != 1 {
		t.Errorf("relaxed: %+v", res)
	}
	if len(res.AgreeingKeys) != 1 {
		t.Errorf("agreeing keys = %v", res.AgreeingKeys)
	}
}

func TestFindSubstitutes(t *testing.T) {
	f := newFixture(t)
	target := seqModule("gone", prefixer("X:"))
	set, _, err := f.gen.Generate(target)
	if err != nil {
		t.Fatal(err)
	}
	un := Unavailable{Signature: target, Examples: set}
	overlapping := seqModule("overlapping", func(s string) (string, error) {
		if strings.Contains(s, "U") {
			return "Y:" + s, nil
		}
		return "X:" + s, nil
	})
	candidates := []*module.Module{
		seqModule("zz-equiv", prefixer("X:")),
		overlapping,
		seqModule("disjoint", prefixer("Z:")),
		seqModule("aa-equiv", prefixer("X:")),
	}
	subs, err := f.cmp.FindSubstitutes(un, candidates)
	if err != nil {
		t.Fatal(err)
	}
	got := subs.Ranked
	if len(got) != 3 {
		t.Fatalf("substitutes = %d", len(got))
	}
	if got[0].Module.ID != "aa-equiv" || got[1].Module.ID != "zz-equiv" || got[2].Module.ID != "overlapping" {
		t.Errorf("ranking = %s, %s, %s", got[0].Module.ID, got[1].Module.ID, got[2].Module.ID)
	}
	if len(subs.Skipped) != 0 {
		t.Errorf("skipped = %v, want none", subs.Skipped)
	}
	best, err := f.cmp.BestSubstitute(un, candidates)
	if err != nil || best == nil || best.Module.ID != "aa-equiv" {
		t.Errorf("best = %+v, %v", best, err)
	}

	// The target itself is skipped; no candidates -> nil.
	none, err := f.cmp.BestSubstitute(un, []*module.Module{target})
	if err != nil || none != nil {
		t.Errorf("self-match = %+v, %v", none, err)
	}

	if _, err := f.cmp.FindSubstitutes(Unavailable{}, candidates); err == nil {
		t.Error("missing signature should fail")
	}
	if _, err := f.cmp.FindSubstitutes(Unavailable{Signature: target}, candidates); err == nil {
		t.Error("missing examples should fail")
	}
}

func TestSignatureBaseline(t *testing.T) {
	f := newFixture(t)
	target := seqModule("t", prefixer("X:"))
	sameSig := seqModule("same", prefixer("Z:")) // different behaviour!
	diffSig := seqModule("diff", prefixer("X:"))
	diffSig.Inputs[0].Semantic = "Acc"
	if !SignatureMatch(f.ont, target, sameSig, ModeExact) {
		t.Error("signature baseline should accept same signature")
	}
	if SignatureMatch(f.ont, target, diffSig, ModeExact) {
		t.Error("signature baseline should reject different signature")
	}
	got := SignatureCandidates(f.ont, target, []*module.Module{target, sameSig, diffSig}, ModeExact)
	if len(got) != 1 || got[0].ID != "same" {
		t.Errorf("candidates = %v", got)
	}
}

func TestTraceBaseline(t *testing.T) {
	mk := func(in, out string) dataexample.Example {
		return dataexample.Example{
			Inputs:  map[string]typesys.Value{"seq": typesys.Str(in)},
			Outputs: map[string]typesys.Value{"acc": typesys.Str(out)},
		}
	}
	target := dataexample.Set{mk("A", "X:A"), mk("B", "X:B"), mk("C", "X:C")}
	// Candidate traces share only one input, agreeing on it.
	cand := dataexample.Set{mk("A", "X:A"), mk("Q", "X:Q")}
	sim := CompareTraces(target, cand)
	if sim.SharedInputs != 1 || sim.Agreeing != 1 || sim.TargetInputs != 3 {
		t.Errorf("sim = %+v", sim)
	}
	if got := sim.Score(); got < 0.33 || got > 0.34 {
		t.Errorf("score = %v", got)
	}
	if (TraceSimilarity{}).Score() != 0 {
		t.Error("empty trace score should be 0")
	}
	// Same inputs, conflicting outputs: shared but not agreeing.
	conflict := dataexample.Set{mk("A", "Z:A")}
	sim = CompareTraces(target, conflict)
	if sim.SharedInputs != 1 || sim.Agreeing != 0 {
		t.Errorf("conflict sim = %+v", sim)
	}
}

func TestModeString(t *testing.T) {
	if ModeExact.String() != "exact" || ModeRelaxed.String() != "relaxed" {
		t.Error("mode names")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode")
	}
}
