// Package match implements scientific-module comparison based on data
// examples (paper §6).
//
// Two modules are comparable when a 1-to-1 mapping exists between their
// inputs (and outputs) connecting parameters with compatible semantic
// domains and structures. Their behaviour is then compared by aligning
// data examples with identical input values — possible because example
// generation draws values deterministically per (concept, grounding) from
// the shared instance pool — and contrasting the outputs:
//
//   - Equivalent: every aligned pair produces the same outputs
//     ("eventually equivalent" — the heuristic may miss corner behaviour).
//   - Overlapping: some but not all pairs agree.
//   - Disjoint: no pair agrees.
//
// The package also implements the relaxed, context-aware mapping of the
// Figure-7 scenario (a substitute whose input concept strictly subsumes
// the original's still behaves identically on the values that actually
// flow in the workflow) and two baselines used by the ablation bench:
// signature-only matching (Paolucci et al.) and unprincipled
// provenance-trace matching (Belhajjame et al. 2011).
package match

import (
	"fmt"

	"dexa/internal/module"
	"dexa/internal/ontology"
)

// Mode selects how strictly parameters must correspond.
type Mode int

const (
	// ModeExact requires mapped parameters to have identical semantic
	// concepts and identical structural types.
	ModeExact Mode = iota
	// ModeRelaxed additionally accepts a candidate input whose concept
	// subsumes the target's (it accepts everything the target accepted) and
	// a candidate output whose concept is related to the target's by
	// subsumption in either direction. Structural types must still match.
	ModeRelaxed
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeRelaxed:
		return "relaxed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Mapping is a 1-to-1 correspondence between the parameters of a target
// module and a candidate module, keyed by target parameter name.
type Mapping struct {
	Inputs  map[string]string
	Outputs map[string]string
}

// MapParameters finds a parameter mapping from target to candidate under
// the given mode, or reports that none exists. Both sides must be mapped
// completely (the paper requires a 1-to-1 mapping over all inputs and all
// outputs). Optional candidate inputs that remain unmapped are allowed —
// they fall back to their defaults.
func MapParameters(ont *ontology.Ontology, target, candidate *module.Module, mode Mode) (Mapping, bool) {
	inOK := func(t, c module.Parameter) bool {
		if !t.Struct.Equal(c.Struct) {
			return false
		}
		if mode == ModeExact {
			return t.Semantic == c.Semantic
		}
		// Relaxed: the candidate must accept at least everything the target
		// accepts.
		return ont.Subsumes(c.Semantic, t.Semantic)
	}
	outOK := func(t, c module.Parameter) bool {
		if !t.Struct.Equal(c.Struct) {
			return false
		}
		if mode == ModeExact {
			return t.Semantic == c.Semantic
		}
		return ont.Subsumes(c.Semantic, t.Semantic) || ont.Subsumes(t.Semantic, c.Semantic)
	}
	ins, ok := bijection(requiredInputs(target), candidate.Inputs, inOK, optionalSet(candidate))
	if !ok {
		return Mapping{}, false
	}
	outs, ok := bijection(target.Outputs, candidate.Outputs, outOK, nil)
	if !ok {
		return Mapping{}, false
	}
	return Mapping{Inputs: ins, Outputs: outs}, true
}

// requiredInputs returns the target inputs that must be mapped: all of
// them. (Target optional inputs are part of its observable behaviour, so
// they participate in the mapping too.)
func requiredInputs(m *module.Module) []module.Parameter { return m.Inputs }

func optionalSet(m *module.Module) map[string]bool {
	opt := map[string]bool{}
	for _, p := range m.Inputs {
		if p.Optional {
			opt[p.Name] = true
		}
	}
	return opt
}

// bijection finds an injective mapping covering every parameter in `from`
// onto distinct parameters in `to` satisfying ok. Parameters of `to` left
// unmatched are permitted only when listed in skippable (optional
// candidate inputs). Backtracking search — parameter lists are tiny.
func bijection(from, to []module.Parameter, ok func(a, b module.Parameter) bool, skippable map[string]bool) (map[string]string, bool) {
	if len(from) > len(to) {
		return nil, false
	}
	used := make([]bool, len(to))
	assign := make(map[string]string, len(from))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(from) {
			// All target parameters mapped; any unmapped candidate parameter
			// must be skippable.
			for j, u := range used {
				if !u && skippable != nil && !skippable[to[j].Name] {
					return false
				}
				if !u && skippable == nil && len(from) != len(to) {
					return false
				}
			}
			return true
		}
		for j := range to {
			if used[j] || !ok(from[i], to[j]) {
				continue
			}
			used[j] = true
			assign[from[i].Name] = to[j].Name
			if rec(i + 1) {
				return true
			}
			used[j] = false
			delete(assign, from[i].Name)
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return assign, true
}
