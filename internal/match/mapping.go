// Package match implements scientific-module comparison based on data
// examples (paper §6).
//
// Two modules are comparable when a 1-to-1 mapping exists between their
// inputs (and outputs) connecting parameters with compatible semantic
// domains and structures. Their behaviour is then compared by aligning
// data examples with identical input values — possible because example
// generation draws values deterministically per (concept, grounding) from
// the shared instance pool — and contrasting the outputs:
//
//   - Equivalent: every aligned pair produces the same outputs
//     ("eventually equivalent" — the heuristic may miss corner behaviour).
//   - Overlapping: some but not all pairs agree.
//   - Disjoint: no pair agrees.
//
// The package also implements the relaxed, context-aware mapping of the
// Figure-7 scenario (a substitute whose input concept strictly subsumes
// the original's still behaves identically on the values that actually
// flow in the workflow) and two baselines used by the ablation bench:
// signature-only matching (Paolucci et al.) and unprincipled
// provenance-trace matching (Belhajjame et al. 2011).
package match

import (
	"fmt"

	"dexa/internal/module"
	"dexa/internal/ontology"
)

// Mode selects how strictly parameters must correspond.
type Mode int

const (
	// ModeExact requires mapped parameters to have identical semantic
	// concepts and identical structural types.
	ModeExact Mode = iota
	// ModeRelaxed additionally accepts a candidate input whose concept
	// subsumes the target's (it accepts everything the target accepted) and
	// a candidate output whose concept is related to the target's by
	// subsumption in either direction. Structural types must still match.
	ModeRelaxed
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeRelaxed:
		return "relaxed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Mapping is a 1-to-1 correspondence between the parameters of a target
// module and a candidate module, keyed by target parameter name.
type Mapping struct {
	Inputs  map[string]string
	Outputs map[string]string
}

// MapParameters finds a parameter mapping from target to candidate under
// the given mode, or reports that none exists. Both sides must be mapped
// completely (the paper requires a 1-to-1 mapping over all inputs and all
// outputs). Optional candidate inputs that remain unmapped are allowed —
// they fall back to their defaults.
func MapParameters(ont *ontology.Ontology, target, candidate *module.Module, mode Mode) (Mapping, bool) {
	return mapParametersInto(nil, ont, target, candidate, mode)
}

// mappingSlot is reusable scratch for one derived Mapping: the assignment
// maps, the optional-input set and the backtracking used-vector. A warm
// matrix sweep re-derives a mapping per cell; with a slot the derivation
// allocates nothing. The Mapping returned against a slot aliases the
// slot's maps and is valid only until the slot's next use — callers that
// keep a mapping (the matrix keeps none; Result.Mapping holds the alias
// only within a cell's computation) must clone it.
type mappingSlot struct {
	ins  map[string]string
	outs map[string]string
	opt  map[string]bool
	used []bool
}

func (sl *mappingSlot) reset(nTo int) {
	if sl.ins == nil {
		sl.ins = make(map[string]string, 4)
		sl.outs = make(map[string]string, 4)
		sl.opt = make(map[string]bool, 4)
	}
	clear(sl.ins)
	clear(sl.outs)
	clear(sl.opt)
	if cap(sl.used) < nTo {
		sl.used = make([]bool, nTo)
	}
	sl.used = sl.used[:nTo]
	for i := range sl.used {
		sl.used[i] = false
	}
}

// mapParametersInto is MapParameters with caller-owned scratch; a nil
// slot allocates fresh maps (identical to MapParameters).
func mapParametersInto(sl *mappingSlot, ont *ontology.Ontology, target, candidate *module.Module, mode Mode) (Mapping, bool) {
	// Counting prechecks before any allocation: inputs need an injection
	// (target inputs ≤ candidate inputs) and outputs an exact cover, so a
	// candidate infeasible on arity alone is rejected for free. Most
	// candidates in an unindexed sweep die here.
	if len(target.Inputs) > len(candidate.Inputs) || len(target.Outputs) != len(candidate.Outputs) {
		return Mapping{}, false
	}
	var ins, outs map[string]string
	var opt map[string]bool
	var used []bool
	nTo := len(candidate.Inputs)
	if len(candidate.Outputs) > nTo {
		nTo = len(candidate.Outputs)
	}
	if sl != nil {
		sl.reset(nTo)
		ins, outs, opt, used = sl.ins, sl.outs, sl.opt, sl.used
	} else {
		ins = make(map[string]string, len(target.Inputs))
		used = make([]bool, nTo)
		// outs is allocated only if the input bijection succeeds; opt only
		// if the candidate has optional inputs (a nil skippable set is
		// equivalent to an empty one — an unmatched candidate input fails
		// either way, and with equal arities none can be unmatched).
	}
	for _, p := range candidate.Inputs {
		if p.Optional {
			if opt == nil {
				opt = map[string]bool{}
			}
			opt[p.Name] = true
		}
	}
	inPC := paramCompat{ont: ont, mode: mode, output: false}
	if !bijection(ins, used[:len(candidate.Inputs)], requiredInputs(target), candidate.Inputs, inPC, opt) {
		return Mapping{}, false
	}
	if outs == nil {
		outs = make(map[string]string, len(target.Outputs))
	}
	for i := range used {
		used[i] = false
	}
	outPC := paramCompat{ont: ont, mode: mode, output: true}
	if !bijection(outs, used[:len(candidate.Outputs)], target.Outputs, candidate.Outputs, outPC, nil) {
		return Mapping{}, false
	}
	return Mapping{Inputs: ins, Outputs: outs}, true
}

// requiredInputs returns the target inputs that must be mapped: all of
// them. (Target optional inputs are part of its observable behaviour, so
// they participate in the mapping too.)
func requiredInputs(m *module.Module) []module.Parameter { return m.Inputs }

// paramCompat decides whether a target parameter may map onto a candidate
// parameter. A plain struct (not a closure) so a mapping derivation in
// the matrix hot loop captures nothing on the heap.
type paramCompat struct {
	ont    *ontology.Ontology
	mode   Mode
	output bool
}

func (pc paramCompat) ok(t, c module.Parameter) bool {
	if !t.Struct.Equal(c.Struct) {
		return false
	}
	if pc.mode == ModeExact {
		return t.Semantic == c.Semantic
	}
	if pc.output {
		return pc.ont.Subsumes(c.Semantic, t.Semantic) || pc.ont.Subsumes(t.Semantic, c.Semantic)
	}
	// Relaxed input: the candidate must accept at least everything the
	// target accepts.
	return pc.ont.Subsumes(c.Semantic, t.Semantic)
}

// bijection finds an injective mapping covering every parameter in `from`
// onto distinct parameters in `to` satisfying pc, recording it in assign.
// Parameters of `to` left unmatched are permitted only when listed in
// skippable (optional candidate inputs). Backtracking search — parameter
// lists are tiny. used must have len(to) entries, all false.
func bijection(assign map[string]string, used []bool, from, to []module.Parameter, pc paramCompat, skippable map[string]bool) bool {
	if len(from) > len(to) {
		return false
	}
	return bijectRec(assign, used, from, to, pc, skippable, 0)
}

func bijectRec(assign map[string]string, used []bool, from, to []module.Parameter, pc paramCompat, skippable map[string]bool, i int) bool {
	if i == len(from) {
		// All target parameters mapped; any unmapped candidate parameter
		// must be skippable.
		for j, u := range used {
			if !u && skippable != nil && !skippable[to[j].Name] {
				return false
			}
			if !u && skippable == nil && len(from) != len(to) {
				return false
			}
		}
		return true
	}
	for j := range to {
		if used[j] || !pc.ok(from[i], to[j]) {
			continue
		}
		used[j] = true
		assign[from[i].Name] = to[j].Name
		if bijectRec(assign, used, from, to, pc, skippable, i+1) {
			return true
		}
		used[j] = false
		delete(assign, from[i].Name)
	}
	return false
}
