package match

import (
	"context"
	"sort"
	"strconv"

	"dexa/internal/module"
	"dexa/internal/telemetry"
)

// Sharded matrix builds: a cluster splits the all-pairs sweep by giving
// each shard a slice of the unordered pairs. The owner of a pair is the
// lexicographically smaller of its two module IDs — module IDs are the
// sweep's row order, so partitioning by owner partitions the rows of the
// upper triangle. Each shard computes exactly the cells the single-node
// sweep would have produced for its pairs (the mirroring decision inside
// computePair is per-pair deterministic), so concatenating the slices and
// re-sorting by (target, candidate) rebuilds the oracle matrix byte for
// byte, and the per-slice stats sum to the oracle stats.

// MatchMatrixSlice materialises the slice of the all-pairs verdict map
// covering the unordered pairs whose owner — the smaller module ID —
// satisfies assigned. Both ordered cells of every owned pair are computed
// and emitted; Stats count only the owned pairs. Modules and Missing
// describe the full universe and are identical across slices.
func (c *Comparer) MatchMatrixSlice(ctx context.Context, mods []*module.Module, source KeyedSource, assigned func(id string) bool) (*MatchMatrix, error) {
	_, span := telemetry.StartSpan(ctx, "match.matrix_slice")
	defer span.End()
	met := newMatchMetrics(c.Metrics)

	in := resolveMatrixInputs(mods, source)
	n := len(in.ids)
	own := make([]bool, n)
	pairs := 0
	for i, id := range in.ids {
		if assigned(id) {
			own[i] = true
			pairs += 2 * (n - 1 - i) // both directions of each owned pair
		}
	}
	mm := &MatchMatrix{
		Mode:    c.Mode.String(),
		Modules: in.ids,
		Missing: in.missing,
		Cells:   []MatrixCell{},
		Stats:   MatrixStats{Modules: n, Pairs: pairs},
	}
	if n < 2 || pairs == 0 {
		return mm, ctx.Err()
	}
	grid, err := c.buildGrid(ctx, &in, func(a, b int) bool { return own[a] }, &met)
	if err != nil {
		return nil, err
	}
	assembleSlice(mm, &in, grid, own)
	met.comparisons.Add(uint64(mm.Stats.Compared))
	met.pruned.Add(uint64(mm.Stats.Pruned))
	span.Annotate("modules", strconv.Itoa(n))
	span.Annotate("pairs", strconv.Itoa(pairs))
	span.Annotate("compared", strconv.Itoa(mm.Stats.Compared))
	return mm, nil
}

// assembleSlice is assembleMatrix restricted to owned pairs: an ordered
// cell (a, b) belongs to the slice iff the smaller index of the pair is
// owned. Unowned cells in the grid are untouched zero values and must not
// leak into the stats.
func assembleSlice(mm *MatchMatrix, in *matrixInputs, grid []cell, own []bool) {
	n := len(in.ids)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			lo := a
			if b < a {
				lo = b
			}
			if !own[lo] {
				continue
			}
			cr := grid[a*n+b]
			switch {
			case cr.pruned:
				mm.Stats.Pruned++
			case cr.aligned:
				mm.Stats.Compared++
			case cr.mirrored:
				mm.Stats.Mirrored++
			}
			switch cr.verdict {
			case Incomparable:
				mm.Stats.Incomparable++
				continue
			case Equivalent:
				mm.Stats.Equivalent++
			case Overlapping:
				mm.Stats.Overlapping++
			case Disjoint:
				mm.Stats.Disjoint++
			}
			mm.Cells = append(mm.Cells, MatrixCell{
				Target:    in.ids[a],
				Candidate: in.ids[b],
				Verdict:   cr.verdict.String(),
				Score:     cr.score,
				Compared:  cr.compared,
				Agreeing:  cr.agreeing,
			})
		}
	}
}

// MergeMatrixSlices rebuilds the full matrix from shard slices: cells are
// concatenated and re-sorted into the oracle's row-major (target,
// candidate) order, stats are summed pairwise (each unordered pair is
// owned by exactly one slice, so the sums reproduce the single-node
// counts), and Modules/Missing — identical on every slice — come from the
// first. A merge over every shard of a complete ring is byte-identical to
// the single-node build.
func MergeMatrixSlices(slices []*MatchMatrix) *MatchMatrix {
	mm := &MatchMatrix{Cells: []MatrixCell{}}
	for i, sl := range slices {
		if sl == nil {
			continue
		}
		if mm.Mode == "" {
			mm.Mode = sl.Mode
		}
		if i == 0 || mm.Modules == nil {
			mm.Modules = sl.Modules
			mm.Missing = sl.Missing
			mm.Stats.Modules = sl.Stats.Modules
		}
		mm.Cells = append(mm.Cells, sl.Cells...)
		mm.Stats.Pairs += sl.Stats.Pairs
		mm.Stats.Pruned += sl.Stats.Pruned
		mm.Stats.Compared += sl.Stats.Compared
		mm.Stats.Mirrored += sl.Stats.Mirrored
		mm.Stats.Incomparable += sl.Stats.Incomparable
		mm.Stats.Equivalent += sl.Stats.Equivalent
		mm.Stats.Overlapping += sl.Stats.Overlapping
		mm.Stats.Disjoint += sl.Stats.Disjoint
	}
	sort.Slice(mm.Cells, func(i, j int) bool {
		a, b := mm.Cells[i], mm.Cells[j]
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Candidate < b.Candidate
	})
	return mm
}
