package match

import (
	"strings"
	"testing"

	"dexa/internal/dataexample"
	"dexa/internal/module"
)

// mapStore is an in-memory StoredExamples: module ID -> persisted set.
type mapStore map[string]dataexample.Set

func (s mapStore) Get(id string) (dataexample.Set, string, bool) {
	set, ok := s[id]
	return set, "", ok
}

func TestFindSubstitutesStored(t *testing.T) {
	f := newFixture(t)
	target := seqModule("decayed", prefixer("X:"))
	same := seqModule("same", prefixer("X:"))
	other := seqModule("other", prefixer("Y:"))

	// Annotate the target while it is still alive, persist the set, then
	// lose the executor — the store is all that remains of its behaviour.
	set, _, err := f.gen.Generate(target)
	if err != nil {
		t.Fatal(err)
	}
	st := mapStore{"decayed": set}
	target.Bind(nil)

	subs, err := f.cmp.FindSubstitutesStored(st, target, []*module.Module{same, other})
	if err != nil {
		t.Fatal(err)
	}
	if len(subs.Ranked) == 0 {
		t.Fatal("no substitutes ranked")
	}
	best := subs.Ranked[0]
	if best.Module.ID != "same" || best.Result.Verdict != Equivalent {
		t.Errorf("best substitute = %s (%s), want equivalent same", best.Module.ID, best.Result.Verdict)
	}
	for _, r := range subs.Ranked {
		if r.Module.ID == "other" && r.Result.Verdict == Equivalent {
			t.Error("differently-behaving candidate ranked equivalent")
		}
	}
}

func TestFindSubstitutesStoredErrors(t *testing.T) {
	f := newFixture(t)
	target := seqModule("ghost", prefixer("X:"))
	cand := seqModule("cand", prefixer("X:"))

	// Nothing stored for the target: the search cannot run.
	_, err := f.cmp.FindSubstitutesStored(mapStore{}, target, []*module.Module{cand})
	if err == nil || !strings.Contains(err.Error(), "no stored examples") {
		t.Fatalf("err = %v, want no-stored-examples failure", err)
	}
	if _, err := f.cmp.FindSubstitutesStored(mapStore{}, nil, nil); err == nil {
		t.Fatal("nil target must error")
	}
}
