package match

import "dexa/internal/telemetry"

// matchMetrics holds the matcher's instrument handles. Built from a
// (possibly nil) registry: every handle is nil-safe, so an
// uninstrumented Comparer records nothing at zero cost.
type matchMetrics struct {
	// searches counts substitute searches; comparisons counts candidate
	// comparisons actually performed; pruned counts candidates the
	// signature index rejected before any example comparison.
	searches    *telemetry.Counter
	comparisons *telemetry.Counter
	pruned      *telemetry.Counter
	// matrixCells observes the latency of one all-pairs matrix cell
	// (mapping + example alignment), in seconds.
	matrixCells *telemetry.Histogram
}

func newMatchMetrics(r *telemetry.Registry) matchMetrics {
	return matchMetrics{
		searches:    r.Counter("dexa_match_searches_total", "Substitute searches performed."),
		comparisons: r.Counter("dexa_match_comparisons_total", "Candidate example comparisons performed."),
		pruned:      r.Counter("dexa_match_pruned_total", "Candidates pruned by the signature index before example comparison."),
		matrixCells: r.Histogram("dexa_match_matrix_cell_seconds", "Latency of one match-matrix cell (mapping + example alignment).", nil),
	}
}
