package match

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/telemetry"
)

// CatalogIndex is the signature-level pruning index for catalog-scale
// matching. It precomputes, per module, the multiset of parameter
// fingerprints (structural type + semantic concept, per side) and an
// inverted index from fingerprint → posting bitset of modules carrying at
// least one such parameter. A substitute search intersects the postings
// of the target's parameters to find the mapping-feasible candidates and
// runs the expensive example comparison only on those; everything else is
// pruned without invoking a single module.
//
// Soundness: a candidate is pruned only when MapParameters provably
// cannot succeed, so pruned searches return byte-identical results to the
// exhaustive ones (a pruned candidate would have come back Incomparable,
// which never ranks and never skips). In ModeExact the feasibility test
// is in fact a complete decision procedure: the mapping constraint graph
// decomposes into complete bipartite blocks per fingerprint class, so
// Hall's condition reduces to per-class counting. In ModeRelaxed (where
// subsumption edges make the bipartite structure general) the test is a
// necessary-condition overapproximation and MapParameters re-verifies
// the survivors.
//
// Relaxed-mode subsumption is resolved through the ontology's bitset
// closure: a candidate input concept is compatible when it subsumes the
// target's, i.e. when it lies in {target} ∪ AncestorsView(target).
//
// Invalidation: the index snapshots module signatures at build time.
// Whenever a module's parameter signature changes (or a module is added
// or retired from the catalog), call Update/Remove — each rebuilds the
// postings under the write lock and bumps Generation, which serving-layer
// caches fold into their state keys. Example-set content changes do NOT
// touch this index (it never looks at examples); they invalidate the
// match-matrix and substitute caches through the store's content hashes.
//
// Concurrency: Feasibility queries take a read lock and may run
// concurrently with each other and with ontology reasoning; Update and
// Remove take the write lock.
type CatalogIndex struct {
	ont *ontology.Ontology

	mu   sync.RWMutex
	sigs map[string]*moduleSig // module ID -> signature snapshot
	// Dense numbering for the posting bitsets, rebuilt on every mutation.
	ids   []string       // sorted module IDs
	rank  map[string]int // module ID -> dense index
	words int            // bitset words per posting
	// One posting map per side, keyed by bare parameter fingerprint, so
	// queries never build a side-prefixed key string.
	inPostings  map[string][]uint64
	outPostings map[string][]uint64

	generation atomic.Uint64
	builds     atomic.Uint64
	lastBuild  atomic.Int64 // nanoseconds of the last rebuild

	// buildSeconds is set by Instrument; nil-safe when never instrumented.
	buildSeconds *telemetry.Histogram
}

// paramClass is one fingerprint equivalence class of a module side.
type paramClass struct {
	strct   string // structural type, canonical string form
	concept string // semantic concept ID ("" when unannotated)
	count   int    // parameters in this class
	required int   // non-optional members (meaningful for inputs)
}

// moduleSig is the per-module signature snapshot the index matches on.
type moduleSig struct {
	id         string
	numInputs  int
	numRequired int
	numOutputs int
	inClasses  map[string]paramClass // fingerprint -> class
	outClasses map[string]paramClass
	inStruct   map[string]int // struct string -> input count
	reqStruct  map[string]int // struct string -> required input count
	outStruct  map[string]int // struct string -> output count
}

func fingerprint(strct, concept string) string { return strct + "\x00" + concept }

func signatureOf(m *module.Module) *moduleSig {
	sig := &moduleSig{
		id:         m.ID,
		numInputs:  len(m.Inputs),
		numOutputs: len(m.Outputs),
		inClasses:  make(map[string]paramClass, len(m.Inputs)),
		outClasses: make(map[string]paramClass, len(m.Outputs)),
		inStruct:   make(map[string]int, len(m.Inputs)),
		reqStruct:  make(map[string]int, len(m.Inputs)),
		outStruct:  make(map[string]int, len(m.Outputs)),
	}
	for _, p := range m.Inputs {
		s := p.Struct.String()
		fp := fingerprint(s, p.Semantic)
		c := sig.inClasses[fp]
		c.strct, c.concept = s, p.Semantic
		c.count++
		if !p.Optional {
			c.required++
			sig.numRequired++
			sig.reqStruct[s]++
		}
		sig.inClasses[fp] = c
		sig.inStruct[s]++
	}
	for _, p := range m.Outputs {
		s := p.Struct.String()
		fp := fingerprint(s, p.Semantic)
		c := sig.outClasses[fp]
		c.strct, c.concept = s, p.Semantic
		c.count++
		sig.outClasses[fp] = c
		sig.outStruct[s]++
	}
	return sig
}

// NewCatalogIndex builds the index over the given modules' signatures.
func NewCatalogIndex(ont *ontology.Ontology, mods []*module.Module) *CatalogIndex {
	ix := &CatalogIndex{ont: ont, sigs: make(map[string]*moduleSig, len(mods))}
	for _, m := range mods {
		ix.sigs[m.ID] = signatureOf(m)
	}
	ix.rebuildLocked()
	return ix
}

// Update adds or replaces the module's signature snapshot and rebuilds
// the postings. Call it whenever a module's parameter signature changes.
func (ix *CatalogIndex) Update(m *module.Module) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.sigs[m.ID] = signatureOf(m)
	ix.rebuildLocked()
}

// Remove drops a module from the index (no-op for unknown IDs).
func (ix *CatalogIndex) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.sigs[id]; !ok {
		return
	}
	delete(ix.sigs, id)
	ix.rebuildLocked()
}

// rebuildLocked recomputes the dense numbering and the inverted postings.
// Caller holds the write lock (or has exclusive access during New).
func (ix *CatalogIndex) rebuildLocked() {
	start := time.Now()
	n := len(ix.sigs)
	ix.ids = make([]string, 0, n)
	for id := range ix.sigs {
		ix.ids = append(ix.ids, id)
	}
	sort.Strings(ix.ids)
	ix.rank = make(map[string]int, n)
	for i, id := range ix.ids {
		ix.rank[id] = i
	}
	ix.words = (n + 63) / 64
	ix.inPostings = make(map[string][]uint64)
	ix.outPostings = make(map[string][]uint64)
	set := func(postings map[string][]uint64, fp string, i int) {
		bits, ok := postings[fp]
		if !ok {
			bits = make([]uint64, ix.words)
			postings[fp] = bits
		}
		bits[i/64] |= 1 << (i % 64)
	}
	for i, id := range ix.ids {
		sig := ix.sigs[id]
		for fp := range sig.inClasses {
			set(ix.inPostings, fp, i)
		}
		for fp := range sig.outClasses {
			set(ix.outPostings, fp, i)
		}
	}
	elapsed := time.Since(start)
	ix.lastBuild.Store(int64(elapsed))
	ix.builds.Add(1)
	ix.generation.Add(1)
	ix.buildSeconds.Observe(elapsed.Seconds())
}

// Generation returns a counter that increments on every rebuild; caches
// keyed on catalog state fold it into their keys.
func (ix *CatalogIndex) Generation() uint64 { return ix.generation.Load() }

// Len returns the number of indexed modules.
func (ix *CatalogIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// IDs returns the indexed module IDs, sorted.
func (ix *CatalogIndex) IDs() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, len(ix.ids))
	copy(out, ix.ids)
	return out
}

// Instrument exports the index's build telemetry on the registry:
// dexa_match_index_size, dexa_match_index_generation and
// dexa_match_index_builds_total as read-on-scrape collectors, plus the
// dexa_match_index_build_seconds histogram observed on every subsequent
// rebuild.
func (ix *CatalogIndex) Instrument(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("dexa_match_index_size", "Modules in the catalog signature index.",
		func() float64 { return float64(ix.Len()) })
	r.GaugeFunc("dexa_match_index_generation", "Signature-index generation (bumps on every rebuild).",
		func() float64 { return float64(ix.Generation()) })
	r.CounterFunc("dexa_match_index_builds_total", "Signature-index builds and rebuilds.",
		func() float64 { return float64(ix.builds.Load()) })
	r.GaugeFunc("dexa_match_index_last_build_seconds", "Duration of the most recent index rebuild.",
		func() float64 { return time.Duration(ix.lastBuild.Load()).Seconds() })
	ix.mu.Lock()
	ix.buildSeconds = r.Histogram("dexa_match_index_build_seconds", "Signature-index rebuild latency.", nil)
	ix.mu.Unlock()
}

// Contains reports whether the module is currently indexed. The
// incremental matrix folds per-module membership into its change
// detection: membership decides whether a candidate can be pruned at
// all, so a module entering or leaving the index (lifecycle availability
// flips) invalidates its row and column even when its signature and
// stored examples are untouched.
func (ix *CatalogIndex) Contains(id string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.sigs[id]
	return ok
}

// Feasibility is the result of one pruning query: which indexed modules
// could possibly admit a parameter mapping from the target, as a packed
// bitset over the index's dense numbering. It is an immutable snapshot —
// concurrent index mutations replace the numbering wholesale and do not
// affect it.
type Feasibility struct {
	rank map[string]int // the index numbering this query ran under (shared)
	bits []uint64       // feasible bitset over rank
	self int            // target's own rank, -1 when unindexed
	// Candidates is how many indexed modules were considered and Pruned
	// how many of them were rejected.
	Candidates int
	Pruned     int
}

// Prunes reports whether the candidate is known to be mapping-infeasible.
// Unindexed modules are never pruned — the comparison falls through to
// MapParameters as before. Neither is the target itself (callers skip it
// anyway).
func (f *Feasibility) Prunes(id string) bool {
	if f == nil {
		return false
	}
	i, ok := f.rank[id]
	if !ok || i == f.self {
		return false
	}
	return f.bits[i>>6]&(1<<(uint(i)&63)) == 0
}

// Feasibility computes the mapping-feasible candidate set for the target
// signature under the given mode. The query is allocation-light by
// design — it is the per-row cost of every warm matrix sweep: it walks
// the target's precomputed fingerprint classes (same-class parameters
// give identical intersections, so per-class is per-parameter), probes
// the postings through one reused key buffer, and allocates only the
// result bitset, its scratch and that buffer. The returned snapshot
// shares the index's (immutable) numbering.
func (ix *CatalogIndex) Feasibility(target *module.Module, mode Mode) *Feasibility {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	n := len(ix.ids)
	live := make([]uint64, ix.words)
	for i := 0; i < n; i++ {
		live[i/64] |= 1 << (i % 64)
	}
	q := feasQuery{ix: ix, mode: mode, live: live, scratch: make([]uint64, ix.words)}

	tSig := ix.targetSigLocked(target)
	alive := true
	for _, tc := range tSig.inClasses {
		if !alive {
			break
		}
		alive = q.intersect(ix.inPostings, tc.strct, tc.concept, false)
	}
	for _, tc := range tSig.outClasses {
		if !alive {
			break
		}
		alive = q.intersect(ix.outPostings, tc.strct, tc.concept, true)
	}

	out := &Feasibility{rank: ix.rank, bits: live, self: -1}
	if i, ok := ix.rank[target.ID]; ok {
		out.self = i
	}
	for i, id := range ix.ids {
		if i == out.self {
			continue // never its own substitute; callers skip it anyway
		}
		out.Candidates++
		ok := live[i/64]&(1<<(i%64)) != 0
		if ok {
			ok = countFeasible(tSig, ix.sigs[id], mode)
		}
		if !ok {
			live[i/64] &^= 1 << (i % 64)
			out.Pruned++
		}
	}
	return out
}

// feasQuery is the scratch state of one Feasibility row: the live bitset
// being intersected, the per-parameter scratch, and the reused posting
// key buffer (probed via the allocation-free map[string(buf)] form).
type feasQuery struct {
	ix      *CatalogIndex
	mode    Mode
	live    []uint64
	scratch []uint64
	keyBuf  []byte
}

// intersect ANDs into live the union of postings compatible with one
// target fingerprint class: every target parameter must find at least
// one compatible parameter on the candidate's matching side.
func (q *feasQuery) intersect(postings map[string][]uint64, strct, sem string, output bool) bool {
	for w := range q.scratch {
		q.scratch[w] = 0
	}
	if q.mode == ModeExact {
		q.orPosting(postings, strct, sem)
	} else if q.ix.ont.Has(sem) { // Subsumes never holds for unknown concepts
		q.orPosting(postings, strct, sem)
		for _, a := range q.ix.ont.AncestorsView(sem) {
			q.orPosting(postings, strct, a)
		}
		if output { // outputs accept subsumption in either direction
			for _, d := range q.ix.ont.DescendantsView(sem) {
				q.orPosting(postings, strct, d)
			}
		}
	}
	empty := true
	for w := range q.live {
		q.live[w] &= q.scratch[w]
		if q.live[w] != 0 {
			empty = false
		}
	}
	return !empty
}

// orPosting ORs the posting bitset of one (struct, concept) fingerprint
// into the scratch, building the key in the reused buffer.
func (q *feasQuery) orPosting(postings map[string][]uint64, strct, concept string) {
	q.keyBuf = append(q.keyBuf[:0], strct...)
	q.keyBuf = append(q.keyBuf, 0)
	q.keyBuf = append(q.keyBuf, concept...)
	if bits, ok := postings[string(q.keyBuf)]; ok {
		for w := range q.scratch {
			q.scratch[w] |= bits[w]
		}
	}
}

// targetSigLocked resolves the target's signature: the indexed snapshot
// when present (the index contract requires Update on signature change,
// so the snapshot is current by invariant), a fresh one otherwise.
func (ix *CatalogIndex) targetSigLocked(target *module.Module) *moduleSig {
	if sig, ok := ix.sigs[target.ID]; ok {
		return sig
	}
	return signatureOf(target)
}

// PrunesPair is the single-pair form of a Feasibility query: it decides,
// from signatures alone, whether the index prunes the ordered direction
// target → candidate, returning exactly the verdict the posting
// intersection gives that candidate (each candidate's live bit depends
// only on its own signature, so the per-pair check and the row query
// agree by construction; TestCatalogIndexPairAgreesWithRow pins this).
// Unindexed candidates are never pruned, mirroring Prunes.
func (ix *CatalogIndex) PrunesPair(target, candidate *module.Module, mode Mode) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	cSig, ok := ix.sigs[candidate.ID]
	if !ok || candidate.ID == target.ID {
		return false
	}
	tSig := ix.targetSigLocked(target)
	return !ix.pairFeasibleLocked(tSig, cSig, mode)
}

// pairFeasibleLocked replicates, for one candidate, the conjunction the
// row query computes: per-target-parameter existence of a compatible
// candidate parameter (the posting intersection, here per fingerprint
// class since same-class parameters share struct and concept) and the
// counting conditions.
func (ix *CatalogIndex) pairFeasibleLocked(t, c *moduleSig, mode Mode) bool {
	for _, tc := range t.inClasses {
		if !ix.sideHasCompatible(c.inClasses, tc.strct, tc.concept, mode, false) {
			return false
		}
	}
	for _, tc := range t.outClasses {
		if !ix.sideHasCompatible(c.outClasses, tc.strct, tc.concept, mode, true) {
			return false
		}
	}
	return countFeasible(t, c, mode)
}

// sideHasCompatible reports whether one side of a candidate signature
// carries at least one parameter a target parameter (strct, sem) can map
// onto — the per-candidate membership test the postings answer in bulk.
func (ix *CatalogIndex) sideHasCompatible(classes map[string]paramClass, strct, sem string, mode Mode, output bool) bool {
	if mode == ModeExact {
		_, ok := classes[fingerprint(strct, sem)]
		return ok
	}
	if !ix.ont.Has(sem) {
		return false // Subsumes never holds for unknown concepts
	}
	if _, ok := classes[fingerprint(strct, sem)]; ok {
		return true
	}
	for _, a := range ix.ont.AncestorsView(sem) {
		if _, ok := classes[fingerprint(strct, a)]; ok {
			return true
		}
	}
	if output {
		for _, d := range ix.ont.DescendantsView(sem) {
			if _, ok := classes[fingerprint(strct, d)]; ok {
				return true
			}
		}
	}
	return false
}

// countFeasible applies the counting conditions of the bijection on top
// of the per-parameter existence already established by the posting
// intersection. All conditions are necessary in both modes; in ModeExact
// the fingerprint-class conditions are also sufficient (Hall's condition
// on complete bipartite blocks), making exact-mode pruning complete.
func countFeasible(t, c *moduleSig, mode Mode) bool {
	// Every target input maps to a distinct candidate input; candidate
	// inputs left unmapped must be optional. Outputs map 1:1 exactly.
	if t.numInputs > c.numInputs || c.numRequired > t.numInputs {
		return false
	}
	if t.numOutputs != c.numOutputs {
		return false
	}
	// Structural types must be equal on every mapped pair in both modes.
	for s, cnt := range t.inStruct {
		if c.inStruct[s] < cnt {
			return false
		}
	}
	for s, cnt := range c.reqStruct {
		if t.inStruct[s] < cnt {
			return false
		}
	}
	for s, cnt := range t.outStruct {
		if c.outStruct[s] != cnt {
			return false
		}
	}
	if mode != ModeExact {
		return true
	}
	// Exact mode: fingerprint classes are matched only within themselves,
	// so per-class counting decides the bijection outright.
	for fp, tc := range t.inClasses {
		if c.inClasses[fp].count < tc.count {
			return false
		}
	}
	for fp, cc := range c.inClasses {
		if cc.required > t.inClasses[fp].count {
			return false
		}
	}
	for fp, tc := range t.outClasses {
		if c.outClasses[fp].count != tc.count {
			return false
		}
	}
	return true
}

// sigSnapshot returns the index's current signature snapshot for a
// module (nil when unindexed). Update installs a fresh snapshot pointer
// and Remove drops it, so the incremental matrix uses pointer identity
// as an exact per-module "did the index's view of this module change"
// probe — cheaper and more precise than the global Generation counter.
func (ix *CatalogIndex) sigSnapshot(id string) *moduleSig {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.sigs[id]
}
