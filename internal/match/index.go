package match

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/telemetry"
)

// CatalogIndex is the signature-level pruning index for catalog-scale
// matching. It precomputes, per module, the multiset of parameter
// fingerprints (structural type + semantic concept, per side) and an
// inverted index from fingerprint → posting bitset of modules carrying at
// least one such parameter. A substitute search intersects the postings
// of the target's parameters to find the mapping-feasible candidates and
// runs the expensive example comparison only on those; everything else is
// pruned without invoking a single module.
//
// Soundness: a candidate is pruned only when MapParameters provably
// cannot succeed, so pruned searches return byte-identical results to the
// exhaustive ones (a pruned candidate would have come back Incomparable,
// which never ranks and never skips). In ModeExact the feasibility test
// is in fact a complete decision procedure: the mapping constraint graph
// decomposes into complete bipartite blocks per fingerprint class, so
// Hall's condition reduces to per-class counting. In ModeRelaxed (where
// subsumption edges make the bipartite structure general) the test is a
// necessary-condition overapproximation and MapParameters re-verifies
// the survivors.
//
// Relaxed-mode subsumption is resolved through the ontology's bitset
// closure: a candidate input concept is compatible when it subsumes the
// target's, i.e. when it lies in {target} ∪ AncestorsView(target).
//
// Invalidation: the index snapshots module signatures at build time.
// Whenever a module's parameter signature changes (or a module is added
// or retired from the catalog), call Update/Remove — each rebuilds the
// postings under the write lock and bumps Generation, which serving-layer
// caches fold into their state keys. Example-set content changes do NOT
// touch this index (it never looks at examples); they invalidate the
// match-matrix and substitute caches through the store's content hashes.
//
// Concurrency: Feasibility queries take a read lock and may run
// concurrently with each other and with ontology reasoning; Update and
// Remove take the write lock.
type CatalogIndex struct {
	ont *ontology.Ontology

	mu   sync.RWMutex
	sigs map[string]*moduleSig // module ID -> signature snapshot
	// Dense numbering for the posting bitsets, rebuilt on every mutation.
	ids      []string       // sorted module IDs
	rank     map[string]int // module ID -> dense index
	words    int            // bitset words per posting
	postings map[string][]uint64

	generation atomic.Uint64
	builds     atomic.Uint64
	lastBuild  atomic.Int64 // nanoseconds of the last rebuild

	// buildSeconds is set by Instrument; nil-safe when never instrumented.
	buildSeconds *telemetry.Histogram
}

// paramClass is one fingerprint equivalence class of a module side.
type paramClass struct {
	strct   string // structural type, canonical string form
	concept string // semantic concept ID ("" when unannotated)
	count   int    // parameters in this class
	required int   // non-optional members (meaningful for inputs)
}

// moduleSig is the per-module signature snapshot the index matches on.
type moduleSig struct {
	id         string
	numInputs  int
	numRequired int
	numOutputs int
	inClasses  map[string]paramClass // fingerprint -> class
	outClasses map[string]paramClass
	inStruct   map[string]int // struct string -> input count
	reqStruct  map[string]int // struct string -> required input count
	outStruct  map[string]int // struct string -> output count
}

func fingerprint(strct, concept string) string { return strct + "\x00" + concept }

func signatureOf(m *module.Module) *moduleSig {
	sig := &moduleSig{
		id:         m.ID,
		numInputs:  len(m.Inputs),
		numOutputs: len(m.Outputs),
		inClasses:  make(map[string]paramClass, len(m.Inputs)),
		outClasses: make(map[string]paramClass, len(m.Outputs)),
		inStruct:   make(map[string]int, len(m.Inputs)),
		reqStruct:  make(map[string]int, len(m.Inputs)),
		outStruct:  make(map[string]int, len(m.Outputs)),
	}
	for _, p := range m.Inputs {
		s := p.Struct.String()
		fp := fingerprint(s, p.Semantic)
		c := sig.inClasses[fp]
		c.strct, c.concept = s, p.Semantic
		c.count++
		if !p.Optional {
			c.required++
			sig.numRequired++
			sig.reqStruct[s]++
		}
		sig.inClasses[fp] = c
		sig.inStruct[s]++
	}
	for _, p := range m.Outputs {
		s := p.Struct.String()
		fp := fingerprint(s, p.Semantic)
		c := sig.outClasses[fp]
		c.strct, c.concept = s, p.Semantic
		c.count++
		sig.outClasses[fp] = c
		sig.outStruct[s]++
	}
	return sig
}

// NewCatalogIndex builds the index over the given modules' signatures.
func NewCatalogIndex(ont *ontology.Ontology, mods []*module.Module) *CatalogIndex {
	ix := &CatalogIndex{ont: ont, sigs: make(map[string]*moduleSig, len(mods))}
	for _, m := range mods {
		ix.sigs[m.ID] = signatureOf(m)
	}
	ix.rebuildLocked()
	return ix
}

// Update adds or replaces the module's signature snapshot and rebuilds
// the postings. Call it whenever a module's parameter signature changes.
func (ix *CatalogIndex) Update(m *module.Module) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.sigs[m.ID] = signatureOf(m)
	ix.rebuildLocked()
}

// Remove drops a module from the index (no-op for unknown IDs).
func (ix *CatalogIndex) Remove(id string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, ok := ix.sigs[id]; !ok {
		return
	}
	delete(ix.sigs, id)
	ix.rebuildLocked()
}

// rebuildLocked recomputes the dense numbering and the inverted postings.
// Caller holds the write lock (or has exclusive access during New).
func (ix *CatalogIndex) rebuildLocked() {
	start := time.Now()
	n := len(ix.sigs)
	ix.ids = make([]string, 0, n)
	for id := range ix.sigs {
		ix.ids = append(ix.ids, id)
	}
	sort.Strings(ix.ids)
	ix.rank = make(map[string]int, n)
	for i, id := range ix.ids {
		ix.rank[id] = i
	}
	ix.words = (n + 63) / 64
	// Postings are keyed "i\x00fp" / "o\x00fp" so one map serves both sides.
	ix.postings = make(map[string][]uint64)
	set := func(key string, i int) {
		bits, ok := ix.postings[key]
		if !ok {
			bits = make([]uint64, ix.words)
			ix.postings[key] = bits
		}
		bits[i/64] |= 1 << (i % 64)
	}
	for i, id := range ix.ids {
		sig := ix.sigs[id]
		for fp := range sig.inClasses {
			set("i\x00"+fp, i)
		}
		for fp := range sig.outClasses {
			set("o\x00"+fp, i)
		}
	}
	elapsed := time.Since(start)
	ix.lastBuild.Store(int64(elapsed))
	ix.builds.Add(1)
	ix.generation.Add(1)
	ix.buildSeconds.Observe(elapsed.Seconds())
}

// Generation returns a counter that increments on every rebuild; caches
// keyed on catalog state fold it into their keys.
func (ix *CatalogIndex) Generation() uint64 { return ix.generation.Load() }

// Len returns the number of indexed modules.
func (ix *CatalogIndex) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.sigs)
}

// IDs returns the indexed module IDs, sorted.
func (ix *CatalogIndex) IDs() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, len(ix.ids))
	copy(out, ix.ids)
	return out
}

// Instrument exports the index's build telemetry on the registry:
// dexa_match_index_size, dexa_match_index_generation and
// dexa_match_index_builds_total as read-on-scrape collectors, plus the
// dexa_match_index_build_seconds histogram observed on every subsequent
// rebuild.
func (ix *CatalogIndex) Instrument(r *telemetry.Registry) {
	if r == nil {
		return
	}
	r.GaugeFunc("dexa_match_index_size", "Modules in the catalog signature index.",
		func() float64 { return float64(ix.Len()) })
	r.GaugeFunc("dexa_match_index_generation", "Signature-index generation (bumps on every rebuild).",
		func() float64 { return float64(ix.Generation()) })
	r.CounterFunc("dexa_match_index_builds_total", "Signature-index builds and rebuilds.",
		func() float64 { return float64(ix.builds.Load()) })
	r.GaugeFunc("dexa_match_index_last_build_seconds", "Duration of the most recent index rebuild.",
		func() float64 { return time.Duration(ix.lastBuild.Load()).Seconds() })
	ix.mu.Lock()
	ix.buildSeconds = r.Histogram("dexa_match_index_build_seconds", "Signature-index rebuild latency.", nil)
	ix.mu.Unlock()
}

// Feasibility is the result of one pruning query: which indexed modules
// could possibly admit a parameter mapping from the target. It is an
// immutable snapshot — concurrent index mutations do not affect it.
type Feasibility struct {
	feasible map[string]bool // indexed module ID -> mapping-feasible
	// Candidates is how many indexed modules were considered and Pruned
	// how many of them were rejected.
	Candidates int
	Pruned     int
}

// Prunes reports whether the candidate is known to be mapping-infeasible.
// Unindexed modules are never pruned — the comparison falls through to
// MapParameters as before.
func (f *Feasibility) Prunes(id string) bool {
	if f == nil {
		return false
	}
	v, ok := f.feasible[id]
	return ok && !v
}

// Feasibility computes the mapping-feasible candidate set for the target
// signature under the given mode.
func (ix *CatalogIndex) Feasibility(target *module.Module, mode Mode) *Feasibility {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	n := len(ix.ids)
	out := &Feasibility{feasible: make(map[string]bool, n)}
	live := make([]uint64, ix.words)
	for i := 0; i < n; i++ {
		live[i/64] |= 1 << (i % 64)
	}
	scratch := make([]uint64, ix.words)

	// Posting intersection: every target parameter must find at least one
	// compatible parameter on the candidate's matching side.
	intersect := func(side string, p module.Parameter, concepts []string) bool {
		for w := range scratch {
			scratch[w] = 0
		}
		s := p.Struct.String()
		for _, concept := range concepts {
			if bits, ok := ix.postings[side+"\x00"+fingerprint(s, concept)]; ok {
				for w := range scratch {
					scratch[w] |= bits[w]
				}
			}
		}
		empty := true
		for w := range live {
			live[w] &= scratch[w]
			if live[w] != 0 {
				empty = false
			}
		}
		return !empty
	}
	alive := true
	for _, p := range target.Inputs {
		if !alive {
			break
		}
		alive = intersect("i", p, ix.compatibleInputConcepts(p.Semantic, mode))
	}
	for _, p := range target.Outputs {
		if !alive {
			break
		}
		alive = intersect("o", p, ix.compatibleOutputConcepts(p.Semantic, mode))
	}

	tSig := signatureOf(target)
	for i, id := range ix.ids {
		if id == target.ID {
			continue // never its own substitute; callers skip it anyway
		}
		out.Candidates++
		ok := live[i/64]&(1<<(i%64)) != 0
		if ok {
			ok = countFeasible(tSig, ix.sigs[id], mode)
		}
		out.feasible[id] = ok
		if !ok {
			out.Pruned++
		}
	}
	return out
}

// compatibleInputConcepts returns the candidate input concepts a target
// input annotated with sem can map onto: in ModeExact exactly sem; in
// ModeRelaxed every concept subsuming sem, i.e. {sem} ∪ ancestors(sem)
// from the bitset closure (empty for a concept the ontology does not
// know — Subsumes never holds for those, not even reflexively).
func (ix *CatalogIndex) compatibleInputConcepts(sem string, mode Mode) []string {
	if mode == ModeExact {
		return []string{sem}
	}
	if !ix.ont.Has(sem) {
		return nil
	}
	anc := ix.ont.AncestorsView(sem)
	out := make([]string, 0, len(anc)+1)
	out = append(out, sem)
	out = append(out, anc...)
	return out
}

// compatibleOutputConcepts is the output-side analogue: relaxed accepts
// subsumption in either direction, so the compatible set is
// {sem} ∪ ancestors(sem) ∪ descendants(sem).
func (ix *CatalogIndex) compatibleOutputConcepts(sem string, mode Mode) []string {
	if mode == ModeExact {
		return []string{sem}
	}
	if !ix.ont.Has(sem) {
		return nil
	}
	anc := ix.ont.AncestorsView(sem)
	desc := ix.ont.DescendantsView(sem)
	out := make([]string, 0, len(anc)+len(desc)+1)
	out = append(out, sem)
	out = append(out, anc...)
	out = append(out, desc...)
	return out
}

// countFeasible applies the counting conditions of the bijection on top
// of the per-parameter existence already established by the posting
// intersection. All conditions are necessary in both modes; in ModeExact
// the fingerprint-class conditions are also sufficient (Hall's condition
// on complete bipartite blocks), making exact-mode pruning complete.
func countFeasible(t, c *moduleSig, mode Mode) bool {
	// Every target input maps to a distinct candidate input; candidate
	// inputs left unmapped must be optional. Outputs map 1:1 exactly.
	if t.numInputs > c.numInputs || c.numRequired > t.numInputs {
		return false
	}
	if t.numOutputs != c.numOutputs {
		return false
	}
	// Structural types must be equal on every mapped pair in both modes.
	for s, cnt := range t.inStruct {
		if c.inStruct[s] < cnt {
			return false
		}
	}
	for s, cnt := range c.reqStruct {
		if t.inStruct[s] < cnt {
			return false
		}
	}
	for s, cnt := range t.outStruct {
		if c.outStruct[s] != cnt {
			return false
		}
	}
	if mode != ModeExact {
		return true
	}
	// Exact mode: fingerprint classes are matched only within themselves,
	// so per-class counting decides the bijection outright.
	for fp, tc := range t.inClasses {
		if c.inClasses[fp].count < tc.count {
			return false
		}
	}
	for fp, cc := range c.inClasses {
		if cc.required > t.inClasses[fp].count {
			return false
		}
	}
	for fp, tc := range t.outClasses {
		if c.outClasses[fp].count != tc.count {
			return false
		}
	}
	return true
}
