package match

import (
	"fmt"
	"sync"
	"testing"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

// indexCatalog builds a candidate field covering every way a signature
// can (fail to) admit a mapping: equivalent, renamed, narrowed concept,
// wrong struct, extra required/optional inputs, wrong/extra outputs, and
// an unknown concept.
func indexCatalog() (target *module.Module, cands []*module.Module) {
	target = seqModule("target", prefixer("X:"))
	same := seqModule("same", prefixer("X:"))
	renamed := seqModule("renamed", prefixer("X:"))
	renamed.Inputs[0].Name = "sequence"
	narrower := seqModule("narrower", prefixer("X:"))
	narrower.Inputs[0].Semantic = "DNA" // subconcept input: no mapping in either mode
	wrongStruct := seqModule("wrong-struct", prefixer("X:"))
	wrongStruct.Inputs[0].Struct = typesys.IntType
	extraRequired := seqModule("extra-required", prefixer("X:"))
	extraRequired.Inputs = append(extraRequired.Inputs, module.Parameter{
		Name: "extra", Struct: typesys.StringType, Semantic: "Acc",
	})
	extraOptional := seqModule("extra-optional", prefixer("X:"))
	extraOptional.Inputs = append(extraOptional.Inputs, module.Parameter{
		Name: "limit", Struct: typesys.FloatType, Semantic: "Data", Optional: true, Default: typesys.Floatv(1),
	})
	wrongOutput := seqModule("wrong-output", prefixer("X:"))
	wrongOutput.Outputs[0].Semantic = "Seq" // subsumption holds in relaxed mode
	extraOutput := seqModule("extra-output", prefixer("X:"))
	extraOutput.Outputs = append(extraOutput.Outputs, module.Parameter{
		Name: "extra", Struct: typesys.StringType, Semantic: "Acc",
	})
	unknown := seqModule("unknown-concept", prefixer("X:"))
	unknown.Inputs[0].Semantic = "NotInOntology"
	cands = []*module.Module{
		same, renamed, narrower, wrongStruct, extraRequired,
		extraOptional, wrongOutput, extraOutput, unknown,
	}
	return target, cands
}

// TestCatalogIndexFeasibility pins the pruning contract: in both modes a
// prune is sound (a mapping-feasible candidate is never pruned), and in
// exact mode it is also complete (every mapping-infeasible candidate IS
// pruned — the per-fingerprint-class counting is a decision procedure
// there, which is what lets the bench gate assert prune counts).
func TestCatalogIndexFeasibility(t *testing.T) {
	f := newFixture(t)
	target, cands := indexCatalog()
	ix := NewCatalogIndex(f.ont, append([]*module.Module{target}, cands...))
	for _, mode := range []Mode{ModeExact, ModeRelaxed} {
		feas := ix.Feasibility(target, mode)
		for _, c := range cands {
			_, mappable := MapParameters(f.ont, target, c, mode)
			if mappable && feas.Prunes(c.ID) {
				t.Errorf("%s/%s: pruned a mapping-feasible candidate (unsound)", mode, c.ID)
			}
			if mode == ModeExact && !mappable && !feas.Prunes(c.ID) {
				t.Errorf("exact/%s: mapping-infeasible candidate not pruned (incomplete)", c.ID)
			}
		}
		if feas.Candidates != len(cands) {
			t.Errorf("%s: candidates = %d, want %d", mode, feas.Candidates, len(cands))
		}
		if feas.Prunes(target.ID) {
			t.Errorf("%s: the target itself must not be reported pruned", mode)
		}
	}
	// Unindexed modules are never pruned: the comparison falls through.
	feas := ix.Feasibility(target, ModeExact)
	if feas.Prunes("never-indexed") {
		t.Error("unindexed module must not be pruned")
	}
	// A nil Feasibility (no index wired) prunes nothing.
	if (*Feasibility)(nil).Prunes("anything") {
		t.Error("nil feasibility must not prune")
	}
}

// TestCatalogIndexInvalidation: Update after a signature change and
// Remove must be visible to the next query, and each rebuild bumps the
// generation (the serving layer folds it into its cache state key).
func TestCatalogIndexInvalidation(t *testing.T) {
	f := newFixture(t)
	target := seqModule("target", prefixer("X:"))
	cand := seqModule("cand", prefixer("X:"))
	ix := NewCatalogIndex(f.ont, []*module.Module{target, cand})
	gen0 := ix.Generation()

	if ix.Feasibility(target, ModeExact).Prunes("cand") {
		t.Fatal("identical signature pruned")
	}

	// The candidate's signature changes incompatibly; re-indexing must
	// flip it to pruned and advance the generation.
	cand.Inputs[0].Semantic = "Acc"
	ix.Update(cand)
	if ix.Generation() == gen0 {
		t.Error("generation did not advance on Update")
	}
	if !ix.Feasibility(target, ModeExact).Prunes("cand") {
		t.Error("stale feasibility after signature change")
	}

	ix.Remove("cand")
	if got := ix.Len(); got != 1 {
		t.Errorf("len after remove = %d, want 1", got)
	}
	if ix.Feasibility(target, ModeExact).Prunes("cand") {
		t.Error("removed module must fall back to unpruned")
	}
	ids := ix.IDs()
	if len(ids) != 1 || ids[0] != "target" {
		t.Errorf("ids = %v", ids)
	}
}

// TestCatalogIndexConcurrentReadsDuringInvalidation hammers Feasibility
// from many readers while a writer continuously rebuilds the index (run
// under -race; the Makefile race-match target does).
func TestCatalogIndexConcurrentReadsDuringInvalidation(t *testing.T) {
	f := newFixture(t)
	target, cands := indexCatalog()
	mods := append([]*module.Module{target}, cands...)
	ix := NewCatalogIndex(f.ont, mods)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: churn signatures, removals and re-adds
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m := seqModule(fmt.Sprintf("churn-%d", i%7), prefixer("X:"))
			if i%3 == 0 {
				m.Inputs[0].Semantic = "DNA"
			}
			ix.Update(m)
			if i%5 == 0 {
				ix.Remove(fmt.Sprintf("churn-%d", (i+3)%7))
			}
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				feas := ix.Feasibility(target, Mode(i%2))
				// Whatever snapshot we read, pruning must stay sound for
				// the stable candidates.
				if feas.Prunes("same") || feas.Prunes("renamed") {
					t.Error("sound candidate pruned during churn")
					return
				}
				_ = ix.Generation()
				_ = ix.Len()
			}
		}()
	}
	// Readers finish first; then stop the writer.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)
}
