package match

import (
	"fmt"

	"dexa/internal/core"
	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/telemetry"
	"dexa/internal/typesys"
)

// Verdict is the outcome of a behaviour comparison (§6).
type Verdict int

const (
	// Incomparable: no parameter mapping exists, or no examples aligned.
	Incomparable Verdict = iota
	// Disjoint: aligned examples all produced different outputs.
	Disjoint
	// Overlapping: some, but not all, aligned examples agreed.
	Overlapping
	// Equivalent: every aligned example agreed ("eventually equivalent").
	Equivalent
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Incomparable:
		return "incomparable"
	case Disjoint:
		return "disjoint"
	case Overlapping:
		return "overlapping"
	case Equivalent:
		return "equivalent"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Result reports one behaviour comparison.
type Result struct {
	TargetID    string
	CandidateID string
	Verdict     Verdict
	Mapping     Mapping
	// Compared is the number of aligned example pairs; Agreeing how many of
	// them produced identical outputs.
	Compared int
	Agreeing int
	// AgreeingKeys lists the input keys of agreeing pairs (used by the
	// contextual repair check).
	AgreeingKeys map[string]bool
}

// Score is the agreement ratio (0 when nothing was compared).
func (r Result) Score() float64 {
	if r.Compared == 0 {
		return 0
	}
	return float64(r.Agreeing) / float64(r.Compared)
}

func verdictFor(compared, agreeing int) Verdict {
	switch {
	case compared == 0:
		return Incomparable
	case agreeing == compared:
		return Equivalent
	case agreeing > 0:
		return Overlapping
	default:
		return Disjoint
	}
}

// ExampleSource yields the data examples a comparison is based on. Both
// *core.Generator and *core.CachedGenerator satisfy it; use the cached
// variant when the same modules are compared repeatedly (a substitute
// search over a catalog regenerates each candidate's set once per target
// otherwise).
type ExampleSource interface {
	Generate(m *module.Module) (dataexample.Set, *core.Report, error)
}

// Comparer compares module behaviour using data examples generated over a
// shared ontology and instance pool.
//
// Concurrency: a Comparer is safe for concurrent use as long as its
// fields are not mutated after construction — the ontology, generator and
// pool are all read-only during comparison. FindSubstitutes additionally
// invokes candidate modules from worker goroutines (each module from one
// worker only); module executors shared across candidates must tolerate
// concurrent invocation, as the transport and simulation executors do.
type Comparer struct {
	Ont *ontology.Ontology
	Gen ExampleSource
	// Mode selects the parameter-mapping strictness (default ModeExact).
	Mode Mode
	// Workers bounds FindSubstitutes' candidate fan-out; <= 0 selects
	// GOMAXPROCS. The ranking is deterministic at any width.
	Workers int
	// Index, when set, prunes substitute searches and matrix builds to
	// the mapping-feasible candidates before any example comparison. The
	// results are byte-identical to the exhaustive search (see
	// CatalogIndex); the caller owns keeping the index in sync with
	// signature changes via Update/Remove.
	Index *CatalogIndex
	// Metrics, when set, records search/comparison/prune counters and the
	// matrix cell-latency histogram.
	Metrics *telemetry.Registry
}

// NewComparer builds a Comparer with exact mapping.
func NewComparer(ont *ontology.Ontology, gen ExampleSource) *Comparer {
	return &Comparer{Ont: ont, Gen: gen}
}

// NewCachedComparer builds a Comparer that memoizes generated example
// sets per module, so comparing one catalog against itself (or many
// targets against the same candidates) generates each set once.
func NewCachedComparer(ont *ontology.Ontology, gen *core.Generator) *Comparer {
	return &Comparer{Ont: ont, Gen: core.NewCachedGenerator(gen)}
}

// Compare generates data examples for both live modules and classifies
// their behaviour. Because both sets draw partition values from the same
// pool deterministically, examples over mapped parameters with the same
// semantic domain automatically share input values (§6: "we choose the
// same value for both i and i′").
func (c *Comparer) Compare(target, candidate *module.Module) (Result, error) {
	mapping, ok := MapParameters(c.Ont, target, candidate, c.Mode)
	if !ok {
		return Result{TargetID: target.ID, CandidateID: candidate.ID, Verdict: Incomparable}, nil
	}
	tSet, _, err := c.Gen.Generate(target)
	if err != nil {
		return Result{}, fmt.Errorf("match: generating for target %s: %w", target.ID, err)
	}
	cSet, _, err := c.Gen.Generate(candidate)
	if err != nil {
		return Result{}, fmt.Errorf("match: generating for candidate %s: %w", candidate.ID, err)
	}
	return compareSets(target.ID, candidate.ID, tSet, cSet, mapping), nil
}

// CompareExampleSets aligns two raw example sets through the mapping
// (map∆ of §6: pairs with identical input values) and contrasts outputs,
// recomputing canonical keys on the fly. Prefer CompareKeyedSets when the
// same sets participate in many comparisons — a catalog matrix, say.
func CompareExampleSets(targetID, candidateID string, tSet, cSet dataexample.Set, mapping Mapping) Result {
	return compareSets(targetID, candidateID, tSet, cSet, mapping)
}

// compareSets is the unkeyed alignment. Duplicate candidate input keys
// keep the first occurrence, matching Set.ByInputKey (generation never
// produces duplicates; the tie-break only matters for hand-built sets).
func compareSets(targetID, candidateID string, tSet, cSet dataexample.Set, mapping Mapping) Result {
	res := Result{TargetID: targetID, CandidateID: candidateID, Mapping: mapping, AgreeingKeys: map[string]bool{}}
	cIdx := make(map[string]dataexample.Example, len(cSet))
	for _, e := range cSet {
		k := e.InputKey()
		if _, dup := cIdx[k]; !dup {
			cIdx[k] = e
		}
	}
	for _, te := range tSet {
		translated := translateInputs(te.Inputs, mapping.Inputs)
		key := (dataexample.Example{Inputs: translated}).InputKey()
		ce, ok := cIdx[key]
		if !ok {
			continue
		}
		res.Compared++
		if outputsAgree(te.Outputs, ce.Outputs, mapping.Outputs) {
			res.Agreeing++
			res.AgreeingKeys[te.InputKey()] = true
		}
	}
	res.Verdict = verdictFor(res.Compared, res.Agreeing)
	return res
}

// CompareScratch holds the per-comparison buffers CompareKeyedSetsScratch
// reuses across calls, so a warm caller — a matrix sweep visiting tens of
// thousands of cells — allocates nothing per comparison. A scratch must
// not be shared between goroutines; give each worker its own.
type CompareScratch struct {
	agreeing map[string]bool
}

// CompareKeyedSets is CompareExampleSets over key-interned sets: the
// alignment probes the candidate's precomputed input-key index, and under
// an identity mapping (parameter names coincide, the common case inside a
// single catalog) the target's interned keys are reused outright instead
// of re-canonicalising translated assignments. Equal interned output keys
// prove agreement without touching the value maps; unequal keys fall back
// to the per-parameter check, which also covers non-identity mappings.
func CompareKeyedSets(targetID, candidateID string, tSet, cSet *dataexample.KeyedSet, mapping Mapping) Result {
	return CompareKeyedSetsScratch(nil, targetID, candidateID, tSet, cSet, mapping)
}

// CompareKeyedSetsScratch is CompareKeyedSets with caller-owned scratch.
// The returned Result's AgreeingKeys aliases the scratch and is valid
// only until the next call with the same scratch; pass nil to get a
// fresh, caller-owned map (identical to CompareKeyedSets).
//
// When both sets were interned in the same SymbolTable and the mapping is
// the identity, the alignment runs entirely over symbol IDs: membership
// is a bitset probe and output agreement a uint32 compare, with the
// per-parameter value check only as the fallback for unequal output keys.
func CompareKeyedSetsScratch(sc *CompareScratch, targetID, candidateID string, tSet, cSet *dataexample.KeyedSet, mapping Mapping) Result {
	res := Result{TargetID: targetID, CandidateID: candidateID, Mapping: mapping}
	if sc != nil {
		if sc.agreeing == nil {
			sc.agreeing = make(map[string]bool, 8)
		}
		clear(sc.agreeing)
		res.AgreeingKeys = sc.agreeing
	} else {
		res.AgreeingKeys = map[string]bool{}
	}
	idIn := identityMapping(mapping.Inputs)
	idOut := identityMapping(mapping.Outputs)
	sameTable := tSet.Table() != nil && tSet.Table() == cSet.Table()
	useIDs := idIn && sameTable
	for i := 0; i < tSet.Len(); i++ {
		var j int
		var ok bool
		switch {
		case useIDs:
			j, ok = cSet.IndexByInputID(tSet.InputID(i))
		case idIn:
			j, ok = cSet.IndexByInput(tSet.InputKey(i))
		default:
			te := tSet.Example(i)
			key := (dataexample.Example{Inputs: translateInputs(te.Inputs, mapping.Inputs)}).InputKey()
			j, ok = cSet.IndexByInput(key)
		}
		if !ok {
			continue
		}
		res.Compared++
		var agree bool
		if idOut {
			if sameTable {
				agree = tSet.OutputID(i) == cSet.OutputID(j)
			} else {
				agree = tSet.OutputKey(i) == cSet.OutputKey(j)
			}
		}
		if !agree {
			agree = outputsAgree(tSet.Example(i).Outputs, cSet.Example(j).Outputs, mapping.Outputs)
		}
		if agree {
			res.Agreeing++
			res.AgreeingKeys[tSet.InputKey(i)] = true
		}
	}
	res.Verdict = verdictFor(res.Compared, res.Agreeing)
	return res
}

// identityMapping reports whether every parameter maps to its own name.
func identityMapping(m map[string]string) bool {
	for from, to := range m {
		if from != to {
			return false
		}
	}
	return true
}

// CompareAgainstExamples compares a candidate module against the recorded
// data examples of a (possibly unavailable) target module: the candidate is
// invoked on each example's inputs and its outputs contrasted with the
// recorded ones. This is the workflow-repair path of §6 — the target
// cannot be invoked, but its examples survive in provenance. The target's
// parameter signature must be supplied since the module itself is gone.
func (c *Comparer) CompareAgainstExamples(targetSig *module.Module, targetSet dataexample.Set, candidate *module.Module) (Result, error) {
	return c.compareAgainstExamples(targetSig, targetSet, candidate, func(i int) string {
		return targetSet[i].InputKey()
	})
}

// compareAgainstKeyedExamples is CompareAgainstExamples with the target's
// canonical keys interned once per search instead of re-derived per
// agreeing pair per candidate — FindSubstitutes keys the target set once
// and reuses it across the whole candidate field.
func (c *Comparer) compareAgainstKeyedExamples(targetSig *module.Module, keyed *dataexample.KeyedSet, candidate *module.Module) (Result, error) {
	return c.compareAgainstExamples(targetSig, keyed.Examples(), candidate, keyed.InputKey)
}

func (c *Comparer) compareAgainstExamples(targetSig *module.Module, targetSet dataexample.Set, candidate *module.Module, inputKeyAt func(int) string) (Result, error) {
	mapping, ok := MapParameters(c.Ont, targetSig, candidate, c.Mode)
	if !ok {
		return Result{TargetID: targetSig.ID, CandidateID: candidate.ID, Verdict: Incomparable}, nil
	}
	res := Result{TargetID: targetSig.ID, CandidateID: candidate.ID, Mapping: mapping, AgreeingKeys: map[string]bool{}}
	for i, te := range targetSet {
		inputs := translateInputs(te.Inputs, mapping.Inputs)
		outs, err := candidate.Invoke(inputs)
		res.Compared++
		if err != nil {
			if module.IsExecutionError(err) {
				continue // abnormal termination: behaviours differ here
			}
			return Result{}, fmt.Errorf("match: invoking candidate %s: %w", candidate.ID, err)
		}
		if outputsAgree(te.Outputs, outs, mapping.Outputs) {
			res.Agreeing++
			res.AgreeingKeys[inputKeyAt(i)] = true
		}
	}
	res.Verdict = verdictFor(res.Compared, res.Agreeing)
	return res, nil
}

// RestrictToContext filters a target example set to the examples whose
// input partitions are subsumed by the given context concepts (parameter
// name -> concept actually flowing at that point of the workflow). This is
// the Figure-7 situation: an Overlapping candidate is a safe substitute
// when it agrees on every example within the workflow's context.
func RestrictToContext(ont *ontology.Ontology, set dataexample.Set, context map[string]string) dataexample.Set {
	var out dataexample.Set
	for _, e := range set {
		ok := true
		for param, concept := range context {
			part, has := e.InputPartitions[param]
			if !has || !ont.Subsumes(concept, part) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, e)
		}
	}
	return out
}

func translateInputs(inputs map[string]typesys.Value, m map[string]string) map[string]typesys.Value {
	out := make(map[string]typesys.Value, len(inputs))
	for name, v := range inputs {
		if to, ok := m[name]; ok {
			out[to] = v
		}
	}
	return out
}

func outputsAgree(tOut, cOut map[string]typesys.Value, m map[string]string) bool {
	for tName, cName := range m {
		tv, ok1 := tOut[tName]
		cv, ok2 := cOut[cName]
		if ok1 != ok2 {
			return false
		}
		if ok1 && !tv.Equal(cv) {
			return false
		}
	}
	return true
}
