package match

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

// substituteWorld builds one target plus a mixed candidate field large
// enough for the parallel search to actually fan out.
func substituteWorld(t testing.TB) (*fixture, Unavailable, []*module.Module) {
	t.Helper()
	f := newFixture(t)
	target := seqModule("gone", prefixer("X:"))
	set, _, err := f.gen.Generate(target)
	if err != nil {
		t.Fatal(err)
	}
	un := Unavailable{Signature: target, Examples: set}
	var candidates []*module.Module
	for i := 0; i < 4; i++ {
		id := string(rune('a'+i)) + "-equiv"
		candidates = append(candidates, seqModule(id, prefixer("X:")))
	}
	candidates = append(candidates,
		seqModule("overlap-1", func(s string) (string, error) {
			if strings.Contains(s, "U") {
				return "Y:" + s, nil
			}
			return "X:" + s, nil
		}),
		seqModule("overlap-2", func(s string) (string, error) {
			if strings.Contains(s, "M") {
				return "Y:" + s, nil
			}
			return "X:" + s, nil
		}),
		seqModule("disjoint", prefixer("Z:")),
	)
	return f, un, candidates
}

// brokenModule fails every invocation with a persistent transport fault —
// the kind of error CompareAgainstExamples propagates rather than counts
// as behavioural disagreement.
func brokenModule(id, msg string) *module.Module {
	m := seqModule(id, prefixer("X:"))
	m.Bind(module.ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		return nil, module.Transient(id, module.FaultUnavailable, errors.New(msg))
	}))
	return m
}

// TestFindSubstitutesSkipsBrokenCandidate: one candidate whose executor
// fails with a non-execution error (here a dead transport endpoint) must
// land in Skipped with its reason, not abort the search. Abnormal
// terminations stay inside the comparison as disagreement — only errors
// that would previously have failed the whole search become skips.
func TestFindSubstitutesSkipsBrokenCandidate(t *testing.T) {
	f, un, candidates := substituteWorld(t)
	broken := brokenModule("broken", "connection refused: candidate endpoint is gone")
	candidates = append([]*module.Module{broken}, candidates...)

	subs, err := f.cmp.FindSubstitutes(un, candidates)
	if err != nil {
		t.Fatalf("search aborted on a broken candidate: %v", err)
	}
	if len(subs.Ranked) != 6 {
		t.Fatalf("ranked = %d, want 6 (4 equivalent + 2 overlapping)", len(subs.Ranked))
	}
	if len(subs.Skipped) != 1 {
		t.Fatalf("skipped = %+v, want exactly the broken candidate", subs.Skipped)
	}
	sk := subs.Skipped[0]
	if sk.ModuleID != "broken" || !strings.Contains(sk.Reason, "connection refused") {
		t.Errorf("skip record = %+v", sk)
	}
	for _, c := range subs.Ranked {
		if c.Module.ID == "broken" {
			t.Error("broken candidate leaked into the ranking")
		}
	}
}

// TestFindSubstitutesParallelMatchesSequential is the golden determinism
// test: the ranking and skip list must be byte-identical at every worker
// width, including the sequential width of one.
func TestFindSubstitutesParallelMatchesSequential(t *testing.T) {
	f, un, candidates := substituteWorld(t)
	candidates = append(candidates, brokenModule("broken", "boom"))
	f.cmp.Workers = 1
	sequential, err := f.cmp.FindSubstitutes(un, candidates)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 32} {
		f.cmp.Workers = workers
		got, err := f.cmp.FindSubstitutes(un, candidates)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, sequential) {
			t.Errorf("workers=%d: result differs from sequential search", workers)
		}
	}
}

// TestFindSubstitutesConcurrentCallers runs many complete searches at
// once over one Comparer (run with -race to back the concurrency doc).
func TestFindSubstitutesConcurrentCallers(t *testing.T) {
	f, un, candidates := substituteWorld(t)
	want, err := f.cmp.FindSubstitutes(un, candidates)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, err := f.cmp.FindSubstitutes(un, candidates)
				if err != nil || !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent search diverged: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestCachedComparerGeneratesOncePerModule pins the memoization: a cached
// comparer comparing one target against many candidates generates the
// target's example set exactly once.
func TestCachedComparerGeneratesOncePerModule(t *testing.T) {
	f := newFixture(t)
	invocations := map[string]int{}
	var mu sync.Mutex
	counted := func(id string) *module.Module {
		m := seqModule(id, prefixer("X:"))
		m.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
			mu.Lock()
			invocations[id]++
			mu.Unlock()
			s := string(in["seq"].(typesys.StringValue))
			return map[string]typesys.Value{"acc": typesys.Str("X:" + s)}, nil
		}))
		return m
	}
	target := counted("target")
	cands := []*module.Module{counted("c1"), counted("c2"), counted("c3")}

	cmp := NewCachedComparer(f.ont, f.gen)
	for _, c := range cands {
		if _, err := cmp.Compare(target, c); err != nil {
			t.Fatal(err)
		}
	}
	// Seq partitions into {Seq, DNA, RNA, Prot}: 4 combinations per
	// generation. The target must have been generated once, not once per
	// candidate.
	if invocations["target"] != 4 {
		t.Errorf("target invoked %d times, want 4 (single generation)", invocations["target"])
	}
	for _, c := range cands {
		if invocations[c.ID] != 4 {
			t.Errorf("candidate %s invoked %d times, want 4", c.ID, invocations[c.ID])
		}
	}
}
