package match

import (
	"context"
	"fmt"

	"dexa/internal/dataexample"
	"dexa/internal/module"
)

// StoredExamples is the read view of a persisted example store that the
// substitute search needs: the annotation of a decayed module, kept from
// when it was still alive. *store.Store satisfies it.
type StoredExamples interface {
	// Get returns the stored example set and its content hash.
	Get(id string) (dataexample.Set, string, bool)
}

// FindSubstitutesStored runs the substitute search for a module whose
// behaviour is known only through stored examples — the workflow-decay
// scenario of §6: the module can no longer be invoked, but its persisted
// annotation still describes what it used to do. The target's examples
// are read from st; candidates are generated through the Comparer's
// ExampleSource as usual (which may itself be store-backed, in which
// case the whole search runs against persisted annotations).
func (c *Comparer) FindSubstitutesStored(st StoredExamples, target *module.Module, available []*module.Module) (Substitutes, error) {
	return c.FindSubstitutesStoredContext(context.Background(), st, target, available)
}

// FindSubstitutesStoredContext is FindSubstitutesStored with a context,
// so request-scoped tracing reaches the search span.
func (c *Comparer) FindSubstitutesStoredContext(ctx context.Context, st StoredExamples, target *module.Module, available []*module.Module) (Substitutes, error) {
	if target == nil {
		return Substitutes{}, fmt.Errorf("match: nil target module")
	}
	set, _, ok := st.Get(target.ID)
	if !ok {
		return Substitutes{}, fmt.Errorf("match: no stored examples for module %s", target.ID)
	}
	return c.FindSubstitutesContext(ctx, Unavailable{Signature: target, Examples: set}, available)
}
