package match

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/typesys"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// matrixWorld builds a small catalog with every verdict represented plus
// one unannotated module, and generates each set once.
func matrixWorld(t testing.TB) (*fixture, []*module.Module, map[string]dataexample.Set) {
	t.Helper()
	f := newFixture(t)
	renamed := seqModule("renamed-equiv", prefixer("X:"))
	renamed.Inputs[0].Name = "sequence"
	renamed.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		return map[string]typesys.Value{"acc": typesys.Str("X:" + string(in["sequence"].(typesys.StringValue)))}, nil
	}))
	dna := seqModule("dna-only", prefixer("X:"))
	dna.Inputs[0].Semantic = "DNA"
	mods := []*module.Module{
		seqModule("aa-equiv", prefixer("X:")),
		seqModule("bb-equiv", prefixer("X:")),
		seqModule("disjoint", prefixer("Z:")),
		seqModule("overlap", func(s string) (string, error) {
			if strings.Contains(s, "U") {
				return "Y:" + s, nil
			}
			return "X:" + s, nil
		}),
		renamed,
		dna,
		seqModule("no-examples", prefixer("X:")), // deliberately unannotated
	}
	sets := map[string]dataexample.Set{}
	for _, m := range mods {
		if m.ID == "no-examples" {
			continue
		}
		set, _, err := f.gen.Generate(m)
		if err != nil {
			t.Fatal(err)
		}
		sets[m.ID] = set
	}
	return f, mods, sets
}

func setSource(sets map[string]dataexample.Set) SetSource {
	return func(id string) (dataexample.Set, bool) {
		s, ok := sets[id]
		return s, ok
	}
}

// naiveMatrix is the oracle: the plain ordered double loop with no
// index, no mirroring and no concurrency.
func naiveMatrix(f *fixture, mods []*module.Module, mode Mode, sets map[string]dataexample.Set) []MatrixCell {
	byID := map[string]*module.Module{}
	var ids []string
	for id := range sets {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, m := range mods {
		byID[m.ID] = m
	}
	var cells []MatrixCell
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			mapping, ok := MapParameters(f.ont, byID[a], byID[b], mode)
			if !ok {
				continue
			}
			res := CompareExampleSets(a, b, sets[a], sets[b], mapping)
			if res.Verdict == Incomparable {
				continue
			}
			cells = append(cells, MatrixCell{
				Target: a, Candidate: b, Verdict: res.Verdict.String(),
				Score: res.Score(), Compared: res.Compared, Agreeing: res.Agreeing,
			})
		}
	}
	return cells
}

// TestMatchMatrixAgainstNaive: with and without the index, in both
// modes, the sharded + mirrored matrix must equal the naive ordered
// double loop cell for cell, and the stats must account for every pair.
func TestMatchMatrixAgainstNaive(t *testing.T) {
	f, mods, sets := matrixWorld(t)
	for _, mode := range []Mode{ModeExact, ModeRelaxed} {
		f.cmp.Mode = mode
		want := naiveMatrix(f, mods, mode, sets)
		for _, indexed := range []bool{false, true} {
			f.cmp.Index = nil
			if indexed {
				f.cmp.Index = NewCatalogIndex(f.ont, mods)
			}
			mm, err := f.cmp.MatchMatrixFromSets(context.Background(), mods, setSource(sets))
			if err != nil {
				t.Fatalf("%s/indexed=%v: %v", mode, indexed, err)
			}
			if !reflect.DeepEqual(mm.Cells, want) {
				t.Errorf("%s/indexed=%v: cells diverged from naive sweep\n got %+v\nwant %+v",
					mode, indexed, mm.Cells, want)
			}
			// Every pair is either pruned, aligned, mirrored, or
			// mapping-infeasible without an index to prune it. In exact mode
			// with the index the prune is complete, so the first three
			// account for every pair exactly.
			got := mm.Stats.Pruned + mm.Stats.Compared + mm.Stats.Mirrored
			if got > mm.Stats.Pairs {
				t.Errorf("%s/indexed=%v: pruned+compared+mirrored = %d > %d pairs",
					mode, indexed, got, mm.Stats.Pairs)
			}
			if mode == ModeExact && indexed && got != mm.Stats.Pairs {
				t.Errorf("exact/indexed: pruned+compared+mirrored = %d, want %d pairs",
					got, mm.Stats.Pairs)
			}
			if len(mm.Missing) != 1 || mm.Missing[0] != "no-examples" {
				t.Errorf("missing = %v", mm.Missing)
			}
			if indexed && mode == ModeExact && mm.Stats.Pruned == 0 {
				t.Error("exact indexed sweep pruned nothing despite infeasible pairs")
			}
			if mode == ModeExact && indexed && mm.Stats.Mirrored == 0 {
				t.Error("exact sweep mirrored nothing despite symmetric pairs")
			}
		}
	}
}

// TestMatchMatrixDeterministicAcrossWorkers pins byte-identical output
// at every worker width.
func TestMatchMatrixDeterministicAcrossWorkers(t *testing.T) {
	f, mods, sets := matrixWorld(t)
	f.cmp.Index = NewCatalogIndex(f.ont, mods)
	f.cmp.Workers = 1
	want, err := f.cmp.MatchMatrixFromSets(context.Background(), mods, setSource(sets))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 16} {
		f.cmp.Workers = workers
		got, err := f.cmp.MatchMatrixFromSets(context.Background(), mods, setSource(sets))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: matrix differs from sequential build", workers)
		}
	}
}

// TestMatchMatrixCancellation: a cancelled context aborts the sweep.
func TestMatchMatrixCancellation(t *testing.T) {
	f, mods, sets := matrixWorld(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f.cmp.Workers = 1
	if _, err := f.cmp.MatchMatrixFromSets(ctx, mods, setSource(sets)); err == nil {
		t.Error("cancelled sweep should error")
	}
}

// TestMatchMatrixGolden pins the serialized JSON shape — field names,
// cell ordering, stats — against a checked-in golden file. Regenerate
// with: go test ./internal/match -run TestMatchMatrixGolden -update
func TestMatchMatrixGolden(t *testing.T) {
	f, mods, sets := matrixWorld(t)
	f.cmp.Index = NewCatalogIndex(f.ont, mods)
	f.cmp.Workers = 1
	mm, err := f.cmp.MatchMatrixFromSets(context.Background(), mods, setSource(sets))
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(mm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "matrix_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if string(got) != string(want) {
		t.Errorf("matrix JSON diverged from golden file %s\n got:\n%s", path, got)
	}
}

// TestMatchMatrixTiny: degenerate catalogs must not panic and must
// report empty-but-valid matrices.
func TestMatchMatrixTiny(t *testing.T) {
	f, _, _ := matrixWorld(t)
	for _, mods := range [][]*module.Module{
		nil,
		{seqModule("solo", prefixer("X:"))},
	} {
		sets := map[string]dataexample.Set{}
		for _, m := range mods {
			set, _, err := f.gen.Generate(m)
			if err != nil {
				t.Fatal(err)
			}
			sets[m.ID] = set
		}
		mm, err := f.cmp.MatchMatrixFromSets(context.Background(), mods, setSource(sets))
		if err != nil {
			t.Fatal(err)
		}
		if len(mm.Cells) != 0 || mm.Stats.Pairs != 0 {
			t.Errorf("tiny matrix = %+v", mm)
		}
	}
	// Duplicate module entries collapse to one.
	dup := seqModule("dup", prefixer("X:"))
	set, _, err := f.gen.Generate(dup)
	if err != nil {
		t.Fatal(err)
	}
	mm, err := f.cmp.MatchMatrixFromSets(context.Background(),
		[]*module.Module{dup, dup}, setSource(map[string]dataexample.Set{"dup": set}))
	if err != nil {
		t.Fatal(err)
	}
	if mm.Stats.Modules != 1 {
		t.Errorf("dup modules = %d", mm.Stats.Modules)
	}
}
