package match

import (
	"context"
	"strconv"
	"sync"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/telemetry"
)

// IncrementalMatrix maintains the catalog's all-pairs verdict grid across
// catalog changes, recomputing only the rows and columns of modules that
// actually changed instead of re-sweeping every pair. It produces output
// byte-identical to a fresh MatchMatrixFromKeyedSets build over the same
// inputs (TestIncrementalMatrixEqualsFull drives random mutation
// sequences against the full rebuild).
//
// A module's row and column are invalidated when any of these change
// between calls:
//
//   - its keyed-set pointer from the source (the store hands out one
//     *KeyedSet per stored content, so a changed pointer means changed
//     annotation — and a re-annotation restoring identical content is a
//     content-addressed no-op that keeps the pointer);
//   - its signature pointer (callers passing rebuilt module values
//     conservatively recompute);
//   - its indexed-signature snapshot (CatalogIndex.Update/Remove, fired
//     by the lifecycle's availability flips, install a fresh snapshot or
//     drop it — and membership decides whether the pair can be pruned at
//     all, which the stats observe);
//   - an explicit Invalidate(id).
//
// The per-pair outcome depends only on the two endpoints' signatures,
// keyed sets and index membership — never on third modules — so diffing
// endpoints per module is exact, not heuristic. Unchanged pairs are
// copied from the previous grid; changed pairs run through the same pair
// computation as the full build, with PrunesPair standing in for the
// row-bitset feasibility query (the two agree per construction; see
// CatalogIndex.PrunesPair).
//
// Concurrency: Matrix serialises callers on an internal mutex; the
// underlying Comparer must be safe for the sweep's worker fan-out, as in
// the full build.
type IncrementalMatrix struct {
	cmp *Comparer

	mu      sync.Mutex
	built   bool
	in      matrixInputs
	grid    []cell
	keyedAt map[string]*dataexample.KeyedSet
	sigAt   map[string]*module.Module
	ixSigAt map[string]*moduleSig
	dirty   map[string]bool
	matrix  *MatchMatrix
}

// NewIncrementalMatrix wraps a Comparer. The Comparer's Mode, Index and
// Workers are read on every call, but changing Mode or swapping Index
// between calls requires InvalidateAll.
func NewIncrementalMatrix(cmp *Comparer) *IncrementalMatrix {
	return &IncrementalMatrix{cmp: cmp, dirty: map[string]bool{}}
}

// Invalidate marks modules whose cached rows and columns must be
// recomputed on the next Matrix call, regardless of pointer equality.
func (im *IncrementalMatrix) Invalidate(ids ...string) {
	im.mu.Lock()
	defer im.mu.Unlock()
	for _, id := range ids {
		im.dirty[id] = true
	}
}

// InvalidateAll drops the cached grid entirely; the next Matrix call
// runs a full sweep.
func (im *IncrementalMatrix) InvalidateAll() {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.built = false
	im.grid = nil
	im.matrix = nil
	clear(im.dirty)
}

// Matrix returns the all-pairs matrix over the given modules and source,
// recomputing only the pairs whose endpoints changed since the previous
// call. The returned matrix is shared with the cache: treat it (and its
// cells) as read-only.
func (im *IncrementalMatrix) Matrix(ctx context.Context, mods []*module.Module, source KeyedSource) (*MatchMatrix, error) {
	_, span := telemetry.StartSpan(ctx, "match.matrix.incremental")
	defer span.End()
	met := newMatchMetrics(im.cmp.Metrics)

	im.mu.Lock()
	defer im.mu.Unlock()

	in := resolveMatrixInputs(mods, source)
	n := len(in.ids)

	// ixSig is the index's signature snapshot for id (nil when unindexed
	// or no index): a fresh pointer on every Update, nil after Remove, so
	// pointer inequality captures both membership flips and re-indexed
	// signature changes.
	ixSig := func(id string) *moduleSig {
		if im.cmp.Index == nil {
			return nil
		}
		return im.cmp.Index.sigSnapshot(id)
	}

	var grid []cell
	var changed int
	if !im.built {
		full, err := im.cmp.buildGrid(ctx, &in, nil, &met)
		if err != nil {
			return nil, err
		}
		grid = full
		changed = n
		span.Annotate("build", "full")
	} else {
		// Diff the new universe against the cached one. Removed modules
		// need no recompute — their rows and columns simply vanish.
		changedIDs := make(map[string]bool)
		for i, id := range in.ids {
			if im.dirty[id] || im.keyedAt[id] != in.keyed[i] || im.sigAt[id] != in.sigs[i] || im.ixSigAt[id] != ixSig(id) {
				changedIDs[id] = true
			}
		}
		changed = len(changedIDs)
		grid = make([]cell, n*n)
		if changed > 0 || len(in.ids) != len(im.in.ids) {
			oldRank := im.in.rank()
			oldN := len(im.in.ids)
			for a := 0; a < n; a++ {
				if !changedIDs[in.ids[a]] {
					oa := oldRank[in.ids[a]]
					for b := 0; b < n; b++ {
						if a == b || changedIDs[in.ids[b]] {
							continue
						}
						ob := oldRank[in.ids[b]]
						grid[a*n+b] = im.grid[oa*oldN+ob]
					}
				}
			}
			prune := func(ti, ci int) bool {
				if im.cmp.Index == nil {
					return false
				}
				return im.cmp.Index.PrunesPair(in.sigs[ti], in.sigs[ci], im.cmp.Mode)
			}
			need := func(a, b int) bool { return changedIDs[in.ids[a]] || changedIDs[in.ids[b]] }
			if n >= 2 {
				if err := im.cmp.sweepGrid(ctx, &in, grid, prune, need, &met); err != nil {
					return nil, err
				}
			}
		} else {
			copy(grid, im.grid)
		}
		span.Annotate("build", "incremental")
	}

	mm := &MatchMatrix{
		Mode:    im.cmp.Mode.String(),
		Modules: in.ids,
		Missing: in.missing,
		Cells:   []MatrixCell{},
		Stats:   MatrixStats{Modules: n, Pairs: n * (n - 1)},
	}
	if n >= 2 {
		assembleMatrix(mm, &in, grid)
	}

	im.built = true
	im.in = in
	im.grid = grid
	im.matrix = mm
	im.keyedAt = make(map[string]*dataexample.KeyedSet, n)
	im.sigAt = make(map[string]*module.Module, n)
	im.ixSigAt = make(map[string]*moduleSig, n)
	for i, id := range in.ids {
		im.keyedAt[id] = in.keyed[i]
		im.sigAt[id] = in.sigs[i]
		im.ixSigAt[id] = ixSig(id)
	}
	clear(im.dirty)

	met.comparisons.Add(uint64(mm.Stats.Compared))
	met.pruned.Add(uint64(mm.Stats.Pruned))
	span.Annotate("modules", strconv.Itoa(n))
	span.Annotate("changed", strconv.Itoa(changed))
	return mm, nil
}
