package match

import (
	"fmt"
	"sort"

	"dexa/internal/dataexample"
	"dexa/internal/module"
)

// Unavailable describes a module that can no longer be invoked: its
// parameter signature (from the registry) and the data examples
// reconstructed from provenance traces.
type Unavailable struct {
	Signature *module.Module
	Examples  dataexample.Set
}

// Candidate pairs a substitute candidate with its comparison result.
type Candidate struct {
	Module *module.Module
	Result Result
}

// FindSubstitutes ranks the available modules that can play the role of
// the unavailable one: Equivalent candidates first, then Overlapping by
// descending agreement score, ties broken by module ID for determinism.
// Disjoint and Incomparable candidates are excluded.
func (c *Comparer) FindSubstitutes(target Unavailable, available []*module.Module) ([]Candidate, error) {
	if target.Signature == nil {
		return nil, fmt.Errorf("match: unavailable module has no signature")
	}
	if len(target.Examples) == 0 {
		return nil, fmt.Errorf("match: unavailable module %s has no data examples", target.Signature.ID)
	}
	var out []Candidate
	for _, cand := range available {
		if cand.ID == target.Signature.ID {
			continue
		}
		res, err := c.CompareAgainstExamples(target.Signature, target.Examples, cand)
		if err != nil {
			return nil, err
		}
		if res.Verdict == Equivalent || res.Verdict == Overlapping {
			out = append(out, Candidate{Module: cand, Result: res})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Result.Verdict != b.Result.Verdict {
			return a.Result.Verdict > b.Result.Verdict
		}
		if a.Result.Score() != b.Result.Score() {
			return a.Result.Score() > b.Result.Score()
		}
		return a.Module.ID < b.Module.ID
	})
	return out, nil
}

// BestSubstitute returns the top-ranked substitute, or nil when none
// qualifies.
func (c *Comparer) BestSubstitute(target Unavailable, available []*module.Module) (*Candidate, error) {
	cands, err := c.FindSubstitutes(target, available)
	if err != nil || len(cands) == 0 {
		return nil, err
	}
	return &cands[0], nil
}
