package match

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/telemetry"
)

// Unavailable describes a module that can no longer be invoked: its
// parameter signature (from the registry) and the data examples
// reconstructed from provenance traces.
type Unavailable struct {
	Signature *module.Module
	Examples  dataexample.Set
}

// Candidate pairs a substitute candidate with its comparison result.
type Candidate struct {
	Module *module.Module
	Result Result
}

// Skipped records a candidate that could not be compared — its executor
// failed in a way that is neither an abnormal termination nor a transient
// recovery (those are handled inside the comparison), or its comparison
// panicked — together with the reason. Skipped candidates are excluded
// from the ranking but no longer abort the whole search: one broken
// candidate must not hide every other viable substitute.
type Skipped struct {
	ModuleID string
	Reason   string
}

// Substitutes is the outcome of a substitute search.
type Substitutes struct {
	// Ranked lists the qualifying candidates best-first (see FindSubstitutes
	// for the order).
	Ranked []Candidate
	// Skipped lists candidates whose comparison errored, in catalog order.
	Skipped []Skipped
}

// FindSubstitutes ranks the available modules that can play the role of
// the unavailable one: Equivalent candidates first, then Overlapping by
// descending agreement score, ties broken by module ID for determinism.
// Disjoint and Incomparable candidates are excluded; candidates whose
// comparison errors (or panics) are reported in Skipped rather than
// failing the search.
//
// When the Comparer carries a CatalogIndex, candidates whose signature
// provably admits no parameter mapping are pruned before any example
// comparison or module invocation; the result is byte-identical to the
// exhaustive search because such candidates could only ever come back
// Incomparable, which neither ranks nor skips.
//
// Candidates are compared concurrently (Comparer.Workers bounds the
// fan-out; <= 0 selects GOMAXPROCS). Each candidate module is invoked by
// exactly one worker, and the ranking and skip list are assembled in a
// deterministic order independent of scheduling, so the result is
// byte-identical to a sequential search.
func (c *Comparer) FindSubstitutes(target Unavailable, available []*module.Module) (Substitutes, error) {
	return c.FindSubstitutesContext(context.Background(), target, available)
}

// FindSubstitutesContext is FindSubstitutes with a context: when a tracer
// rides the context the search records a span annotated with the
// candidate, pruned and compared counts (the prune ratio shows up in
// /debug/traces per request).
func (c *Comparer) FindSubstitutesContext(ctx context.Context, target Unavailable, available []*module.Module) (Substitutes, error) {
	if target.Signature == nil {
		return Substitutes{}, fmt.Errorf("match: unavailable module has no signature")
	}
	if len(target.Examples) == 0 {
		return Substitutes{}, fmt.Errorf("match: unavailable module %s has no data examples", target.Signature.ID)
	}
	_, span := telemetry.StartSpan(ctx, "match.find_substitutes")
	defer span.End()
	span.Annotate("target", target.Signature.ID)
	span.Annotate("mode", c.Mode.String())
	met := newMatchMetrics(c.Metrics)
	met.searches.Inc()

	var feas *Feasibility
	if c.Index != nil {
		feas = c.Index.Feasibility(target.Signature, c.Mode)
	}
	keyed := target.Examples.Keyed()

	type slot struct {
		res Result
		err error
	}
	slots := make([]slot, len(available))
	// compareOne runs one candidate comparison, converting a panic
	// anywhere below (a hostile executor, a malformed example) into an
	// error so the candidate lands in Skipped. Without the recover, a
	// panicking worker would kill its goroutine and the job feed below
	// would block forever on the dead pool.
	compareOne := func(i int) (res Result, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("match: comparing candidate %s: panic: %v", available[i].ID, p)
			}
		}()
		return c.compareAgainstKeyedExamples(target.Signature, keyed, available[i])
	}
	// runnable enumerates the candidate indices that actually compare:
	// the target itself never competes, and index-pruned candidates are
	// settled as Incomparable without running (the zero slot).
	pruned := 0
	runnable := make([]int, 0, len(available))
	for i, cand := range available {
		if cand.ID == target.Signature.ID {
			continue // never propose the unavailable module as its own substitute
		}
		if feas.Prunes(cand.ID) {
			pruned++
			continue
		}
		runnable = append(runnable, i)
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runnable) {
		workers = len(runnable)
	}
	if workers <= 1 {
		// Inline fast path: a one-worker pool would pay a channel handoff
		// per candidate for no concurrency.
		for _, i := range runnable {
			res, err := compareOne(i)
			slots[i] = slot{res: res, err: err}
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					res, err := compareOne(i)
					slots[i] = slot{res: res, err: err}
				}
			}()
		}
		for _, i := range runnable {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	met.comparisons.Add(uint64(len(runnable)))
	met.pruned.Add(uint64(pruned))
	span.Annotate("candidates", strconv.Itoa(len(runnable)+pruned))
	span.Annotate("compared", strconv.Itoa(len(runnable)))
	span.Annotate("pruned", strconv.Itoa(pruned))
	if total := len(runnable) + pruned; total > 0 {
		span.Annotate("prune_ratio", strconv.FormatFloat(float64(pruned)/float64(total), 'f', 3, 64))
	}

	var out Substitutes
	for i, cand := range available {
		if cand.ID == target.Signature.ID {
			continue
		}
		s := slots[i]
		if s.err != nil {
			out.Skipped = append(out.Skipped, Skipped{ModuleID: cand.ID, Reason: s.err.Error()})
			continue
		}
		if s.res.Verdict == Equivalent || s.res.Verdict == Overlapping {
			out.Ranked = append(out.Ranked, Candidate{Module: cand, Result: s.res})
		}
	}
	sort.Slice(out.Ranked, func(i, j int) bool {
		a, b := out.Ranked[i], out.Ranked[j]
		if a.Result.Verdict != b.Result.Verdict {
			return a.Result.Verdict > b.Result.Verdict
		}
		if a.Result.Score() != b.Result.Score() {
			return a.Result.Score() > b.Result.Score()
		}
		return a.Module.ID < b.Module.ID
	})
	return out, nil
}

// BestSubstitute returns the top-ranked substitute, or nil when none
// qualifies.
func (c *Comparer) BestSubstitute(target Unavailable, available []*module.Module) (*Candidate, error) {
	subs, err := c.FindSubstitutes(target, available)
	if err != nil || len(subs.Ranked) == 0 {
		return nil, err
	}
	return &subs.Ranked[0], nil
}
