package match

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/telemetry"
)

// SetSource yields the example set annotating one module for a matrix
// build: a generation cache, the persistent store, or any map. Returning
// false marks the module as unannotated; it is listed in Missing and
// excluded from the pair sweep.
type SetSource func(id string) (set dataexample.Set, ok bool)

// MatrixCell is one non-incomparable verdict of the all-pairs sweep.
type MatrixCell struct {
	Target    string  `json:"target"`
	Candidate string  `json:"candidate"`
	Verdict   string  `json:"verdict"`
	Score     float64 `json:"score"`
	Compared  int     `json:"compared"`
	Agreeing  int     `json:"agreeing"`
}

// MatrixStats summarises the sweep: how many ordered pairs the catalog
// induces, how many the signature index pruned without any example
// comparison, how many alignments actually ran, and how many cells were
// filled by symmetry instead of recomputation.
type MatrixStats struct {
	Modules      int `json:"modules"`
	Pairs        int `json:"pairs"`
	Pruned       int `json:"pruned"`
	Compared     int `json:"compared"`
	Mirrored     int `json:"mirrored"`
	Incomparable int `json:"incomparable"`
	Equivalent   int `json:"equivalent"`
	Overlapping  int `json:"overlapping"`
	Disjoint     int `json:"disjoint"`
}

// MatchMatrix is the materialised catalog-wide verdict map: every ordered
// module pair whose behaviours are comparable at all, in deterministic
// (target, candidate) order. Incomparable pairs — the overwhelming
// majority at catalog scale — are represented implicitly: any pair
// absent from Cells is Incomparable.
type MatchMatrix struct {
	Mode    string       `json:"mode"`
	Modules []string     `json:"modules"`
	Missing []string     `json:"missing,omitempty"`
	Cells   []MatrixCell `json:"cells"`
	Stats   MatrixStats  `json:"stats"`
}

// matrixSets is the resolved input of a matrix build.
type matrixSets struct {
	ids   []string // modules with example sets, sorted
	sigs  map[string]*module.Module
	keyed map[string]*dataexample.KeyedSet
}

// MatchMatrixFromSets materialises the all-pairs verdict map over the
// given modules, reading each module's example set from sets (the store,
// a generation cache, …). The sweep is pure set alignment — no module is
// invoked — so it runs over stored annotations of retired modules just
// as well as fresh ones.
//
// Determinism and dedup: cells are ordered by (target, candidate) module
// ID regardless of worker scheduling. In ModeExact, a symmetric pair
// whose reverse mapping is exactly the inverse of the forward one (and
// whose sets have unique input keys) is computed once and mirrored —
// alignment through a bijective translation is symmetric in Compared and
// Agreeing — while any ambiguous or asymmetric pair is computed in both
// directions, keeping the matrix byte-identical to the naive ordered
// double loop. ModeRelaxed is inherently directional and always computes
// both directions.
//
// When the Comparer carries a CatalogIndex, each target's feasibility
// query prunes the infeasible candidate row before any alignment.
func (c *Comparer) MatchMatrixFromSets(ctx context.Context, mods []*module.Module, sets SetSource) (*MatchMatrix, error) {
	_, span := telemetry.StartSpan(ctx, "match.matrix")
	defer span.End()
	met := newMatchMetrics(c.Metrics)

	in := matrixSets{sigs: map[string]*module.Module{}, keyed: map[string]*dataexample.KeyedSet{}}
	var missing []string
	seen := map[string]bool{}
	for _, m := range mods {
		if m == nil || seen[m.ID] {
			continue
		}
		seen[m.ID] = true
		set, ok := sets(m.ID)
		if !ok {
			missing = append(missing, m.ID)
			continue
		}
		in.sigs[m.ID] = m
		in.keyed[m.ID] = set.Keyed()
		in.ids = append(in.ids, m.ID)
	}
	sort.Strings(in.ids)
	sort.Strings(missing)
	n := len(in.ids)

	mm := &MatchMatrix{
		Mode:    c.Mode.String(),
		Modules: in.ids,
		Missing: missing,
		Cells:   []MatrixCell{},
		Stats:   MatrixStats{Modules: n, Pairs: n * (n - 1)},
	}
	if n < 2 {
		return mm, ctx.Err()
	}

	// Feasibility rows, one per target, shared by both directions.
	feas := make([]*Feasibility, n)
	if c.Index != nil {
		for i, id := range in.ids {
			feas[i] = c.Index.Feasibility(in.sigs[id], c.Mode)
		}
	}

	// Work items: unordered pairs a<b; each item settles both directions.
	type item struct{ a, b int }
	items := make([]item, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			items = append(items, item{a, b})
		}
	}
	type cellRes struct {
		verdict  Verdict
		score    float64
		compared int
		agreeing int
		pruned   bool
		mirrored bool
		aligned  bool // an example alignment actually ran for this direction
	}
	results := make([][2]cellRes, len(items)) // [0] = a→b, [1] = b→a

	// direction computes one ordered cell, optionally reusing a known
	// mapping instead of re-deriving it.
	direction := func(ti, ci int, mapping Mapping, haveMapping bool) cellRes {
		tid, cid := in.ids[ti], in.ids[ci]
		if feas[ti].Prunes(cid) {
			return cellRes{verdict: Incomparable, pruned: true}
		}
		if !haveMapping {
			var ok bool
			mapping, ok = MapParameters(c.Ont, in.sigs[tid], in.sigs[cid], c.Mode)
			if !ok {
				return cellRes{verdict: Incomparable}
			}
		}
		start := time.Now()
		res := CompareKeyedSets(tid, cid, in.keyed[tid], in.keyed[cid], mapping)
		met.matrixCells.Observe(time.Since(start).Seconds())
		return cellRes{verdict: res.Verdict, score: res.Score(), compared: res.Compared, agreeing: res.Agreeing, aligned: true}
	}
	work := func(it item) [2]cellRes {
		a, b := it.a, it.b
		var out [2]cellRes
		if c.Mode == ModeExact {
			fwd, fok := c.mapUnlessPruned(in, feas, a, b)
			rev, rok := c.mapUnlessPruned(in, feas, b, a)
			if fok && rok && mappingsInverse(fwd, rev) &&
				in.keyed[in.ids[a]].UniqueInputs() && in.keyed[in.ids[b]].UniqueInputs() {
				out[0] = direction(a, b, fwd, true)
				out[1] = out[0]
				out[1].aligned = false
				out[1].mirrored = true
				return out
			}
		}
		out[0] = direction(a, b, Mapping{}, false)
		out[1] = direction(b, a, Mapping{}, false)
		return out
	}

	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for k, it := range items {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			results[k] = work(it)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= len(items) || ctx.Err() != nil {
						return
					}
					results[k] = work(items[k])
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Deterministic assembly: results indexed back into a dense grid,
	// then emitted row-major by (target, candidate).
	grid := make([]cellRes, n*n)
	for k, it := range items {
		grid[it.a*n+it.b] = results[k][0]
		grid[it.b*n+it.a] = results[k][1]
	}
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			cr := grid[a*n+b]
			switch {
			case cr.pruned:
				mm.Stats.Pruned++
			case cr.aligned:
				mm.Stats.Compared++
			case cr.mirrored:
				mm.Stats.Mirrored++
			}
			switch cr.verdict {
			case Incomparable:
				mm.Stats.Incomparable++
				continue
			case Equivalent:
				mm.Stats.Equivalent++
			case Overlapping:
				mm.Stats.Overlapping++
			case Disjoint:
				mm.Stats.Disjoint++
			}
			mm.Cells = append(mm.Cells, MatrixCell{
				Target:    in.ids[a],
				Candidate: in.ids[b],
				Verdict:   cr.verdict.String(),
				Score:     cr.score,
				Compared:  cr.compared,
				Agreeing:  cr.agreeing,
			})
		}
	}
	met.comparisons.Add(uint64(mm.Stats.Compared))
	met.pruned.Add(uint64(mm.Stats.Pruned))
	span.Annotate("modules", strconv.Itoa(n))
	span.Annotate("pairs", strconv.Itoa(mm.Stats.Pairs))
	span.Annotate("pruned", strconv.Itoa(mm.Stats.Pruned))
	span.Annotate("compared", strconv.Itoa(mm.Stats.Compared))
	span.Annotate("mirrored", strconv.Itoa(mm.Stats.Mirrored))
	return mm, nil
}

// mapUnlessPruned resolves the mapping for the ordered direction unless
// the index already pruned it.
func (c *Comparer) mapUnlessPruned(in matrixSets, feas []*Feasibility, ti, ci int) (Mapping, bool) {
	if feas[ti].Prunes(in.ids[ci]) {
		return Mapping{}, false
	}
	return MapParameters(c.Ont, in.sigs[in.ids[ti]], in.sigs[in.ids[ci]], c.Mode)
}

// mappingsInverse reports whether b is exactly the inverse of a on both
// sides — the condition under which an exact-mode alignment may be
// mirrored instead of recomputed.
func mappingsInverse(a, b Mapping) bool {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for from, to := range a.Inputs {
		if got, ok := b.Inputs[to]; !ok || got != from {
			return false
		}
	}
	for from, to := range a.Outputs {
		if got, ok := b.Outputs[to]; !ok || got != from {
			return false
		}
	}
	return true
}
