package match

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dexa/internal/dataexample"
	"dexa/internal/module"
	"dexa/internal/telemetry"
)

// SetSource yields the example set annotating one module for a matrix
// build: a generation cache, the persistent store, or any map. Returning
// false marks the module as unannotated; it is listed in Missing and
// excluded from the pair sweep.
type SetSource func(id string) (set dataexample.Set, ok bool)

// KeyedSource yields the key-interned example set annotating one module.
// Sources that key (and intern) once per store write — *store.Store via
// GetKeyed — let every matrix build skip canonicalisation entirely; the
// sweep then compares interned symbol IDs end to end.
type KeyedSource func(id string) (set *dataexample.KeyedSet, ok bool)

// MatrixCell is one non-incomparable verdict of the all-pairs sweep.
type MatrixCell struct {
	Target    string  `json:"target"`
	Candidate string  `json:"candidate"`
	Verdict   string  `json:"verdict"`
	Score     float64 `json:"score"`
	Compared  int     `json:"compared"`
	Agreeing  int     `json:"agreeing"`
}

// MatrixStats summarises the sweep: how many ordered pairs the catalog
// induces, how many the signature index pruned without any example
// comparison, how many alignments actually ran, and how many cells were
// filled by symmetry instead of recomputation.
type MatrixStats struct {
	Modules      int `json:"modules"`
	Pairs        int `json:"pairs"`
	Pruned       int `json:"pruned"`
	Compared     int `json:"compared"`
	Mirrored     int `json:"mirrored"`
	Incomparable int `json:"incomparable"`
	Equivalent   int `json:"equivalent"`
	Overlapping  int `json:"overlapping"`
	Disjoint     int `json:"disjoint"`
}

// MatchMatrix is the materialised catalog-wide verdict map: every ordered
// module pair whose behaviours are comparable at all, in deterministic
// (target, candidate) order. Incomparable pairs — the overwhelming
// majority at catalog scale — are represented implicitly: any pair
// absent from Cells is Incomparable.
type MatchMatrix struct {
	Mode    string       `json:"mode"`
	Modules []string     `json:"modules"`
	Missing []string     `json:"missing,omitempty"`
	Cells   []MatrixCell `json:"cells"`
	Stats   MatrixStats  `json:"stats"`
}

// cell is one ordered-pair outcome in the dense n×n grid a build fills.
// The provenance flags (pruned/aligned/mirrored) are kept per cell so the
// stats can be re-assembled from any grid — full build or incremental
// patch — without replaying the sweep.
type cell struct {
	verdict  Verdict
	score    float64
	compared int
	agreeing int
	pruned   bool
	mirrored bool
	aligned  bool // an example alignment actually ran for this direction
}

// matrixInputs is the resolved, sorted input of a matrix build: parallel
// columns over the deduped module IDs that have example sets.
type matrixInputs struct {
	ids     []string
	sigs    []*module.Module
	keyed   []*dataexample.KeyedSet
	missing []string
}

func resolveMatrixInputs(mods []*module.Module, source KeyedSource) matrixInputs {
	var in matrixInputs
	seen := make(map[string]bool, len(mods))
	for _, m := range mods {
		if m == nil || seen[m.ID] {
			continue
		}
		seen[m.ID] = true
		set, ok := source(m.ID)
		if !ok {
			in.missing = append(in.missing, m.ID)
			continue
		}
		in.ids = append(in.ids, m.ID)
		in.sigs = append(in.sigs, m)
		in.keyed = append(in.keyed, set)
	}
	// Sort the three columns together by module ID.
	sort.Sort(byMatrixID{&in})
	sort.Strings(in.missing)
	return in
}

// byMatrixID sorts a matrixInputs' parallel columns by module ID.
type byMatrixID struct{ in *matrixInputs }

func (s byMatrixID) Len() int           { return len(s.in.ids) }
func (s byMatrixID) Less(i, j int) bool { return s.in.ids[i] < s.in.ids[j] }
func (s byMatrixID) Swap(i, j int) {
	s.in.ids[i], s.in.ids[j] = s.in.ids[j], s.in.ids[i]
	s.in.sigs[i], s.in.sigs[j] = s.in.sigs[j], s.in.sigs[i]
	s.in.keyed[i], s.in.keyed[j] = s.in.keyed[j], s.in.keyed[i]
}

func (in *matrixInputs) rank() map[string]int {
	r := make(map[string]int, len(in.ids))
	for i, id := range in.ids {
		r[id] = i
	}
	return r
}

// matrixScratch is one worker's arena: comparison buffers and two live
// mapping slots (exact-mode mirroring checks mappingsInverse(fwd, rev),
// so both directions' derivations must be alive at once).
type matrixScratch struct {
	cmp CompareScratch
	fwd mappingSlot
	rev mappingSlot
}

// pruneFunc reports whether the index prunes the ordered direction
// (target index, candidate index) before any mapping or alignment.
type pruneFunc func(ti, ci int) bool

// MatchMatrixFromSets materialises the all-pairs verdict map over the
// given modules, reading each module's example set from sets (the store,
// a generation cache, …) and keying it into a build-local symbol table.
// Prefer MatchMatrixFromKeyedSets with pre-interned sets when the caller
// keeps them — a serving layer, say — so repeated builds skip the
// canonicalisation pass entirely.
func (c *Comparer) MatchMatrixFromSets(ctx context.Context, mods []*module.Module, sets SetSource) (*MatchMatrix, error) {
	tab := dataexample.NewSymbolTable()
	return c.MatchMatrixFromKeyedSets(ctx, mods, func(id string) (*dataexample.KeyedSet, bool) {
		set, ok := sets(id)
		if !ok {
			return nil, false
		}
		return set.KeyedInterned(tab), true
	})
}

// MatchMatrixFromKeyedSets materialises the all-pairs verdict map over
// pre-keyed example sets. The sweep is pure set alignment — no module is
// invoked — so it runs over stored annotations of retired modules just
// as well as fresh ones.
//
// Determinism and dedup: cells are ordered by (target, candidate) module
// ID regardless of worker scheduling. In ModeExact, a symmetric pair
// whose reverse mapping is exactly the inverse of the forward one (and
// whose sets have unique input keys) is computed once and mirrored —
// alignment through a bijective translation is symmetric in Compared and
// Agreeing — while any ambiguous or asymmetric pair is computed in both
// directions, keeping the matrix byte-identical to the naive ordered
// double loop. ModeRelaxed is inherently directional and always computes
// both directions.
//
// When the Comparer carries a CatalogIndex, each target's feasibility
// query prunes the infeasible candidate row before any alignment.
func (c *Comparer) MatchMatrixFromKeyedSets(ctx context.Context, mods []*module.Module, source KeyedSource) (*MatchMatrix, error) {
	_, span := telemetry.StartSpan(ctx, "match.matrix")
	defer span.End()
	met := newMatchMetrics(c.Metrics)

	in := resolveMatrixInputs(mods, source)
	n := len(in.ids)
	mm := &MatchMatrix{
		Mode:    c.Mode.String(),
		Modules: in.ids,
		Missing: in.missing,
		Cells:   []MatrixCell{},
		Stats:   MatrixStats{Modules: n, Pairs: n * (n - 1)},
	}
	if n < 2 {
		return mm, ctx.Err()
	}
	grid, err := c.buildGrid(ctx, &in, nil, &met)
	if err != nil {
		return nil, err
	}
	assembleMatrix(mm, &in, grid)
	met.comparisons.Add(uint64(mm.Stats.Compared))
	met.pruned.Add(uint64(mm.Stats.Pruned))
	span.Annotate("modules", strconv.Itoa(n))
	span.Annotate("pairs", strconv.Itoa(mm.Stats.Pairs))
	span.Annotate("pruned", strconv.Itoa(mm.Stats.Pruned))
	span.Annotate("compared", strconv.Itoa(mm.Stats.Compared))
	span.Annotate("mirrored", strconv.Itoa(mm.Stats.Mirrored))
	return mm, nil
}

// buildGrid runs the sweep: per-target feasibility rows, then every
// unordered pair need admits (nil means all).
func (c *Comparer) buildGrid(ctx context.Context, in *matrixInputs, need func(a, b int) bool, met *matchMetrics) ([]cell, error) {
	n := len(in.ids)
	var feas []*Feasibility
	if c.Index != nil {
		feas = make([]*Feasibility, n)
		for i := range in.ids {
			feas[i] = c.Index.Feasibility(in.sigs[i], c.Mode)
		}
	}
	prune := func(ti, ci int) bool {
		if feas == nil {
			return false
		}
		return feas[ti].Prunes(in.ids[ci])
	}
	grid := make([]cell, n*n)
	if err := c.sweepGrid(ctx, in, grid, prune, need, met); err != nil {
		return nil, err
	}
	return grid, nil
}

// sweepGrid computes every unordered pair a<b for which need(a, b) holds
// (nil means all), writing both ordered cells of each pair directly into
// the dense grid. Workers claim rows through an atomic counter and carry
// their own scratch, so a warm sweep allocates nothing per cell.
func (c *Comparer) sweepGrid(ctx context.Context, in *matrixInputs, grid []cell, prune pruneFunc, need func(a, b int) bool, met *matchMetrics) error {
	n := len(in.ids)
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n-1 {
		workers = n - 1
	}
	if workers <= 1 {
		var sc matrixScratch
		for a := 0; a < n-1; a++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			for b := a + 1; b < n; b++ {
				if need != nil && !need(a, b) {
					continue
				}
				c.computePair(in, grid, a, b, prune, &sc, met)
			}
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc matrixScratch
			for {
				a := int(next.Add(1)) - 1
				if a >= n-1 || ctx.Err() != nil {
					return
				}
				for b := a + 1; b < n; b++ {
					if need != nil && !need(a, b) {
						continue
					}
					c.computePair(in, grid, a, b, prune, &sc, met)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// computePair settles both ordered directions of the unordered pair
// (a, b), writing grid[a*n+b] and grid[b*n+a]. Workers own disjoint rows
// a and each pair is computed exactly once, so the writes never race.
func (c *Comparer) computePair(in *matrixInputs, grid []cell, a, b int, prune pruneFunc, sc *matrixScratch, met *matchMetrics) {
	n := len(in.ids)
	if c.Mode == ModeExact {
		fwd, fok := c.pairMapping(in, a, b, prune, &sc.fwd)
		rev, rok := c.pairMapping(in, b, a, prune, &sc.rev)
		if fok && rok && mappingsInverse(fwd, rev) &&
			in.keyed[a].UniqueInputs() && in.keyed[b].UniqueInputs() {
			out := c.alignCell(in, a, b, fwd, sc, met)
			grid[a*n+b] = out
			out.aligned = false
			out.mirrored = true
			grid[b*n+a] = out
			return
		}
		grid[a*n+b] = c.directionCell(in, a, b, fwd, fok, prune, sc, met)
		grid[b*n+a] = c.directionCell(in, b, a, rev, rok, prune, sc, met)
		return
	}
	fwd, fok := c.pairMapping(in, a, b, prune, &sc.fwd)
	rev, rok := c.pairMapping(in, b, a, prune, &sc.rev)
	grid[a*n+b] = c.directionCell(in, a, b, fwd, fok, prune, sc, met)
	grid[b*n+a] = c.directionCell(in, b, a, rev, rok, prune, sc, met)
}

// pairMapping resolves the mapping for the ordered direction (ti, ci)
// into the given slot, unless the index already pruned it.
func (c *Comparer) pairMapping(in *matrixInputs, ti, ci int, prune pruneFunc, sl *mappingSlot) (Mapping, bool) {
	if prune(ti, ci) {
		return Mapping{}, false
	}
	return mapParametersInto(sl, c.Ont, in.sigs[ti], in.sigs[ci], c.Mode)
}

// directionCell turns a resolved (or failed) mapping into one ordered
// cell. The pruned flag is re-derived rather than threaded through so a
// failed mapping and a pruned direction stay distinguishable in stats.
func (c *Comparer) directionCell(in *matrixInputs, ti, ci int, mapping Mapping, ok bool, prune pruneFunc, sc *matrixScratch, met *matchMetrics) cell {
	if prune(ti, ci) {
		return cell{verdict: Incomparable, pruned: true}
	}
	if !ok {
		return cell{verdict: Incomparable}
	}
	return c.alignCell(in, ti, ci, mapping, sc, met)
}

// alignCell runs the example alignment for one ordered direction.
func (c *Comparer) alignCell(in *matrixInputs, ti, ci int, mapping Mapping, sc *matrixScratch, met *matchMetrics) cell {
	start := time.Now()
	res := CompareKeyedSetsScratch(&sc.cmp, in.ids[ti], in.ids[ci], in.keyed[ti], in.keyed[ci], mapping)
	met.matrixCells.Observe(time.Since(start).Seconds())
	return cell{verdict: res.Verdict, score: res.Score(), compared: res.Compared, agreeing: res.Agreeing, aligned: true}
}

// assembleMatrix emits the grid row-major by (target, candidate) and
// derives the stats from the per-cell provenance flags.
func assembleMatrix(mm *MatchMatrix, in *matrixInputs, grid []cell) {
	n := len(in.ids)
	count := 0
	for i := range grid {
		if i/n != i%n && grid[i].verdict != Incomparable {
			count++
		}
	}
	mm.Cells = make([]MatrixCell, 0, count)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			cr := grid[a*n+b]
			switch {
			case cr.pruned:
				mm.Stats.Pruned++
			case cr.aligned:
				mm.Stats.Compared++
			case cr.mirrored:
				mm.Stats.Mirrored++
			}
			switch cr.verdict {
			case Incomparable:
				mm.Stats.Incomparable++
				continue
			case Equivalent:
				mm.Stats.Equivalent++
			case Overlapping:
				mm.Stats.Overlapping++
			case Disjoint:
				mm.Stats.Disjoint++
			}
			mm.Cells = append(mm.Cells, MatrixCell{
				Target:    in.ids[a],
				Candidate: in.ids[b],
				Verdict:   cr.verdict.String(),
				Score:     cr.score,
				Compared:  cr.compared,
				Agreeing:  cr.agreeing,
			})
		}
	}
}

// mappingsInverse reports whether b is exactly the inverse of a on both
// sides — the condition under which an exact-mode alignment may be
// mirrored instead of recomputed.
func mappingsInverse(a, b Mapping) bool {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for from, to := range a.Inputs {
		if got, ok := b.Inputs[to]; !ok || got != from {
			return false
		}
	}
	for from, to := range a.Outputs {
		if got, ok := b.Outputs[to]; !ok || got != from {
			return false
		}
	}
	return true
}
