package match

import (
	"strings"
	"testing"
	"time"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

// panickingModule's executor panics on every invocation — the failure
// mode that used to kill a pool worker and deadlock the job feed.
func panickingModule(id string) *module.Module {
	m := seqModule(id, prefixer("X:"))
	m.Bind(module.ExecFunc(func(map[string]typesys.Value) (map[string]typesys.Value, error) {
		panic("executor exploded: " + id)
	}))
	return m
}

// TestFindSubstitutesRecoversPanickingCandidate is the regression test
// for the worker-pool deadlock: before the recover, a panicking
// comparison killed its worker goroutine and the unbuffered job feed
// blocked forever once the remaining workers were saturated. The search
// must instead complete at every worker width with the panicking
// candidate in Skipped and everything else ranked normally.
func TestFindSubstitutesRecoversPanickingCandidate(t *testing.T) {
	f, un, candidates := substituteWorld(t)
	candidates = append([]*module.Module{panickingModule("panics")}, candidates...)

	for _, workers := range []int{1, 2, 0} {
		f.cmp.Workers = workers
		var (
			subs Substitutes
			err  error
		)
		done := make(chan struct{})
		go func() {
			defer close(done)
			subs, err = f.cmp.FindSubstitutes(un, candidates)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("workers=%d: search deadlocked on a panicking candidate", workers)
		}
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(subs.Ranked) != 6 {
			t.Errorf("workers=%d: ranked = %d, want 6", workers, len(subs.Ranked))
		}
		if len(subs.Skipped) != 1 {
			t.Fatalf("workers=%d: skipped = %+v, want exactly the panicking candidate", workers, subs.Skipped)
		}
		sk := subs.Skipped[0]
		if sk.ModuleID != "panics" || !strings.Contains(sk.Reason, "panic") ||
			!strings.Contains(sk.Reason, "executor exploded") {
			t.Errorf("workers=%d: skip record = %+v", workers, sk)
		}
	}
}

// TestFindSubstitutesManyPanickingCandidates saturates every worker with
// panics — the historical deadlock needed only workers-many dead
// goroutines, so a field of panicking candidates wider than the pool is
// the sharpest reproduction.
func TestFindSubstitutesManyPanickingCandidates(t *testing.T) {
	f, un, candidates := substituteWorld(t)
	for _, id := range []string{"p1", "p2", "p3", "p4", "p5", "p6"} {
		candidates = append(candidates, panickingModule(id))
	}
	f.cmp.Workers = 2
	done := make(chan struct{})
	var (
		subs Substitutes
		err  error
	)
	go func() {
		defer close(done)
		subs, err = f.cmp.FindSubstitutes(un, candidates)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("search deadlocked with panicking candidates saturating the pool")
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(subs.Skipped) != 6 {
		t.Errorf("skipped = %d, want 6", len(subs.Skipped))
	}
	if len(subs.Ranked) != 6 {
		t.Errorf("ranked = %d, want 6", len(subs.Ranked))
	}
}
