package match

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

// randomModule builds a module with a random signature over the fixture
// ontology and a deterministic behaviour parameterised by a small salt,
// so random catalogs contain equivalent, overlapping, disjoint and
// incomparable pairs in varying proportions.
func randomModule(r *rand.Rand, id string) *module.Module {
	concepts := []string{"Seq", "DNA", "RNA", "Prot", "Acc"}
	nIn := 1 + r.Intn(2)
	nOut := 1 + r.Intn(2)
	m := &module.Module{ID: id, Name: id}
	for i := 0; i < nIn; i++ {
		m.Inputs = append(m.Inputs, module.Parameter{
			Name: fmt.Sprintf("p%d", i), Struct: typesys.StringType,
			Semantic: concepts[r.Intn(len(concepts))],
		})
	}
	if r.Intn(4) == 0 { // occasional optional input with a default
		m.Inputs = append(m.Inputs, module.Parameter{
			Name: "opt", Struct: typesys.StringType,
			Semantic: concepts[r.Intn(len(concepts))],
			Optional: true, Default: typesys.Str("dflt"),
		})
	}
	outConcepts := make([]string, nOut)
	for i := 0; i < nOut; i++ {
		outConcepts[i] = concepts[r.Intn(len(concepts))]
		m.Outputs = append(m.Outputs, module.Parameter{
			Name: fmt.Sprintf("q%d", i), Struct: typesys.StringType,
			Semantic: outConcepts[i],
		})
	}
	salt := r.Intn(3)
	m.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		names := make([]string, 0, len(in))
		for n := range in {
			names = append(names, n)
		}
		sort.Strings(names)
		var sb strings.Builder
		for _, n := range names {
			sb.WriteString(string(in[n].(typesys.StringValue)))
			sb.WriteByte('|')
		}
		concat := sb.String()
		eff := salt
		if strings.Contains(concat, "U") { // behaviour varies by input region
			eff = (salt + 1) % 3
		}
		out := make(map[string]typesys.Value, nOut)
		for i := 0; i < nOut; i++ {
			// Output values depend on the output's concept (not its name), so
			// renamed-but-mapped outputs can still agree.
			out[fmt.Sprintf("q%d", i)] = typesys.Str(fmt.Sprintf("%d:%s:%s", eff, outConcepts[i], concat))
		}
		return out, nil
	}))
	return m
}

// TestPrunedSearchMatchesExhaustive is the property test behind the
// tentpole's correctness claim: over random catalogs, in both mapping
// modes and at several worker widths, an index-pruned FindSubstitutes
// returns a result byte-identical to the exhaustive search — and in
// exact mode the index prunes exactly the mapping-infeasible candidates,
// never fewer.
func TestPrunedSearchMatchesExhaustive(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := newFixture(t)
		n := 6 + r.Intn(8)
		mods := make([]*module.Module, n)
		for i := range mods {
			mods[i] = randomModule(r, fmt.Sprintf("m%02d", i))
		}
		target := mods[r.Intn(n)]
		set, _, err := f.gen.Generate(target)
		if err != nil {
			t.Fatalf("seed %d: generating target: %v", seed, err)
		}
		un := Unavailable{Signature: target, Examples: set}

		for _, mode := range []Mode{ModeExact, ModeRelaxed} {
			f.cmp.Mode = mode
			f.cmp.Index = nil
			f.cmp.Workers = 1
			want, err := f.cmp.FindSubstitutes(un, mods)
			if err != nil {
				t.Fatalf("seed %d/%s: exhaustive: %v", seed, mode, err)
			}
			ix := NewCatalogIndex(f.ont, mods)
			f.cmp.Index = ix
			for _, workers := range []int{1, 4} {
				f.cmp.Workers = workers
				got, err := f.cmp.FindSubstitutes(un, mods)
				if err != nil {
					t.Fatalf("seed %d/%s/w%d: pruned: %v", seed, mode, workers, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d/%s/w%d: pruned search diverged from exhaustive\n got %+v\nwant %+v",
						seed, mode, workers, got, want)
				}
			}
			// The pruning-power guarantee: exact mode prunes every candidate
			// MapParameters would reject; relaxed mode never prunes one it
			// would accept.
			feas := ix.Feasibility(target, mode)
			infeasible := 0
			for _, m := range mods {
				if m.ID == target.ID {
					continue
				}
				_, mappable := MapParameters(f.ont, target, m, mode)
				if !mappable {
					infeasible++
				}
				if mappable && feas.Prunes(m.ID) {
					t.Errorf("seed %d/%s: unsound prune of %s", seed, mode, m.ID)
				}
			}
			if mode == ModeExact && feas.Pruned != infeasible {
				t.Errorf("seed %d: exact pruned %d of %d infeasible", seed, feas.Pruned, infeasible)
			}
			f.cmp.Index = nil
		}
	}
}
