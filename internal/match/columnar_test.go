package match

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dexa/internal/dataexample"
	"dexa/internal/module"
)

// TestInternedComparisonMatchesOracle: over random catalogs whose sets
// include empty annotations and duplicate-input-key conflicts, the
// interned-ID alignment — shared table, private tables, and string-only
// keying, all through one reused scratch — must be byte-identical to
// the string-keyed oracle for every mappable ordered pair in both
// modes.
func TestInternedComparisonMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		r := rand.New(rand.NewSource(seed + 900))
		f := newFixture(t)
		n := 5 + r.Intn(5)
		mods := make([]*module.Module, n)
		sets := make([]dataexample.Set, n)
		shared := dataexample.NewSymbolTable()
		sharedKeyed := make([]*dataexample.KeyedSet, n)
		privateKeyed := make([]*dataexample.KeyedSet, n)
		stringKeyed := make([]*dataexample.KeyedSet, n)
		for i := range mods {
			mods[i] = randomModule(r, fmt.Sprintf("m%02d", i))
			set, _, err := f.gen.Generate(mods[i])
			if err != nil {
				t.Fatalf("seed %d: generating: %v", seed, err)
			}
			switch r.Intn(5) {
			case 0: // empty annotation: every alignment is Incomparable
				set = nil
			case 1: // duplicate input key, conflicting outputs: first wins
				if len(set) > 1 {
					dup := set[0]
					dup.Outputs = set[1].Outputs
					set = append(set, dup)
				}
			}
			sets[i] = set
			sharedKeyed[i] = set.KeyedInterned(shared)
			privateKeyed[i] = set.KeyedInterned(dataexample.NewSymbolTable())
			stringKeyed[i] = set.Keyed()
		}
		var sc CompareScratch
		for _, mode := range []Mode{ModeExact, ModeRelaxed} {
			for i, tm := range mods {
				for j, cm := range mods {
					if i == j {
						continue
					}
					mapping, ok := MapParameters(f.ont, tm, cm, mode)
					if !ok {
						continue
					}
					want := CompareExampleSets(tm.ID, cm.ID, sets[i], sets[j], mapping)
					for _, v := range []struct {
						name string
						t, c *dataexample.KeyedSet
					}{
						{"shared-table", sharedKeyed[i], sharedKeyed[j]},
						{"private-tables", privateKeyed[i], privateKeyed[j]},
						{"string-only", stringKeyed[i], stringKeyed[j]},
					} {
						got := CompareKeyedSetsScratch(&sc, tm.ID, cm.ID, v.t, v.c, mapping)
						if !reflect.DeepEqual(got, want) {
							t.Errorf("seed %d/%s/%s: %s -> %s diverged from oracle\n got %+v\nwant %+v",
								seed, mode, v.name, tm.ID, cm.ID, got, want)
						}
					}
					// The nil-scratch wrapper must agree too and own its map.
					got := CompareKeyedSets(tm.ID, cm.ID, sharedKeyed[i], sharedKeyed[j], mapping)
					if !reflect.DeepEqual(got, want) {
						t.Errorf("seed %d/%s: CompareKeyedSets %s -> %s diverged from oracle", seed, mode, tm.ID, cm.ID)
					}
				}
			}
		}
	}
}

// TestCatalogIndexPairAgreesWithRow pins the contract PrunesPair is
// built on: the single-pair query must return exactly the verdict the
// row-bitset Feasibility query gives that candidate — for indexed and
// unindexed targets and candidates alike, in both modes.
func TestCatalogIndexPairAgreesWithRow(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed + 500))
		f := newFixture(t)
		n := 6 + r.Intn(8)
		mods := make([]*module.Module, n)
		for i := range mods {
			mods[i] = randomModule(r, fmt.Sprintf("m%02d", i))
		}
		ix := NewCatalogIndex(f.ont, mods)
		outsider := randomModule(r, "outsider") // never indexed
		all := append(append([]*module.Module{}, mods...), outsider)
		for _, mode := range []Mode{ModeExact, ModeRelaxed} {
			for _, target := range all {
				feas := ix.Feasibility(target, mode)
				for _, cand := range all {
					if cand.ID == target.ID {
						continue
					}
					row := feas.Prunes(cand.ID)
					pair := ix.PrunesPair(target, cand, mode)
					if row != pair {
						t.Errorf("seed %d/%s: %s -> %s row prune %v, pair prune %v",
							seed, mode, target.ID, cand.ID, row, pair)
					}
				}
			}
		}
	}
}

// TestIncrementalMatrixEqualsFull drives random mutation sequences —
// annotation changes, content-identical re-interning, annotations
// vanishing and returning, modules leaving and rejoining the universe,
// index availability flips, explicit invalidation, and no-op steps —
// and demands the incremental matrix stay byte-identical to a fresh
// full build after every one.
func TestIncrementalMatrixEqualsFull(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed + 100))
		f := newFixture(t)
		n := 5 + r.Intn(5)
		all := make([]*module.Module, n)
		tab := dataexample.NewSymbolTable()
		raw := make(map[string]dataexample.Set, n)
		keyed := make(map[string]*dataexample.KeyedSet, n)
		for i := range all {
			all[i] = randomModule(r, fmt.Sprintf("m%02d", i))
			set, _, err := f.gen.Generate(all[i])
			if err != nil {
				t.Fatalf("seed %d: generating: %v", seed, err)
			}
			raw[all[i].ID] = set
			keyed[all[i].ID] = set.KeyedInterned(tab)
		}
		src := func(id string) (*dataexample.KeyedSet, bool) {
			s, ok := keyed[id]
			return s, ok
		}
		cmp := NewComparer(f.ont, nil)
		cmp.Mode = []Mode{ModeExact, ModeRelaxed}[r.Intn(2)]
		cmp.Workers = r.Intn(3) // sequential, width 1, width 2
		cmp.Index = NewCatalogIndex(f.ont, all)
		inc := NewIncrementalMatrix(cmp)
		universe := append([]*module.Module{}, all...)
		ctx := context.Background()
		check := func(step string) {
			t.Helper()
			got, err := inc.Matrix(ctx, universe, src)
			if err != nil {
				t.Fatalf("seed %d %s: incremental: %v", seed, step, err)
			}
			want, err := cmp.MatchMatrixFromKeyedSets(ctx, universe, src)
			if err != nil {
				t.Fatalf("seed %d %s: full: %v", seed, step, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d after %s: incremental matrix diverged from the full build\n got %+v\nwant %+v",
					seed, step, got, want)
			}
		}
		check("initial build")
		for step := 0; step < 14; step++ {
			pick := all[r.Intn(n)]
			op := r.Intn(7)
			switch op {
			case 0: // annotation content change (shrink, or restore the original)
				if set := raw[pick.ID]; keyed[pick.ID] != nil && len(set) > 1 && keyed[pick.ID].Len() == len(set) {
					keyed[pick.ID] = set[:len(set)-1].KeyedInterned(tab)
				} else {
					keyed[pick.ID] = raw[pick.ID].KeyedInterned(tab)
				}
			case 1: // fresh pointer, identical content: recompute, same cells
				if keyed[pick.ID] != nil {
					keyed[pick.ID] = keyed[pick.ID].Examples().KeyedInterned(tab)
				}
			case 2: // annotation vanishes / returns
				if keyed[pick.ID] != nil {
					delete(keyed, pick.ID)
				} else {
					keyed[pick.ID] = raw[pick.ID].KeyedInterned(tab)
				}
			case 3: // module leaves / rejoins the universe
				at := -1
				for i, m := range universe {
					if m == pick {
						at = i
						break
					}
				}
				if at >= 0 && len(universe) > 2 {
					universe = append(universe[:at:at], universe[at+1:]...)
				} else if at < 0 {
					universe = append(universe, pick)
				}
			case 4: // index availability flip
				if cmp.Index.Contains(pick.ID) {
					cmp.Index.Remove(pick.ID)
				} else {
					cmp.Index.Update(pick)
				}
			case 5:
				inc.Invalidate(pick.ID)
			case 6: // nothing changed: the cached grid serves as-is
			}
			check(fmt.Sprintf("step %d (op %d on %s)", step, op, pick.ID))
		}
		inc.InvalidateAll()
		check("invalidate-all rebuild")
	}
}
