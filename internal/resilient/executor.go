// Package resilient wraps module executors with the defensive machinery a
// production deployment needs when invoking third-party scientific
// modules: per-attempt timeouts, bounded retry with exponential backoff
// and full jitter, and a per-module circuit breaker. Its companion is the
// error taxonomy of package module — only *transient* transport faults
// (module.TransientError) are retried and counted against provider
// health; execution errors are the module's own verdict on an input
// combination and pass through untouched, so the paper's §3.2 generation
// heuristic keeps its semantics under an unreliable network.
package resilient

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dexa/internal/module"
	"dexa/internal/telemetry"
	"dexa/internal/typesys"
)

// Reporter receives per-call provider-health verdicts. The registry's
// health tracker implements it; a nil reporter is ignored.
type Reporter interface {
	// RecordSuccess notes a healthy round-trip to the module's provider.
	RecordSuccess(moduleID string)
	// RecordFailure notes a transient transport failure; the return
	// reports whether the failure retired the module (the resilient layer
	// ignores it).
	RecordFailure(moduleID string, err error) (retired bool)
}

// Stats counts what the resilient layer did, with atomic counters safe
// for concurrent readers.
type Stats struct {
	// Calls is the number of Invoke calls.
	Calls atomic.Int64
	// Attempts is the number of provider round-trips attempted.
	Attempts atomic.Int64
	// Retries is the number of attempts beyond each call's first.
	Retries atomic.Int64
	// Recovered counts calls that failed transiently at least once but
	// ultimately reached a verdict (success or execution error).
	Recovered atomic.Int64
	// Exhausted counts calls that burned every attempt on transient faults.
	Exhausted atomic.Int64
	// ShortCircuited counts attempts rejected by an open breaker.
	ShortCircuited atomic.Int64
}

// Options configures a resilient executor wrapper.
type Options struct {
	// Policy is the retry policy; zero fields take DefaultPolicy values.
	Policy Policy
	// Breaker configures the per-module circuit breaker; zero fields take
	// defaults.
	Breaker BreakerConfig
	// Clock abstracts time for backoff sleeps and breaker cool-downs; nil
	// means the system clock.
	Clock Clock
	// Reporter receives health verdicts; nil disables reporting.
	Reporter Reporter
	// Metrics, when set, exports per-module resilience counters
	// (dexa_resilient_{attempts,retries,recovered,exhausted,
	// short_circuits}_total{module=...}), the breaker position as
	// dexa_breaker_state{module=...} (0 closed, 1 open, 2 half-open) and
	// dexa_breaker_transitions_total{module=...,to=...}. A nil registry
	// records nothing.
	Metrics *telemetry.Registry
}

// executorMetrics holds the per-module telemetry handles; every field is
// a nil-safe no-op when Options.Metrics is nil.
type executorMetrics struct {
	attempts      *telemetry.Counter
	retries       *telemetry.Counter
	recovered     *telemetry.Counter
	exhausted     *telemetry.Counter
	shortCircuits *telemetry.Counter
}

// breakerStateValue maps a breaker state onto the gauge encoding.
func breakerStateValue(s BreakerState) float64 {
	switch s {
	case BreakerOpen:
		return 1
	case BreakerHalfOpen:
		return 2
	default:
		return 0
	}
}

// Executor wraps an inner module.Executor with timeout, retry, and
// circuit breaking. It implements both module.Executor and
// module.ContextExecutor and is safe for concurrent use.
type Executor struct {
	moduleID string
	inner    module.Executor
	policy   Policy
	breaker  *Breaker
	clock    Clock
	reporter Reporter

	rngMu sync.Mutex
	rng   *rand.Rand

	met executorMetrics

	// Stats is live while the executor is in use; read with the atomic
	// accessors.
	Stats Stats
}

// Wrap builds a resilient executor around inner for the named module.
func Wrap(moduleID string, inner module.Executor, opts Options) *Executor {
	clock := opts.Clock
	if clock == nil {
		clock = SystemClock{}
	}
	pol := opts.Policy.withDefaults()
	seed := pol.Seed
	if seed == 0 {
		seed = 1
	}
	e := &Executor{
		moduleID: moduleID,
		inner:    inner,
		policy:   pol,
		breaker:  NewBreaker(opts.Breaker, clock),
		clock:    clock,
		reporter: opts.Reporter,
		rng:      rand.New(rand.NewSource(seed)),
	}
	if r := opts.Metrics; r != nil {
		e.met = executorMetrics{
			attempts:      r.CounterVec("dexa_resilient_attempts_total", "Provider round-trips attempted.", "module").With(moduleID),
			retries:       r.CounterVec("dexa_resilient_retries_total", "Attempts beyond each call's first.", "module").With(moduleID),
			recovered:     r.CounterVec("dexa_resilient_recovered_total", "Calls that faulted transiently but reached a verdict.", "module").With(moduleID),
			exhausted:     r.CounterVec("dexa_resilient_exhausted_total", "Calls that burned every attempt on transient faults.", "module").With(moduleID),
			shortCircuits: r.CounterVec("dexa_resilient_short_circuits_total", "Attempts rejected by an open breaker.", "module").With(moduleID),
		}
		state := r.GaugeVec("dexa_breaker_state", "Circuit-breaker position: 0 closed, 1 open, 2 half-open.", "module").With(moduleID)
		state.Set(0)
		transitions := r.CounterVec("dexa_breaker_transitions_total", "Circuit-breaker state changes by destination.", "module", "to")
		e.breaker.OnTransition(func(_, to BreakerState) {
			state.Set(breakerStateValue(to))
			transitions.With(moduleID, to.String()).Inc()
		})
	}
	return e
}

// Breaker exposes the wrapped module's circuit breaker (for inspection
// and tests).
func (e *Executor) Breaker() *Breaker { return e.breaker }

// Invoke implements module.Executor.
func (e *Executor) Invoke(inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	return e.InvokeContext(context.Background(), inputs)
}

// InvokeContext implements module.ContextExecutor: it drives the inner
// executor through the retry/breaker state machine until a verdict is
// reached or the attempt budget is spent.
func (e *Executor) InvokeContext(ctx context.Context, inputs map[string]typesys.Value) (outs map[string]typesys.Value, err error) {
	e.Stats.Calls.Add(1)
	ctx, span := telemetry.StartSpan(ctx, "resilient.invoke")
	span.Annotate("module", e.moduleID)
	attempts := 0
	defer func() {
		span.Annotate("attempts", strconv.Itoa(attempts))
		if module.IsTransient(err) {
			// Only transport faults are failures from the resilience layer's
			// point of view; an ExecutionError is a healthy verdict.
			span.Fail(err)
		}
		span.End()
	}()
	var lastErr error
	faulted := false
	for attempt := 1; attempt <= e.policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			e.Stats.Retries.Add(1)
			e.met.retries.Inc()
			e.clock.Sleep(e.nextBackoff(attempt - 1))
		}
		if err := ctx.Err(); err != nil {
			return nil, module.Transient(e.moduleID, module.FaultTimeout, err)
		}
		if err := e.breaker.Allow(); err != nil {
			e.Stats.ShortCircuited.Add(1)
			e.met.shortCircuits.Inc()
			lastErr = e.stamp(err)
			continue
		}
		e.Stats.Attempts.Add(1)
		e.met.attempts.Inc()
		attempts++
		outs, err := e.invokeOnce(ctx, inputs)
		if err == nil {
			e.breaker.OnSuccess()
			e.report(nil)
			if faulted {
				e.Stats.Recovered.Add(1)
				e.met.recovered.Inc()
			}
			return outs, nil
		}
		if !module.IsTransient(err) {
			// The provider answered; the module itself rejected the inputs
			// (or the caller misused the API). That is a *healthy* provider.
			e.breaker.OnSuccess()
			e.report(nil)
			if faulted {
				e.Stats.Recovered.Add(1)
				e.met.recovered.Inc()
			}
			return nil, err
		}
		faulted = true
		e.breaker.OnFailure()
		e.report(err)
		lastErr = e.stamp(err)
	}
	e.Stats.Exhausted.Add(1)
	e.met.exhausted.Inc()
	if lastErr == nil {
		lastErr = module.Transient(e.moduleID, module.FaultUnknown, nil)
	}
	return nil, lastErr
}

// invokeOnce performs one attempt, applying the per-attempt timeout and
// classifying a raw deadline error as a transient timeout fault.
func (e *Executor) invokeOnce(ctx context.Context, inputs map[string]typesys.Value) (map[string]typesys.Value, error) {
	if e.policy.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.policy.AttemptTimeout)
		defer cancel()
	}
	outs, err := module.InvokeWithContext(ctx, e.inner, inputs)
	if err != nil && !module.IsTransient(err) &&
		(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
		return nil, module.Transient(e.moduleID, module.FaultTimeout, err)
	}
	return outs, err
}

func (e *Executor) nextBackoff(retry int) time.Duration {
	e.rngMu.Lock()
	defer e.rngMu.Unlock()
	return e.policy.backoff(retry, e.rng)
}

// stamp ensures transient errors carry the module ID.
func (e *Executor) stamp(err error) error {
	var te *module.TransientError
	if errors.As(err, &te) && te.ModuleID == "" {
		te.ModuleID = e.moduleID
	}
	return err
}

func (e *Executor) report(err error) {
	if e.reporter == nil {
		return
	}
	if err == nil {
		e.reporter.RecordSuccess(e.moduleID)
	} else {
		e.reporter.RecordFailure(e.moduleID, err)
	}
}
