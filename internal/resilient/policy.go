package resilient

import (
	"math/rand"
	"time"
)

// Policy parameterises the retry behaviour of a resilient executor: how
// many attempts, how long each may take, and how long to back off between
// them. Backoff is exponential with *full jitter* — the delay before
// attempt n is uniform in [0, min(MaxBackoff, BaseBackoff·2ⁿ)] — which
// decorrelates retry storms when many clients hit a throttling provider
// at once.
type Policy struct {
	// MaxAttempts is the total number of invocation attempts, first try
	// included (default 4; 1 disables retries).
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt via context deadline
	// when the wrapped executor supports contexts (default 10s; <=0
	// disables the per-attempt deadline).
	AttemptTimeout time.Duration
	// BaseBackoff is the first-retry backoff cap (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// Seed makes the jitter deterministic; 0 selects a fixed default seed,
	// keeping runs reproducible unless a caller opts into variety.
	Seed int64
}

// DefaultPolicy is the production default resilience policy.
var DefaultPolicy = Policy{
	MaxAttempts:    4,
	AttemptTimeout: 10 * time.Second,
	BaseBackoff:    100 * time.Millisecond,
	MaxBackoff:     5 * time.Second,
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultPolicy.MaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultPolicy.BaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultPolicy.MaxBackoff
	}
	return p
}

// backoff returns the jittered delay before retry number retry (1-based),
// drawing from rng.
func (p Policy) backoff(retry int, rng *rand.Rand) time.Duration {
	cap := p.BaseBackoff
	for i := 1; i < retry; i++ {
		cap *= 2
		if cap >= p.MaxBackoff {
			cap = p.MaxBackoff
			break
		}
	}
	if cap <= 0 {
		return 0
	}
	return time.Duration(rng.Int63n(int64(cap) + 1))
}
