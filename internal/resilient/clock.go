package resilient

import (
	"sync"
	"time"
)

// Clock abstracts time so that the retry/backoff and circuit-breaker logic
// can be tested without real sleeps. The production implementation is
// SystemClock; tests use a FakeClock and advance it manually.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// SystemClock is the real wall clock.
type SystemClock struct{}

// Now returns time.Now().
func (SystemClock) Now() time.Time { return time.Now() }

// Sleep blocks for d.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a manually driven clock. Sleep advances the clock instantly
// instead of blocking, which keeps retry loops deterministic and fast; Now
// reflects every Advance and Sleep so breaker cool-downs elapse exactly
// when a test says they do. Safe for concurrent use.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
	// slept accumulates every Sleep duration, so tests can assert on the
	// total backoff a policy requested.
	slept time.Duration
}

// NewFakeClock starts a fake clock at a fixed, arbitrary epoch.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2014, 3, 24, 0, 0, 0, 0, time.UTC)}
}

// Now returns the current fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the clock by d without blocking.
func (c *FakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.now = c.now.Add(d)
		c.slept += d
	}
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Slept returns the total duration passed to Sleep so far.
func (c *FakeClock) Slept() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slept
}
