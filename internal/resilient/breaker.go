package resilient

import (
	"fmt"
	"sync"
	"time"

	"dexa/internal/module"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int

// The canonical three breaker states.
const (
	// BreakerClosed: calls flow normally; consecutive transient failures are
	// counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the failure threshold was reached; calls fail fast
	// without touching the provider until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen: the cool-down elapsed; a limited number of probe
	// calls is let through. One success closes the breaker, one failure
	// re-opens it.
	BreakerHalfOpen
)

// String returns the lexical state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BreakerConfig parameterises a circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive transient failures that
	// opens the breaker (default 5).
	FailureThreshold int
	// Cooldown is how long the breaker stays open before allowing half-open
	// probes (default 30s).
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe calls the half-open state
	// admits (default 1).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// Breaker is a per-module circuit breaker. It only reacts to *transient*
// failures: an execution error (the module rejecting an input combination)
// is a healthy round-trip and counts as success. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu           sync.Mutex
	state        BreakerState
	consecutive  int       // consecutive transient failures while closed
	openedAt     time.Time // when the breaker last opened
	probesInUse  int       // admitted half-open probes awaiting a verdict
	openCount    int       // times the breaker transitioned to open
	shortCircuit int       // calls rejected while open

	// onTransition, when set, observes every state change. It is invoked
	// with the breaker mutex held, so it must be fast and must not call
	// back into the breaker; the telemetry layer uses it to keep a state
	// gauge and a transition counter current.
	onTransition func(from, to BreakerState)
}

// NewBreaker creates a breaker with the given configuration; a nil clock
// means the system clock.
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = SystemClock{}
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// State returns the current state, accounting for an elapsed cool-down
// (an open breaker whose cool-down has passed reports half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refresh()
	return b.state
}

// OnTransition installs a state-change observer (nil clears it). The hook
// runs with the breaker mutex held — keep it cheap and never call back
// into the breaker from it. Install before the breaker sees traffic;
// installation does not synchronise with in-flight calls.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// transition changes state and notifies the observer. Callers must hold
// b.mu; no-op when the state is unchanged.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// refresh moves open→half-open once the cool-down has elapsed. Callers
// must hold b.mu.
func (b *Breaker) refresh() {
	if b.state == BreakerOpen && b.clock.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transition(BreakerHalfOpen)
		b.probesInUse = 0
	}
}

// ErrOpen is the sentinel cause used when a call is rejected by an open
// breaker.
var ErrOpen = fmt.Errorf("circuit breaker open")

// Allow reports whether a call may proceed. A rejection is returned as a
// transient unavailable fault, so upstream layers treat fail-fast exactly
// like provider downtime. Every admitted call must be concluded with
// OnSuccess or OnFailure.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refresh()
	switch b.state {
	case BreakerOpen:
		b.shortCircuit++
		return module.Transient("", module.FaultUnavailable, ErrOpen)
	case BreakerHalfOpen:
		if b.probesInUse >= b.cfg.HalfOpenProbes {
			b.shortCircuit++
			return module.Transient("", module.FaultUnavailable, ErrOpen)
		}
		b.probesInUse++
	}
	return nil
}

// OnSuccess records a healthy round-trip: it closes a half-open breaker
// and resets the consecutive-failure count.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probesInUse = 0
	}
	b.transition(BreakerClosed)
	b.consecutive = 0
}

// OnFailure records a transient failure: it re-opens a half-open breaker
// immediately and opens a closed breaker once the threshold is reached.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.cfg.FailureThreshold {
			b.open()
		}
	}
}

// open transitions to the open state. Callers must hold b.mu.
func (b *Breaker) open() {
	b.transition(BreakerOpen)
	b.openedAt = b.clock.Now()
	b.consecutive = 0
	b.probesInUse = 0
	b.openCount++
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openCount
}

// ShortCircuits returns how many calls the breaker rejected without
// touching the provider.
func (b *Breaker) ShortCircuits() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.shortCircuit
}
