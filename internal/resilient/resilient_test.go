package resilient

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dexa/internal/module"
	"dexa/internal/typesys"
)

// scriptedExec fails transiently for the first fail calls, then succeeds.
type scriptedExec struct {
	mu    sync.Mutex
	fail  int
	kind  module.FaultKind
	calls int
	// semantic, when set, makes the executor answer with a non-transient
	// execution-style error instead of success.
	semantic error
}

func (s *scriptedExec) Invoke(in map[string]typesys.Value) (map[string]typesys.Value, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	if s.calls <= s.fail {
		return nil, module.Transient("", s.kind, errors.New("injected"))
	}
	if s.semantic != nil {
		return nil, s.semantic
	}
	return map[string]typesys.Value{"out": typesys.Str("ok")}, nil
}

func TestExecutorRetriesTransientFaults(t *testing.T) {
	clock := NewFakeClock()
	inner := &scriptedExec{fail: 2, kind: module.FaultConnection}
	ex := Wrap("m1", inner, Options{
		Policy: Policy{MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, Seed: 7},
		Clock:  clock,
	})
	outs, err := ex.Invoke(nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got := string(outs["out"].(typesys.StringValue)); got != "ok" {
		t.Fatalf("out = %q", got)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3", inner.calls)
	}
	if ex.Stats.Retries.Load() != 2 || ex.Stats.Recovered.Load() != 1 {
		t.Fatalf("stats = retries %d recovered %d", ex.Stats.Retries.Load(), ex.Stats.Recovered.Load())
	}
	if clock.Slept() <= 0 {
		t.Fatal("expected jittered backoff sleeps on the fake clock")
	}
}

func TestExecutorDoesNotRetryExecutionErrors(t *testing.T) {
	inner := &scriptedExec{semantic: module.ErrRejectedInput}
	ex := Wrap("m1", inner, Options{Clock: NewFakeClock()})
	_, err := ex.Invoke(nil)
	if !errors.Is(err, module.ErrRejectedInput) {
		t.Fatalf("err = %v, want ErrRejectedInput", err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1 (no retries on semantic errors)", inner.calls)
	}
	if module.IsTransient(err) {
		t.Fatal("execution error misclassified as transient")
	}
}

func TestExecutorExhaustsAndReportsTransient(t *testing.T) {
	inner := &scriptedExec{fail: 99, kind: module.FaultThrottled}
	ex := Wrap("m1", inner, Options{
		Policy:  Policy{MaxAttempts: 3, Seed: 3},
		Breaker: BreakerConfig{FailureThreshold: 100},
		Clock:   NewFakeClock(),
	})
	_, err := ex.Invoke(nil)
	if !module.IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if kind, _ := module.FaultKindOf(err); kind != module.FaultThrottled {
		t.Fatalf("kind = %v, want throttled", kind)
	}
	var te *module.TransientError
	if errors.As(err, &te); te.ModuleID != "m1" {
		t.Fatalf("ModuleID = %q, want m1", te.ModuleID)
	}
	if ex.Stats.Exhausted.Load() != 1 {
		t.Fatalf("exhausted = %d", ex.Stats.Exhausted.Load())
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := NewFakeClock()
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Second}, clock)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v", b.State())
	}
	// Threshold-1 failures keep it closed; a success resets the count.
	for i := 0; i < 2; i++ {
		b.OnFailure()
	}
	b.OnSuccess()
	for i := 0; i < 2; i++ {
		b.OnFailure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after reset+2 failures = %v, want closed", b.State())
	}
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", b.State())
	}
	if err := b.Allow(); err == nil || !module.IsTransient(err) {
		t.Fatalf("open breaker Allow = %v, want transient unavailable", err)
	}
	if b.ShortCircuits() != 1 {
		t.Fatalf("short circuits = %d", b.ShortCircuits())
	}

	// Cool-down not yet elapsed: still open.
	clock.Advance(9 * time.Second)
	if b.State() != BreakerOpen {
		t.Fatalf("state before cooldown = %v, want open", b.State())
	}
	// Cool-down elapsed: half-open admits exactly one probe.
	clock.Advance(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.Allow(); err == nil {
		t.Fatal("second concurrent half-open probe should be rejected")
	}
	// Failed probe re-opens immediately.
	b.OnFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// Next window: successful probe closes the breaker.
	clock.Advance(10 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe after second cooldown rejected: %v", err)
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
}

func TestExecutorBreakerShortCircuits(t *testing.T) {
	clock := NewFakeClock()
	inner := &scriptedExec{fail: 99, kind: module.FaultUnavailable}
	ex := Wrap("m1", inner, Options{
		Policy:  Policy{MaxAttempts: 2, Seed: 5},
		Breaker: BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		Clock:   clock,
	})
	// First call: two attempts, both fail, breaker opens.
	if _, err := ex.Invoke(nil); !module.IsTransient(err) {
		t.Fatalf("err = %v", err)
	}
	if ex.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker = %v, want open", ex.Breaker().State())
	}
	callsBefore := inner.calls
	// Second call fails fast without touching the provider.
	_, err := ex.Invoke(nil)
	if !errors.Is(err, ErrOpen) {
		t.Fatalf("err = %v, want ErrOpen cause", err)
	}
	if inner.calls != callsBefore {
		t.Fatalf("open breaker still reached provider (%d -> %d calls)", callsBefore, inner.calls)
	}
	if ex.Stats.ShortCircuited.Load() == 0 {
		t.Fatal("expected short-circuited attempts")
	}
}

func TestPolicyBackoffJitterBounds(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 42}.withDefaults()
	clock := NewFakeClock()
	inner := &scriptedExec{fail: 4, kind: module.FaultConnection}
	ex := Wrap("m1", inner, Options{Policy: p, Breaker: BreakerConfig{FailureThreshold: 100}, Clock: clock})
	if _, err := ex.Invoke(nil); err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	// Worst case: 100ms + 200ms + 400ms + 800ms = 1.5s of backoff caps.
	if max := 1500 * time.Millisecond; clock.Slept() > max {
		t.Fatalf("slept %v, exceeds full-jitter cap %v", clock.Slept(), max)
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	run := func() time.Duration {
		clock := NewFakeClock()
		inner := &scriptedExec{fail: 3, kind: module.FaultConnection}
		ex := Wrap("m", inner, Options{
			Policy:  Policy{MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: time.Second, Seed: 99},
			Breaker: BreakerConfig{FailureThreshold: 100},
			Clock:   clock,
		})
		if _, err := ex.Invoke(nil); err != nil {
			t.Fatalf("Invoke: %v", err)
		}
		return clock.Slept()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different total backoff: %v vs %v", a, b)
	}
}
