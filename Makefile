GO ?= go

.PHONY: ci vet build test race race-store race-match race-lifecycle bench bench-smoke bench-overhead bench-match experiments

ci: vet build race race-store race-match race-lifecycle bench-smoke bench-overhead bench-match

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The store's concurrency contract (many readers, one writer, compaction
# in between) and the serving layer's singleflight path, checked with
# more iterations than the catch-all race run gives them.
race-store:
	$(GO) test -race -count=2 ./internal/store/ ./internal/serve/

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Catalog-index concurrency: feasibility reads racing Update/Remove
# rebuilds, plus the matrix's sharded sweep, with more iterations than
# the catch-all race run gives them.
race-match:
	$(GO) test -race -count=2 -run 'TestCatalogIndex|TestMatchMatrix|TestFindSubstitutes' ./internal/match/

# Lifecycle concurrency: concurrent probe sweeps, /watch long-pollers
# racing log appends, and repair-queue approvals racing enqueues, with
# more iterations than the catch-all race run gives them.
race-lifecycle:
	$(GO) test -race -count=2 ./internal/lifecycle/
	$(GO) test -race -count=2 -run 'TestLifecycle|TestWatch|TestRepairs|TestSubstitutesCache|TestServePreStop' ./internal/serve/

# Match-equality gate: the index-pruned substitute search must return
# results byte-identical to the exhaustive search in both mapping modes,
# exact-mode pruning must cover every mapping-infeasible candidate, and
# the sharded indexed matrix must equal the sequential sweep. Gates
# results, not timings — safe on any host.
bench-match:
	$(GO) run ./cmd/dexa-bench -match-only

# Telemetry-overhead gate: generation with a live metrics registry must
# stay within 5% of the no-op recorder. Remeasures once on failure to
# absorb scheduler noise; exits non-zero on a reproducible regression.
bench-overhead:
	$(GO) run ./cmd/dexa-bench -overhead-only

# Full measurement run: writes a BENCH_<date>.json snapshot. Compare
# against a committed snapshot with:
#   go run ./cmd/dexa-bench -baseline BENCH_<date>.json
bench:
	$(GO) run ./cmd/dexa-bench -o BENCH_$$(date +%Y-%m-%d).json

experiments:
	$(GO) run ./cmd/dexa-experiments
