GO ?= go

.PHONY: ci vet build test race race-store race-match race-lifecycle race-columnar race-cluster race-search cluster-smoke bench bench-smoke bench-overhead bench-match bench-columnar bench-search bench-write experiments

ci: vet build race race-store race-match race-lifecycle race-columnar race-cluster race-search cluster-smoke bench-smoke bench-overhead bench-match bench-columnar bench-search bench-write

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The store's concurrency contract (many readers, one writer, compaction
# in between) and the serving layer's singleflight path, checked with
# more iterations than the catch-all race run gives them. The second
# line hammers the group committer specifically: concurrent Put/PutBatch
# and Delete racing Flush and Snapshot against the single committer
# goroutine, at higher iteration counts than the package-wide pass.
race-store:
	$(GO) test -race -count=2 ./internal/store/ ./internal/serve/
	$(GO) test -race -count=4 -run 'TestGroupCommit|TestPutBatch|TestStoreParallelPut|TestCrashRecovery' ./internal/store/

# One iteration of every benchmark: catches benchmarks that no longer
# compile or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Catalog-index concurrency: feasibility reads racing Update/Remove
# rebuilds, plus the matrix's sharded sweep, with more iterations than
# the catch-all race run gives them.
race-match:
	$(GO) test -race -count=2 -run 'TestCatalogIndex|TestMatchMatrix|TestFindSubstitutes' ./internal/match/

# Lifecycle concurrency: concurrent probe sweeps, /watch long-pollers
# racing log appends, and repair-queue approvals racing enqueues, with
# more iterations than the catch-all race run gives them.
race-lifecycle:
	$(GO) test -race -count=2 ./internal/lifecycle/
	$(GO) test -race -count=2 -run 'TestLifecycle|TestWatch|TestRepairs|TestSubstitutesCache|TestServePreStop' ./internal/serve/

# Match-equality gate: the index-pruned substitute search must return
# results byte-identical to the exhaustive search in both mapping modes,
# exact-mode pruning must cover every mapping-infeasible candidate, and
# the sharded indexed matrix must equal the sequential sweep. Gates
# results, not timings — safe on any host.
bench-match:
	$(GO) run ./cmd/dexa-bench -match-only

# Columnar-core gate: interned-ID alignment must be byte-identical to
# the string-keyed oracle over every mappable pair, the incremental
# matrix must equal a fresh full build across catalog mutations, and the
# scratch hot paths must hold their allocation budget (keyed compare at
# 0 allocs/op, warm indexed matrix under 2000). Gates results and alloc
# counts, not timings — safe on any host.
bench-columnar:
	$(GO) run ./cmd/dexa-bench -columnar-only

# Columnar concurrency: the shared symbol table hammered from parallel
# store writers, interning racing lookups, and incremental matrix
# rebuilds racing index mutations.
race-columnar:
	$(GO) test -race -count=2 -run 'TestSymbolTable|TestStoreParallelPut|TestIncrementalMatrix' ./internal/dataexample/ ./internal/store/ ./internal/match/

# Cluster concurrency: WAL feed long-pollers racing appends and drains,
# follower tails racing leader truncation/reset, scatter-gather rounds
# racing shard failures, and the store's replication cursor, with more
# iterations than the catch-all race run gives them.
race-cluster:
	$(GO) test -race -count=2 ./internal/cluster/
	$(GO) test -race -count=2 -run 'TestCluster|TestWatchDrain|TestReplication|TestTail|TestApplyReplicated|TestResetReplicated' ./internal/serve/ ./internal/store/

# Serving-tier gate: the full 252-module catalog sharded three ways must
# answer /matches and /substitutes byte-identically to a single-node
# oracle, and dexa-load must produce a latency-percentile report from a
# two-shard cluster on a tiny request budget. Gates results, not
# timings — safe on any host.
cluster-smoke:
	$(GO) test -run TestClusterSmokeFullCatalog -count=1 ./internal/serve/
	$(GO) test -run 'TestRun' -count=1 ./cmd/dexa-load/

# Search concurrency: queries and pagination racing Update/Remove on the
# live index, the availability hook firing from parallel registry
# mutations, and the serve-layer search/compose endpoints (single-node
# and scatter-gather), with more iterations than the catch-all race run
# gives them.
race-search:
	$(GO) test -race -count=2 ./internal/search/
	$(GO) test -race -count=2 -run 'TestSearch|TestClusterSearch|TestCompose' ./internal/serve/

# Search-index gate: ranked queries must be deterministic, an index
# maintained incrementally through Update/Remove churn must answer a
# three-family query battery identically to a fresh build, and walking
# small pages must reassemble exactly the full ranked list. Gates
# results, not timings — safe on any host.
bench-search:
	$(GO) run ./cmd/dexa-bench -search-only

# Write-path gate: the same concurrent workload through the group
# committer and the pre-batching per-put-fsync path must converge to
# identical state, survive close/reopen byte-identically, and mirror
# byte-identically over the batched compressed feed; group commit at 8
# writers must clear 2x over per-put fsync (remeasures once to absorb
# scheduler noise).
bench-write:
	$(GO) run ./cmd/dexa-bench -write-only

# Telemetry-overhead gate: generation with a live metrics registry must
# stay within 5% of the no-op recorder. Remeasures once on failure to
# absorb scheduler noise; exits non-zero on a reproducible regression.
bench-overhead:
	$(GO) run ./cmd/dexa-bench -overhead-only

# Full measurement run: writes a BENCH_<date>.json snapshot. Compare
# against a committed snapshot with:
#   go run ./cmd/dexa-bench -baseline BENCH_<date>.json
bench:
	$(GO) run ./cmd/dexa-bench -o BENCH_$$(date +%Y-%m-%d).json

experiments:
	$(GO) run ./cmd/dexa-experiments
