GO ?= go

.PHONY: ci vet build test race bench experiments

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

experiments:
	$(GO) run ./cmd/dexa-experiments
