// Benchmarks regenerating every table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`), plus
// micro-benchmarks of the core operations. Each BenchmarkTableX /
// BenchmarkFigureX target re-runs the full experiment behind that exhibit;
// the printed numbers themselves come from cmd/dexa-experiments and are
// recorded in EXPERIMENTS.md.
package dexa

import (
	"sync"
	"testing"

	"dexa/internal/core"
	"dexa/internal/experiment"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/simulation"
	"dexa/internal/simulation/bio"
	"dexa/internal/typesys"
	"dexa/internal/workflow"
)

var (
	suiteOnce sync.Once
	suite     *experiment.Suite
)

func benchSuite(b *testing.B) *experiment.Suite {
	b.Helper()
	suiteOnce.Do(func() { suite = experiment.NewSuite() })
	return suite
}

func runExperiment(b *testing.B, id string) {
	s := benchSuite(b)
	// Warm shared state (catalog evaluation, legacy world) outside timing.
	if _, err := s.Run(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable3Kinds regenerates Table 3 (module-kind census).
func BenchmarkTable3Kinds(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkOutputCoverage regenerates the §4.3 coverage statistics
// (252 input-covered, 233 output-covered, 19 exceptions).
func BenchmarkOutputCoverage(b *testing.B) { runExperiment(b, "coverage") }

// BenchmarkTable1Completeness regenerates the Table-1 completeness
// distribution.
func BenchmarkTable1Completeness(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Conciseness regenerates the Table-2 conciseness
// distribution.
func BenchmarkTable2Conciseness(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFigure5UserStudy regenerates the Figure-5 user study.
func BenchmarkFigure5UserStudy(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFigure8Matching regenerates the Figure-8 matching-and-repair
// experiment (72 unavailable modules, 3046-workflow repository).
func BenchmarkFigure8Matching(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkAblationPartitioning contrasts realization vs leaf-only
// partitioning over the whole catalog.
func BenchmarkAblationPartitioning(b *testing.B) { runExperiment(b, "ablation-partition") }

// BenchmarkAblationMatchers contrasts the three matchers over the 72
// unavailable modules.
func BenchmarkAblationMatchers(b *testing.B) { runExperiment(b, "ablation-matchers") }

// BenchmarkAblationProbing sweeps values-per-partition over the catalog.
func BenchmarkAblationProbing(b *testing.B) { runExperiment(b, "ablation-probing") }

// BenchmarkDedupDetection runs the §8 redundancy detector over the
// catalog's example sets.
func BenchmarkDedupDetection(b *testing.B) { runExperiment(b, "dedup") }

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkGenerateExamplesPerCatalog measures one full generation sweep
// over all 252 modules: a plain sequential loop, the worker-pool
// SweepGenerator, and a warm CachedGenerator (the memoized steady state
// hit by repeated experiment runs).
func BenchmarkGenerateExamplesPerCatalog(b *testing.B) {
	s := benchSuite(b)
	mods := make([]*module.Module, len(s.U.Catalog.Entries))
	for i, e := range s.U.Catalog.Entries {
		mods[i] = e.Module
	}
	b.Run("sequential", func(b *testing.B) {
		gen := core.NewGenerator(s.U.Ont, s.U.Pool)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, m := range mods {
				if _, _, err := gen.Generate(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		sweep := core.NewSweepGenerator(core.NewGenerator(s.U.Ont, s.U.Pool))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range sweep.Sweep(mods) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	})
	b.Run("memoized", func(b *testing.B) {
		cached := core.NewCachedGenerator(core.NewGenerator(s.U.Ont, s.U.Pool))
		for _, m := range mods { // warm the cache outside timing
			if _, _, err := cached.Generate(m); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, m := range mods {
				if _, _, err := cached.Generate(m); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkGenerateSingleModule measures generation for the 15-partition
// record summariser (the widest input domain in the catalog).
func BenchmarkGenerateSingleModule(b *testing.B) {
	s := benchSuite(b)
	e, _ := s.U.Catalog.Get("getRecordSummary")
	gen := core.NewGenerator(s.U.Ont, s.U.Pool)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gen.Generate(e.Module); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompareModules measures a live §6 behaviour comparison.
func BenchmarkCompareModules(b *testing.B) {
	s := benchSuite(b)
	ea, _ := s.U.Catalog.Get("sequenceToFasta")
	eb, _ := s.U.Catalog.Get("seqExport")
	cmp := match.NewComparer(s.U.Ont, s.U.Gen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cmp.Compare(ea.Module, eb.Module)
		if err != nil || res.Verdict == match.Incomparable {
			b.Fatalf("%v %v", res.Verdict, err)
		}
	}
}

// BenchmarkFindSubstitutes measures a full substitute search over the 252
// available modules, sequentially (Workers=1) and with the default
// GOMAXPROCS candidate fan-out.
func BenchmarkFindSubstitutes(b *testing.B) {
	s := benchSuite(b)
	e, _ := s.U.Catalog.Get("getUniprotRecord")
	set, _, err := s.U.Gen.Generate(e.Module)
	if err != nil {
		b.Fatal(err)
	}
	target := match.Unavailable{Signature: e.Module, Examples: set}
	available := s.U.Registry.Available()
	run := func(workers int) func(b *testing.B) {
		return func(b *testing.B) {
			cmp := match.NewComparer(s.U.Ont, nil)
			cmp.Workers = workers
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cmp.FindSubstitutes(target, available); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("sequential", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkOntologyPartitions measures the §3.1 partitioning primitive on
// the widest concept: cold (reachability cache rebuilt every call, the
// pre-cache behaviour) and warm (the memoized steady state).
func BenchmarkOntologyPartitions(b *testing.B) {
	ont := simulation.BuildOntology()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ont.InvalidateCaches()
			if _, err := ont.Partitions(simulation.CBioRecord); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		if _, err := ont.Partitions(simulation.CBioRecord); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ont.Partitions(simulation.CBioRecord); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPoolRealization measures the getInstance(c, pl) primitive.
func BenchmarkPoolRealization(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.U.Pool.Realization(simulation.CUniprotRecord, typesys.StringType, 0); !ok {
			b.Fatal("no realization")
		}
	}
}

// BenchmarkWorkflowEnact measures enacting the Figure-1 pipeline.
func BenchmarkWorkflowEnact(b *testing.B) {
	s := benchSuite(b)
	u := s.U
	entry, _ := u.DB.ByIndex(42)
	masses := bio.PeptideMasses(entry.Protein)
	items := make([]typesys.Value, len(masses))
	for i, m := range masses {
		items[i] = typesys.Floatv(m)
	}
	inputs := map[string]typesys.Value{
		"masses": typesys.MustList(typesys.FloatType, items...),
		"error":  typesys.Floatv(2),
	}
	wf := figure1Workflow()
	if err := wf.Validate(u.Registry, u.Ont); err != nil {
		b.Fatal(err)
	}
	en := workflow.NewEnactor(u.Registry)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := en.Enact(wf, inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func figure1Workflow() *workflow.Workflow {
	return &workflow.Workflow{
		ID: "bench-figure1", Name: "Protein identification",
		Inputs: []workflow.Port{
			{Name: "masses", Struct: typesys.ListOf(typesys.FloatType), Semantic: simulation.CPeptideMassList},
			{Name: "error", Struct: typesys.FloatType, Semantic: simulation.CPercentage},
		},
		Outputs: []workflow.Port{{Name: "report", Struct: typesys.StringType, Semantic: simulation.CAlignReport}},
		Steps: []workflow.Step{
			{ID: "identify", ModuleID: "identifyProtein"},
			{ID: "getRecord", ModuleID: "getUniprotRecord"},
			{ID: "search", ModuleID: "searchSimple", Constants: map[string]typesys.Value{
				"program":  typesys.Str(bio.AlgoSmithWaterman),
				"database": typesys.Str("uniprot"),
			}},
		},
		Links: []workflow.Link{
			{From: workflow.PortRef{Port: "masses"}, To: workflow.PortRef{Step: "identify", Port: "masses"}},
			{From: workflow.PortRef{Port: "error"}, To: workflow.PortRef{Step: "identify", Port: "error"}},
			{From: workflow.PortRef{Step: "identify", Port: "accession"}, To: workflow.PortRef{Step: "getRecord", Port: "accession"}},
			{From: workflow.PortRef{Step: "getRecord", Port: "record"}, To: workflow.PortRef{Step: "search", Port: "record"}},
			{From: workflow.PortRef{Step: "search", Port: "report"}, To: workflow.PortRef{Port: "report"}},
		},
	}
}

// BenchmarkAlignmentAlgorithms measures the three aligners behind the
// homology services.
func BenchmarkAlignmentAlgorithms(b *testing.B) {
	x, y := bio.ProteinSequence(3), bio.ProteinSequence(43)
	b.Run("needleman-wunsch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bio.NeedlemanWunsch(x, y, bio.DefaultScores)
		}
	})
	b.Run("smith-waterman", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bio.SmithWaterman(x, y, bio.DefaultScores)
		}
	})
	b.Run("kmer", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bio.KmerSimilarity(x, y, 3)
		}
	})
}

// BenchmarkHomologySearch measures a full database scan with
// Smith-Waterman, the hottest operation behind the analysis modules:
// the sequential reference scan and the sharded top-k scan.
func BenchmarkHomologySearch(b *testing.B) {
	db := bio.NewDatabase(bio.DefaultSize)
	query := bio.ProteinSequence(7)
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if hits := db.HomologySearchSequential(query, bio.AlgoSmithWaterman, 5); len(hits) != 5 {
				b.Fatal("bad hits")
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if hits := db.HomologySearch(query, bio.AlgoSmithWaterman, 5); len(hits) != 5 {
				b.Fatal("bad hits")
			}
		}
	})
}
