// End-to-end integration tests across the full stack: the generation
// heuristic over remote (REST/SOAP) modules, the annotation assistant
// feeding the generator, and persistence round trips of the complete
// annotation state (registry + provenance corpus).
package dexa

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"dexa/internal/annotate"
	"dexa/internal/core"
	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/provenance"
	"dexa/internal/registry"
	"dexa/internal/simulation"
	"dexa/internal/transport"
	"dexa/internal/typesys"
	"dexa/internal/workflow"
)

var (
	integrationOnce sync.Once
	integrationU    *simulation.Universe
)

func integrationUniverse(t testing.TB) *simulation.Universe {
	t.Helper()
	integrationOnce.Do(func() { integrationU = simulation.NewUniverse() })
	return integrationU
}

// TestRemoteGenerationMatchesLocal serves catalog modules over both wire
// forms and checks the heuristic produces byte-identical data examples
// through the remote proxies.
func TestRemoteGenerationMatchesLocal(t *testing.T) {
	u := integrationUniverse(t)
	served := registry.New()
	for _, id := range []string{"getUniprotRecord", "uniprotToGO", "sequenceToFasta"} {
		e, _ := u.Catalog.Get(id)
		served.MustRegister(e.Module)
	}
	restSrv := httptest.NewServer(transport.RESTHandler(served))
	defer restSrv.Close()
	soapSrv := httptest.NewServer(transport.SOAPHandler(served))
	defer soapSrv.Close()

	gen := core.NewGenerator(u.Ont, u.Pool)
	for _, tc := range []struct {
		id   string
		bind func(m *module.Module)
	}{
		{"getUniprotRecord", func(m *module.Module) {
			m.Bind(&transport.RESTExecutor{BaseURL: restSrv.URL, ModuleID: "getUniprotRecord"})
		}},
		{"uniprotToGO", func(m *module.Module) {
			m.Bind(&transport.SOAPExecutor{Endpoint: soapSrv.URL, ModuleID: "uniprotToGO"})
		}},
		{"sequenceToFasta", func(m *module.Module) {
			m.Bind(&transport.RESTExecutor{BaseURL: restSrv.URL, ModuleID: "sequenceToFasta"})
		}},
	} {
		e, _ := u.Catalog.Get(tc.id)
		local, _, err := gen.Generate(e.Module)
		if err != nil {
			t.Fatalf("%s local generation: %v", tc.id, err)
		}
		proxy := &module.Module{
			ID: tc.id + "@remote", Name: e.Module.Name,
			Inputs:  append([]module.Parameter(nil), e.Module.Inputs...),
			Outputs: append([]module.Parameter(nil), e.Module.Outputs...),
		}
		tc.bind(proxy)
		remote, _, err := gen.Generate(proxy)
		if err != nil {
			t.Fatalf("%s remote generation: %v", tc.id, err)
		}
		if len(remote) != len(local) {
			t.Fatalf("%s: %d remote vs %d local examples", tc.id, len(remote), len(local))
		}
		for i := range local {
			if !remote[i].Equal(local[i]) {
				t.Errorf("%s: example %d differs across the wire:\n local %s\nremote %s",
					tc.id, i, local[i], remote[i])
			}
		}
	}
}

// TestAnnotateThenGenerate runs the full curator pipeline of Figure 3: an
// unannotated module gets concepts from the schema-matching assistant,
// then data examples from the generator.
func TestAnnotateThenGenerate(t *testing.T) {
	u := integrationUniverse(t)
	raw := &module.Module{
		ID: "mystery-service", Name: "op4711",
		Inputs:  []module.Parameter{{Name: "uniprot_accession", Struct: typesys.StringType}},
		Outputs: []module.Parameter{{Name: "go_term_list", Struct: typesys.ListOf(typesys.StringType)}},
	}
	raw.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		acc := string(in["uniprot_accession"].(typesys.StringValue))
		e, ok := u.DB.ByUniprot(acc)
		if !ok {
			return nil, module.ErrRejectedInput
		}
		items := make([]typesys.Value, len(e.GOTerms))
		for i, g := range e.GOTerms {
			items[i] = typesys.Str(g)
		}
		return map[string]typesys.Value{"go_term_list": typesys.MustList(typesys.StringType, items...)}, nil
	}))

	a := annotate.NewAnnotator(u.Ont)
	if n := a.AnnotateModule(raw, 0.55); n != 2 {
		t.Fatalf("annotated %d parameters, want 2", n)
	}
	if raw.Inputs[0].Semantic != simulation.CUniprotAcc {
		t.Fatalf("input annotated %q", raw.Inputs[0].Semantic)
	}
	if raw.Outputs[0].Semantic != simulation.CGOTermList {
		t.Fatalf("output annotated %q", raw.Outputs[0].Semantic)
	}
	set, rep, err := u.Gen.Generate(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || rep.InputCoverage() != 1 {
		t.Errorf("examples = %d, coverage %.2f", len(set), rep.InputCoverage())
	}
	// The assistant-annotated mystery module now matches its catalog twin.
	cmp := match.NewComparer(u.Ont, u.Gen)
	twin, _ := u.Catalog.Get("uniprotToGO")
	res, err := cmp.Compare(raw, twin.Module)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != match.Equivalent {
		t.Errorf("verdict = %v, want equivalent", res.Verdict)
	}
}

// TestAnnotationStatePersistence round-trips the complete annotation
// state — registry with examples plus provenance corpus — and verifies
// matching works from the reloaded artefacts alone.
func TestAnnotationStatePersistence(t *testing.T) {
	u := integrationUniverse(t)

	// Annotate a module and enact a workflow for provenance.
	reg := registry.New()
	for _, id := range []string{"geneToUniprot", "getUniprotRecord", "getUniprotRecord-ddbj"} {
		e, _ := u.Catalog.Get(id)
		reg.MustRegister(e.Module)
	}
	set, _, err := u.Gen.Generate(mustEntry(t, u, "getUniprotRecord").Module)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.SetExamples("getUniprotRecord", set); err != nil {
		t.Fatal(err)
	}
	corpus := provenance.NewCorpus()
	en := &workflow.Enactor{Reg: reg, Recorder: corpus}
	wf := &workflow.Workflow{
		ID: "it-wf", Name: "gene to record",
		Inputs:  []workflow.Port{{Name: "gene", Struct: typesys.StringType, Semantic: simulation.CGeneName}},
		Outputs: []workflow.Port{{Name: "record", Struct: typesys.StringType, Semantic: simulation.CUniprotRecord}},
		Steps: []workflow.Step{
			{ID: "map", ModuleID: "geneToUniprot"},
			{ID: "get", ModuleID: "getUniprotRecord"},
		},
		Links: []workflow.Link{
			{From: workflow.PortRef{Port: "gene"}, To: workflow.PortRef{Step: "map", Port: "gene"}},
			{From: workflow.PortRef{Step: "map", Port: "accession"}, To: workflow.PortRef{Step: "get", Port: "accession"}},
			{From: workflow.PortRef{Step: "get", Port: "record"}, To: workflow.PortRef{Port: "record"}},
		},
	}
	entry, _ := u.DB.ByIndex(3)
	if _, err := en.Enact(wf, map[string]typesys.Value{"gene": typesys.Str(entry.GeneName)}); err != nil {
		t.Fatal(err)
	}

	// Persist everything.
	var regBuf, corpusBuf, wfBuf bytes.Buffer
	if err := reg.Save(&regBuf); err != nil {
		t.Fatal(err)
	}
	if err := corpus.Save(&corpusBuf); err != nil {
		t.Fatal(err)
	}
	if err := wf.Save(&wfBuf); err != nil {
		t.Fatal(err)
	}

	// Reload into a fresh process image; executors only for the substitute.
	reg2, err := registry.Load(&regBuf, func(id string) module.Executor {
		if id == "getUniprotRecord-ddbj" {
			e, _ := u.Catalog.Get("getUniprotRecord-ddbj")
			return module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
				return e.Module.Invoke(in)
			})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus2, err := provenance.Load(&corpusBuf)
	if err != nil {
		t.Fatal(err)
	}
	wf2, err := workflow.Load(&wfBuf)
	if err != nil {
		t.Fatal(err)
	}

	// The original module decays; its reloaded examples still identify the
	// substitute.
	if err := reg2.SetAvailable("getUniprotRecord", false); err != nil {
		t.Fatal(err)
	}
	sig, _ := reg2.Get("getUniprotRecord")
	cmp := match.NewComparer(u.Ont, nil)
	subs, err := cmp.FindSubstitutes(
		match.Unavailable{Signature: sig.Module, Examples: sig.Examples},
		reg2.Available())
	if err != nil {
		t.Fatal(err)
	}
	cands := subs.Ranked
	found := false
	for _, c := range cands {
		if c.Module.ID == "getUniprotRecord-ddbj" && c.Result.Verdict == match.Equivalent {
			found = true
		}
	}
	if !found {
		t.Errorf("reloaded examples failed to identify the substitute: %v", cands)
	}

	// Reloaded provenance still reconstructs examples for the decayed
	// module, and the reloaded workflow references it.
	if got := corpus2.ExamplesFor("getUniprotRecord"); len(got) == 0 {
		t.Error("reloaded corpus reconstructs no examples")
	}
	ids := wf2.ModuleIDs()
	if len(ids) != 2 || ids[1] != "getUniprotRecord" {
		t.Errorf("reloaded workflow modules = %v", ids)
	}
}

// TestGenerationSurvivesFlakyRemote injects transport failures: the
// remote provider dies midway through the partition sweep. The generator
// must classify the 502s as transient transport faults (not §3.2
// abnormal terminations — the module never rejected the inputs), retry
// its budget, record the persistent ones as TransientFailures, and still
// return the examples it obtained rather than aborting.
func TestGenerationSurvivesFlakyRemote(t *testing.T) {
	u := integrationUniverse(t)
	served := registry.New()
	e, _ := u.Catalog.Get("getRecordSummary") // 15 partitions: plenty of calls
	served.MustRegister(e.Module)

	var calls int32
	inner := transport.RESTHandler(served)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) > 6 {
			http.Error(w, "provider interrupted", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	proxy := &module.Module{
		ID: "summary@flaky", Name: e.Module.Name,
		Inputs:  append([]module.Parameter(nil), e.Module.Inputs...),
		Outputs: append([]module.Parameter(nil), e.Module.Outputs...),
	}
	proxy.Bind(&transport.RESTExecutor{BaseURL: flaky.URL, ModuleID: "getRecordSummary"})

	gen := core.NewGenerator(u.Ont, u.Pool)
	set, rep, err := gen.Generate(proxy)
	if err != nil {
		t.Fatalf("flaky remote must not abort generation: %v", err)
	}
	if len(set) == 0 || len(set) >= 15 {
		t.Errorf("expected partial example set, got %d", len(set))
	}
	if rep.TransientFailures == 0 {
		t.Error("persistent transport faults should be recorded as transient failures")
	}
	if rep.TransientRetries == 0 {
		t.Error("the generator should have retried transient faults")
	}
	if rep.FailedCombinations != 0 {
		t.Errorf("transport faults misreported as %d abnormal terminations", rep.FailedCombinations)
	}
	if rep.InputCoverage() >= 1 {
		t.Error("partial coverage expected under failure injection")
	}
}

func mustEntry(t testing.TB, u *simulation.Universe, id string) *simulation.CatalogEntry {
	t.Helper()
	e, ok := u.Catalog.Get(id)
	if !ok {
		t.Fatalf("unknown module %s", id)
	}
	return e
}
