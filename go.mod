module dexa

go 1.22
