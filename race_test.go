// Cross-package concurrency test backing the "safe for concurrent use"
// documentation of the parallel annotation engine: example generation,
// ontology reasoning and substitute search all run simultaneously from
// many goroutines over one shared universe. Run with -race.
package dexa

import (
	"sync"
	"testing"

	"dexa/internal/match"
	"dexa/internal/simulation"
)

func TestConcurrentEngineUse(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency hammer")
	}
	u := simulation.NewUniverse()
	cmp := match.NewComparer(u.Ont, u.Gen)

	// A target for the substitute search, prepared up front.
	entry, ok := u.Catalog.Get("getUniprotRecord")
	if !ok {
		t.Fatal("getUniprotRecord missing from catalog")
	}
	targetSet, _, err := u.Gen.Generate(entry.Module)
	if err != nil {
		t.Fatal(err)
	}
	target := match.Unavailable{Signature: entry.Module, Examples: targetSet}
	available := u.Registry.Available()

	var wg sync.WaitGroup
	fail := make(chan string, 64)
	// Generators: run the heuristic over a rotating catalog slice.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				e := u.Catalog.Entries[(w*13+i*7)%len(u.Catalog.Entries)]
				if _, _, err := u.Gen.Generate(e.Module); err != nil {
					fail <- "generate " + e.Module.ID + ": " + err.Error()
					return
				}
			}
		}(w)
	}
	// Reasoners: hammer the ontology cache.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := u.Ont.Concepts()
			for i := 0; i < 400; i++ {
				a, b := ids[i%len(ids)], ids[(i*31)%len(ids)]
				u.Ont.Subsumes(a, b)
				if _, err := u.Ont.Partitions(a); err != nil {
					fail <- "partitions: " + err.Error()
					return
				}
			}
		}()
	}
	// Matchers: full substitute searches (which themselves fan out).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				subs, err := cmp.FindSubstitutes(target, available)
				if err != nil {
					fail <- "substitutes: " + err.Error()
					return
				}
				if len(subs.Ranked) == 0 {
					fail <- "substitute search found no candidate (getUniprotRecord-ddbj expected)"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}
}
