// Protein identification: the Figure-1 workflow end to end.
//
// The example composes Identify -> GetRecord -> SearchSimple over the
// simulation universe, enacts it on a realistic peptide-mass fingerprint
// with provenance capture, then shows how the captured traces feed both
// uses of provenance in the paper: harvesting an annotated instance pool
// (§4.1) and reconstructing data examples for a module (§6).
//
// Run with: go run ./examples/proteinid
package main

import (
	"fmt"
	"log"

	"dexa/internal/provenance"
	"dexa/internal/simulation"
	"dexa/internal/simulation/bio"
	"dexa/internal/typesys"
	"dexa/internal/workflow"
)

func main() {
	u := simulation.NewUniverse()

	wf := &workflow.Workflow{
		ID: "wf-figure1", Name: "Protein identification (Figure 1)",
		Inputs: []workflow.Port{
			{Name: "masses", Struct: typesys.ListOf(typesys.FloatType), Semantic: simulation.CPeptideMassList},
			{Name: "error", Struct: typesys.FloatType, Semantic: simulation.CPercentage},
		},
		Outputs: []workflow.Port{{Name: "report", Struct: typesys.StringType, Semantic: simulation.CAlignReport}},
		Steps: []workflow.Step{
			{ID: "identify", ModuleID: "identifyProtein"},
			{ID: "getRecord", ModuleID: "getUniprotRecord"},
			{ID: "search", ModuleID: "searchSimple", Constants: map[string]typesys.Value{
				"program":  typesys.Str(bio.AlgoSmithWaterman),
				"database": typesys.Str("uniprot"),
			}},
		},
		Links: []workflow.Link{
			{From: workflow.PortRef{Port: "masses"}, To: workflow.PortRef{Step: "identify", Port: "masses"}},
			{From: workflow.PortRef{Port: "error"}, To: workflow.PortRef{Step: "identify", Port: "error"}},
			{From: workflow.PortRef{Step: "identify", Port: "accession"}, To: workflow.PortRef{Step: "getRecord", Port: "accession"}},
			{From: workflow.PortRef{Step: "getRecord", Port: "record"}, To: workflow.PortRef{Step: "search", Port: "record"}},
			{From: workflow.PortRef{Step: "search", Port: "report"}, To: workflow.PortRef{Port: "report"}},
		},
	}
	if err := wf.Validate(u.Registry, u.Ont); err != nil {
		log.Fatalf("workflow invalid: %v", err)
	}

	// A mass-spectrometry fingerprint of a protein we pretend not to know:
	// entry 42's tryptic peptide masses.
	sample, _ := u.DB.ByIndex(42)
	masses := bio.PeptideMasses(sample.Protein)
	items := make([]typesys.Value, len(masses))
	for i, m := range masses {
		items[i] = typesys.Floatv(m)
	}

	corpus := provenance.NewCorpus()
	enactor := &workflow.Enactor{Reg: u.Registry, Recorder: corpus}
	outs, err := enactor.Enact(wf, map[string]typesys.Value{
		"masses": typesys.MustList(typesys.FloatType, items...),
		"error":  typesys.Floatv(2),
	})
	if err != nil {
		log.Fatalf("enactment failed: %v", err)
	}

	fmt.Printf("sample protein:     %s (%s)\n", sample.Accession, sample.GeneName)
	fmt.Printf("peptide masses fed: %d\n", len(masses))
	fmt.Printf("alignment report:\n%s\n", outs["report"])

	// Provenance capture: one record per step invocation.
	fmt.Printf("provenance records captured: %d\n", corpus.Len())
	for _, rec := range corpus.Records() {
		fmt.Printf("  step %-10s module %-16s inputs %d outputs %d\n",
			rec.StepID, rec.ModuleID, len(rec.Inputs), len(rec.Outputs))
	}

	// Use 1 (§4.1): harvest the traces into an annotated instance pool.
	pool, added := corpus.Harvest(u.Ont)
	fmt.Printf("\nharvested %d annotated instances (pool concepts: %v)\n", added, pool.Concepts())

	// Use 2 (§6): reconstruct data examples for a module from its traces —
	// possible even after the module disappears.
	examples := corpus.ExamplesFor("getUniprotRecord")
	fmt.Printf("data examples reconstructed for getUniprotRecord: %d\n", len(examples))
	for _, e := range examples {
		fmt.Printf("  input %v -> %d-byte record\n", e.Inputs["accession"], len(e.Outputs["record"].String()))
	}
}
