// Quickstart: annotate one black-box module with data examples.
//
// The walkthrough builds a tiny domain ontology, a pool of annotated
// instances, and a black-box getAccession module, then runs the paper's
// generation heuristic and inspects the result — everything a curator
// does in Figure 3, steps 1-2.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"dexa/internal/core"
	"dexa/internal/instances"
	"dexa/internal/metrics"
	"dexa/internal/module"
	"dexa/internal/ontology"
	"dexa/internal/typesys"
)

func main() {
	// 1. A fragment of the myGrid ontology (Figure 4 of the paper).
	ont := ontology.New("mygrid-fragment")
	ont.MustAddConcept("BioinformaticsData", "Bioinformatics data")
	ont.MustAddConcept("BiologicalSequence", "Biological sequence", "BioinformaticsData")
	ont.MustAddConcept("NucleotideSequence", "Nucleotide sequence", "BiologicalSequence")
	ont.MustAddConcept("DNASequence", "DNA sequence", "NucleotideSequence")
	ont.MustAddConcept("RNASequence", "RNA sequence", "NucleotideSequence")
	ont.MustAddConcept("ProteinSequence", "Protein sequence", "BiologicalSequence")
	ont.MustAddConcept("Accession", "Accession number", "BioinformaticsData")

	// 2. A pool of annotated instances (normally harvested from workflow
	// provenance; here supplied by the curator).
	pool := instances.NewPool(ont)
	pool.MustAdd("BiologicalSequence", typesys.Str("ACGTXNBZ"), "curator")
	pool.MustAdd("NucleotideSequence", typesys.Str("ACGTNACGTN"), "curator")
	pool.MustAdd("DNASequence", typesys.Str("ACGTACGT"), "curator")
	pool.MustAdd("RNASequence", typesys.Str("ACGUACGU"), "curator")
	pool.MustAdd("ProteinSequence", typesys.Str("MKTWYENPQL"), "curator")

	// 3. The black-box module: getAccession returns the accession used to
	// identify a sequence, with different behaviour per sequence family.
	getAccession := &module.Module{
		ID: "getAccession", Name: "getAccession",
		Description: "return the accession identifying a biological sequence",
		Inputs:      []module.Parameter{{Name: "sequence", Struct: typesys.StringType, Semantic: "BiologicalSequence"}},
		Outputs:     []module.Parameter{{Name: "accession", Struct: typesys.StringType, Semantic: "Accession"}},
	}
	getAccession.Bind(module.ExecFunc(func(in map[string]typesys.Value) (map[string]typesys.Value, error) {
		seq := string(in["sequence"].(typesys.StringValue))
		var acc string
		switch {
		case strings.ContainsRune(seq, 'U'):
			acc = "RNA:" + seq[:4]
		case strings.Trim(seq, "ACGTN") == "":
			acc = "DNA:" + seq[:4]
		case strings.Trim(seq, "ACDEFGHIKLMNPQRSTVWY") == "":
			acc = "PROT:" + seq[:4]
		default:
			acc = "GEN:" + seq[:4]
		}
		return map[string]typesys.Value{"accession": typesys.Str(acc)}, nil
	}))

	// 4. Generate the data examples (paper §3).
	gen := core.NewGenerator(ont, pool)
	set, report, err := gen.Generate(getAccession)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d data examples for %s:\n", len(set), getAccession.Name)
	for i, e := range set {
		fmt.Printf("  δ%d  [%s]  %s\n", i+1, e.InputPartitions["sequence"], e)
	}
	fmt.Printf("\ninput partitions identified: %v\n", report.InputPartitions["sequence"])
	fmt.Printf("input coverage: %.2f\n", report.InputCoverage())

	// 5. Evaluate against ground truth (paper §4.2). getAccession has four
	// classes of behaviour, one per sequence family.
	oracle := metrics.OracleFunc{
		All: []string{"dna", "rna", "protein", "generic"},
		Fn: func(in map[string]typesys.Value) (string, bool) {
			s, ok := in["sequence"].(typesys.StringValue)
			if !ok {
				return "", false
			}
			switch {
			case strings.ContainsRune(string(s), 'U'):
				return "rna", true
			case strings.Trim(string(s), "ACGTN") == "":
				return "dna", true
			case strings.Trim(string(s), "ACDEFGHIKLMNPQRSTVWY") == "":
				return "protein", true
			default:
				return "generic", true
			}
		},
	}
	ev := metrics.Evaluate(set, oracle)
	fmt.Printf("completeness: %.2f   conciseness: %.2f   (%d classes, %d covered, %d redundant)\n",
		ev.Completeness, ev.Conciseness, ev.Classes, ev.ClassesCovered, ev.Redundant)
}
