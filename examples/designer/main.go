// Designer session: finding, understanding and composing modules.
//
// An experiment designer wants to go from a DNA sequence to the KEGG
// pathway its protein product belongs to. The session uses the module
// registry the way Figure 3 step 3 intends: search the registry, read
// annotation cards with data examples and behaviour hints, then let the
// composer (the paper's §8 future-work item) suggest certified chains.
//
// Run with: go run ./examples/designer
package main

import (
	"fmt"
	"log"

	"dexa/internal/compose"
	"dexa/internal/explore"
	"dexa/internal/simulation"
)

func main() {
	u := simulation.NewUniverse()

	// 1. Search the registry by keyword.
	fmt.Println("registry search for \"pathway\":")
	for _, m := range u.Registry.Search("pathway") {
		fmt.Printf("  %-24s %-22s %s\n", m.ID, m.Kind, m.Description)
	}

	// 2. Open the annotation card of a candidate to understand it.
	entry, _ := u.Catalog.Get("uniprotToPathway")
	set, rep, err := u.Gen.Generate(entry.Module)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- annotation card ---")
	fmt.Print(explore.Card(entry.Module, set, rep))

	// 3. Ask the composer for certified chains from DNA to a pathway.
	fmt.Println("\n--- composition search: DNASequence -> KEGGPathwayID ---")
	comp := compose.NewComposer(u.Ont, u.Pool)
	comp.MaxDepth = 4
	comp.MaxChains = 5
	chains, err := comp.Suggest(simulation.CDNASequence, simulation.CKEGGPathwayID, u.Registry.Available())
	if err != nil {
		log.Fatal(err)
	}
	for _, ch := range chains {
		status := "uncertified"
		if ch.Certified {
			status = "CERTIFIED"
		}
		fmt.Printf("[%s] %s\n", status, ch)
		for _, w := range ch.Witness {
			fmt.Printf("    %s\n", w)
		}
	}
}
