// Workflow decay and repair: the §6 scenario end to end, including the
// Figure-7 contextual substitution.
//
// A value-added protein identification workflow uses a provider's
// getUniprotRecord. The provider interrupts its supply; the module's data
// examples, reconstructed from provenance, identify (a) an exactly
// equivalent substitute, and (b) — after we retire that one too — a
// semantically broader module that behaves identically within the
// workflow's context.
//
// Run with: go run ./examples/repair
package main

import (
	"fmt"
	"log"

	"dexa/internal/match"
	"dexa/internal/module"
	"dexa/internal/provenance"
	"dexa/internal/simulation"
	"dexa/internal/typesys"
	"dexa/internal/workflow"
)

func main() {
	u := simulation.NewUniverse()

	// The workflow: map a gene symbol to its protein record.
	wf := &workflow.Workflow{
		ID: "wf-value-added", Name: "Gene to protein record",
		Inputs:  []workflow.Port{{Name: "gene", Struct: typesys.StringType, Semantic: simulation.CGeneName}},
		Outputs: []workflow.Port{{Name: "record", Struct: typesys.StringType, Semantic: simulation.CUniprotRecord}},
		Steps: []workflow.Step{
			{ID: "toAcc", ModuleID: "geneToUniprot"},
			{ID: "fetch", ModuleID: "getUniprotRecord"},
		},
		Links: []workflow.Link{
			{From: workflow.PortRef{Port: "gene"}, To: workflow.PortRef{Step: "toAcc", Port: "gene"}},
			{From: workflow.PortRef{Step: "toAcc", Port: "accession"}, To: workflow.PortRef{Step: "fetch", Port: "accession"}},
			{From: workflow.PortRef{Step: "fetch", Port: "record"}, To: workflow.PortRef{Port: "record"}},
		},
	}
	if err := wf.Validate(u.Registry, u.Ont); err != nil {
		log.Fatal(err)
	}

	// Enact once while everything is alive, capturing provenance.
	corpus := provenance.NewCorpus()
	enactor := &workflow.Enactor{Reg: u.Registry, Recorder: corpus}
	entry, _ := u.DB.ByIndex(7)
	original, err := enactor.Enact(wf, map[string]typesys.Value{"gene": typesys.Str(entry.GeneName)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow healthy: produced a %d-byte record for gene %s\n",
		len(original["record"].String()), entry.GeneName)

	// Also annotate getUniprotRecord with generated data examples while it
	// is alive (good practice the paper advocates in §6's conclusion).
	set, _, err := u.Gen.Generate(mustModule(u, "getUniprotRecord"))
	if err != nil {
		log.Fatal(err)
	}
	if err := u.Registry.SetExamples("getUniprotRecord", set); err != nil {
		log.Fatal(err)
	}

	// Decay: the provider of getUniprotRecord stops supplying it.
	if err := u.Registry.SetAvailable("getUniprotRecord", false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprovider interruption! broken steps: %v\n", wf.BrokenSteps(u.Registry))

	exact := match.NewComparer(u.Ont, nil)
	relaxed := match.NewComparer(u.Ont, nil)
	relaxed.Mode = match.ModeRelaxed
	repairer := &workflow.Repairer{Reg: u.Registry, Exact: exact, Relaxed: relaxed}

	// Pass 1: an equivalent substitute exists (another provider's copy).
	res, err := repairer.Repair(wf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair #1: %s\n", res.Status)
	for _, r := range res.Replacements {
		fmt.Printf("  step %s: %s -> %s (%s)\n", r.StepID, r.OldModuleID, r.NewModuleID, r.Verdict)
	}
	// Verify: the repaired workflow reproduces the original results.
	repaired, err := workflow.NewEnactor(u.Registry).Enact(res.Repaired, map[string]typesys.Value{"gene": typesys.Str(entry.GeneName)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  repaired workflow agrees with original: %v\n", repaired["record"].Equal(original["record"]))

	// Figure-7 case: retire every exact substitute as well; only the
	// broader getProteinFlatfile (accepting any protein accession) is
	// left, and it behaves identically for the Uniprot accessions that
	// actually flow here.
	for _, id := range []string{"getUniprotRecord-ddbj", "getUniprotRecord-ncbi"} {
		if err := u.Registry.SetAvailable(id, false); err != nil {
			log.Fatal(err)
		}
	}
	res, err = repairer.Repair(wf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepair #2 (exact substitutes gone): %s\n", res.Status)
	for _, r := range res.Replacements {
		kind := r.Verdict.String()
		if r.Contextual {
			kind += ", certified in context"
		}
		fmt.Printf("  step %s: %s -> %s (%s)\n", r.StepID, r.OldModuleID, r.NewModuleID, kind)
	}
	repaired, err = workflow.NewEnactor(u.Registry).Enact(res.Repaired, map[string]typesys.Value{"gene": typesys.Str(entry.GeneName)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  repaired workflow agrees with original: %v\n", repaired["record"].Equal(original["record"]))
	_ = corpus
}

func mustModule(u *simulation.Universe, id string) *module.Module {
	e, ok := u.Catalog.Get(id)
	if !ok {
		log.Fatalf("unknown module %s", id)
	}
	return e.Module
}
