// Remote modules: annotate black boxes over the wire.
//
// The paper's 252 modules were supplied as local programs, REST services
// and SOAP web services (§4.1). This example serves two catalog modules
// over real HTTP — one REST, one SOAP — binds client-side proxies to the
// remote endpoints, and runs the generation heuristic through them. The
// heuristic cannot tell a remote black box from a local one; that is the
// point of the module.Executor boundary.
//
// Run with: go run ./examples/services
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"dexa/internal/core"
	"dexa/internal/module"
	"dexa/internal/registry"
	"dexa/internal/simulation"
	"dexa/internal/transport"
)

func main() {
	u := simulation.NewUniverse()

	// Server side: a provider hosts two modules.
	served := registry.New()
	for _, id := range []string{"getUniprotRecord", "uniprotToGO"} {
		e, _ := u.Catalog.Get(id)
		served.MustRegister(e.Module)
	}
	mux := http.NewServeMux()
	mux.Handle("/rest/", http.StripPrefix("/rest", transport.RESTHandler(served)))
	mux.Handle("/soap", transport.SOAPHandler(served))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("provider listening at %s (REST under /rest, SOAP at /soap)\n", base)

	// Discover the remote REST modules.
	ids, err := transport.ListRemoteModules(base+"/rest", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote modules advertised: %v\n\n", ids)

	// Client side: proxies with the same signatures, bound to the remote
	// endpoints — GetRecord over REST, UniprotToGO over SOAP.
	recE, _ := u.Catalog.Get("getUniprotRecord")
	restProxy := cloneFor(recE.Module, "getUniprotRecord@rest")
	restProxy.Form = module.FormREST
	restProxy.Bind(&transport.RESTExecutor{BaseURL: base + "/rest", ModuleID: "getUniprotRecord"})

	goE, _ := u.Catalog.Get("uniprotToGO")
	soapProxy := cloneFor(goE.Module, "uniprotToGO@soap")
	soapProxy.Form = module.FormSOAP
	soapProxy.Bind(&transport.SOAPExecutor{Endpoint: base + "/soap", ModuleID: "uniprotToGO"})

	// The heuristic runs unchanged against the remote black boxes.
	gen := core.NewGenerator(u.Ont, u.Pool)
	for _, m := range []*module.Module{restProxy, soapProxy} {
		set, rep, err := gen.Generate(m)
		if err != nil {
			log.Fatalf("generating for %s: %v", m.ID, err)
		}
		fmt.Printf("%s (%s): %d data examples, input coverage %.2f\n", m.ID, m.Form, len(set), rep.InputCoverage())
		for _, e := range set {
			fmt.Printf("  %s\n", summarize(e.String(), 100))
		}
	}
}

func cloneFor(m *module.Module, id string) *module.Module {
	return &module.Module{
		ID: id, Name: m.Name, Description: m.Description, Kind: m.Kind,
		Inputs:  append([]module.Parameter(nil), m.Inputs...),
		Outputs: append([]module.Parameter(nil), m.Outputs...),
	}
}

func summarize(s string, n int) string {
	flat := ""
	for _, r := range s {
		if r == '\n' {
			flat += "\\n"
			continue
		}
		flat += string(r)
	}
	if len(flat) > n {
		return flat[:n] + "…"
	}
	return flat
}
